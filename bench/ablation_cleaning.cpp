// Ablation D: cancelled-node cleaning strategy (paper §3.3 Pragmatics).
//
// "If items are offered at a very high rate, but with a very low time-out
// patience, this 'abandonment' cleaning strategy can result in a long-term
// build-up of canceled nodes, exhausting memory supplies and degrading
// performance."
//
// Workload: producers hammer timed offers with microsecond patience while a
// single slow consumer takes occasionally. We compare the real
// deferred-splice strategy against the abandonment strawman on (a) peak
// linked-list length and (b) offer throughput.
#include <atomic>

#include "bench_common.hpp"
#include "core/transfer_queue.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

struct storm_result {
  double offers_per_sec;
  std::size_t peak_len;
  std::size_t final_len;
};

storm_result run_storm(cleaning_policy cp, int producers,
                       std::uint64_t offers_per_thread) {
  transfer_queue<> q(sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{}, cp);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> peak{0};

  // A watcher samples the linked-list length (the buildup the paper warns
  // about).
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::size_t len = q.unsafe_length();
      std::size_t p = peak.load(std::memory_order_relaxed);
      while (len > p &&
             !peak.compare_exchange_weak(p, len, std::memory_order_relaxed)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::function<void()>> bodies;
  for (int p = 0; p < producers; ++p) {
    bodies.push_back([&q, offers_per_thread] {
      for (std::uint64_t i = 0; i < offers_per_thread; ++i) {
        item_token t = item_codec<payload>::encode(static_cast<payload>(i + 1));
        if (q.xfer(t, true, wait_kind::timed,
                   deadline::in(std::chrono::microseconds(30))) == empty_token)
          item_codec<payload>::dispose(t);
      }
    });
  }
  double secs = harness::run_threads_timed(std::move(bodies));
  stop.store(true, std::memory_order_release);
  watcher.join();

  storm_result r;
  r.offers_per_sec = static_cast<double>(offers_per_thread) * producers / secs;
  r.peak_len = peak.load();
  r.final_len = q.unsafe_length();
  return r;
}

} // namespace

int main(int argc, char **argv) {
  auto opt = harness::options::parse(argc, argv);
  const int producers = static_cast<int>(opt.get_int("producers", 3));
  std::uint64_t per =
      static_cast<std::uint64_t>(opt.get_int("offers", opt.has("quick") ? 2000 : 10000));

  auto real = run_storm(cleaning_policy::deferred_splice, producers, per);
  auto strawman = run_storm(cleaning_policy::abandon, producers, per);

  harness::table t(
      {"strategy", "offers/sec", "peak linked nodes", "final linked nodes"});
  t.add_row({"deferred-splice (paper)",
             harness::table::fmt(real.offers_per_sec, 0),
             std::to_string(real.peak_len), std::to_string(real.final_len)});
  t.add_row({"abandonment (strawman)",
             harness::table::fmt(strawman.offers_per_sec, 0),
             std::to_string(strawman.peak_len),
             std::to_string(strawman.final_len)});
  emit(t, opt.get("csv", "ablation_cleaning.csv"),
       "Ablation D: cancelled-node cleaning under a low-patience offer storm");
  std::printf("expectation: abandonment shows unbounded node buildup; the "
              "paper's strategy stays O(1)\n");
  return 0;
}
