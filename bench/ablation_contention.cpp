// Contention accounting: the *why* behind Figures 3-6.
//
// The paper's §4 attributes the baselines' slowness to "blocking and
// contention surrounding the synchronization state of synchronous queues".
// This bench makes that observable: for each algorithm it runs the N:N
// handoff workload and reports, per transfer, how many kernel blocks
// (parks) and wakeups (unparks) occurred and how many head/tail/item CASes
// failed (the coherence-traffic proxy).
//
// Expected: Hanson blocks at least once per operation by construction; the
// Java5 baselines park on the entry lock under load (fair mode worst); the
// new algorithms park at most once per transfer and shed contention into
// (cheap) CAS retries.
#include "bench_common.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

struct accounting {
  double parks_per_transfer;
  double unparks_per_transfer;
  double cas_fails_per_transfer;
};

template <typename Q>
accounting account(int pairs, const sweep_config &cfg) {
  Q q;
  auto before = diag::snapshot::take();
  auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
  if (!res.checksum_ok) std::exit(1);
  auto d = diag::snapshot::take() - before;
  double n = static_cast<double>(cfg.ops);
  return {static_cast<double>(d[diag::id::park]) / n,
          static_cast<double>(d[diag::id::unpark]) / n,
          static_cast<double>(d[diag::id::cas_fail]) / n};
}

std::string fmt3(const accounting &a) {
  return harness::table::fmt(a.parks_per_transfer, 2) + "/" +
         harness::table::fmt(a.unparks_per_transfer, 2) + "/" +
         harness::table::fmt(a.cas_fails_per_transfer, 2);
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4}, "ablation_contention.csv");

  std::printf("cell format: parks/unparks/failed-CASes per transfer\n");
  harness::table t({"pairs", "SynchronousQueue", "SynchronousQueue(fair)",
                    "HansonSQ", "NewSynchQueue", "NewSynchQueue(fair)"});
  for (int n : cfg.levels) {
    t.add_row({std::to_string(n), fmt3(account<java5_unfair_t>(n, cfg)),
               fmt3(account<java5_fair_t>(n, cfg)),
               fmt3(account<hanson_t>(n, cfg)),
               fmt3(account<new_unfair_t>(n, cfg)),
               fmt3(account<new_fair_t>(n, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv, "Contention accounting per transfer (N:N handoff)");
  return 0;
}
