// Ablation C: elimination arena on/off (paper §5).
//
// "In preliminary work, we have found elimination to be beneficial only in
// cases of artificially extreme contention." Expect the arena variant to
// trail at low concurrency (every operation pays an arena detour with
// bounded patience) and to close the gap -- possibly win on big multicores
// -- as contention on the stack head grows.
#include "bench_common.hpp"
#include "core/eliminating_sq.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

double measure_elim(int pairs, nanoseconds patience, const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    eliminating_sq<payload> q(patience);
    auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
    if (!res.checksum_ok) std::exit(1);
    samples.push_back(res.ns_per_transfer);
  }
  return harness::summarize(samples).median;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_elimination.csv");

  harness::table t({"pairs", "plain-unfair", "arena-5us", "arena-50us"});
  for (int n : cfg.levels) {
    t.add_row(
        {std::to_string(n),
         harness::table::fmt(measure<new_unfair_t>(n, n, cfg)),
         harness::table::fmt(
             measure_elim(n, std::chrono::microseconds(5), cfg)),
         harness::table::fmt(
             measure_elim(n, std::chrono::microseconds(50), cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv,
       "Ablation C: elimination-arena front end on the unfair queue, "
       "ns/transfer");
  return 0;
}
