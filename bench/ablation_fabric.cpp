// Ablation H: sharded handoff fabric (core/fabric.hpp) vs a single lane.
//
// The fabric splits one synchronous queue into N independent segment-queue
// lanes and pairs threads with d-choice probing: a camped counterpart on
// any probed lane is taken immediately, otherwise the thread camps on its
// home lane. Sharding buys two things on a contended handoff workload:
//
//   * head/tail CAS traffic divides across lanes, so the cas_fail rate --
//     the paper's contention indicator -- drops with lane count, and
//   * probing finds already-camped partners before committing to a park,
//     so fewer transfers pay a futex round-trip.
//
// This bench prices both: ns/transfer for lanes=1/2/4 on the same handoff
// workload as the figure benches, plus parks and head/tail CAS failures
// per transfer from the diagnostic counters. lanes=1 degenerates to a
// plain segmented core behind the probe logic, so the column pair
// (lanes=1, lanes=4) isolates what sharding itself is worth.
//
// The committed snapshot BENCH_fabric.json is this bench's --json output
// on the reference container (levels 1,2,4,8 -- level 8 = 16 threads).
#include "bench_common.hpp"

#include "support/diagnostics.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

// measure_core default-constructs its queue type; pin the lane-count
// policy per type so one template covers the whole sweep.
template <unsigned Lanes>
struct fab_t : fabric_synchronous_queue<payload> {
  fab_t() : fabric_synchronous_queue<payload>(fabric_config{Lanes}) {}
};

struct cell_result {
  double ns = 0;       // median ns/transfer
  double parks = 0;    // kernel parks per transfer (worst rep)
  double cas_fail = 0; // head/tail/item CAS failures per transfer (worst rep)
};

template <typename Q>
cell_result measure_core(int pairs, const sweep_config &cfg) {
  std::vector<double> samples;
  cell_result out;
  for (int r = 0; r < cfg.reps; ++r) {
    const std::uint64_t p0 = diag::read(diag::id::park);
    const std::uint64_t f0 = diag::read(diag::id::cas_fail);
    {
      Q q;
      auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
      if (!res.checksum_ok) {
        std::fprintf(stderr, "CHECKSUM FAILURE (pairs=%d)\n", pairs);
        std::exit(1);
      }
      samples.push_back(res.ns_per_transfer);
    }
    const auto per = [&](std::uint64_t d) {
      return static_cast<double>(d) / static_cast<double>(cfg.ops);
    };
    out.parks = std::max(out.parks, per(diag::read(diag::id::park) - p0));
    out.cas_fail =
        std::max(out.cas_fail, per(diag::read(diag::id::cas_fail) - f0));
  }
  out.ns = harness::summarize(samples).median;
  return out;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_fabric.csv");

  harness::table t({"pairs", "lanes=1 ns/x", "lanes=2 ns/x", "lanes=4 ns/x",
                    "speedup 4v1", "lanes=1 park/x", "lanes=4 park/x",
                    "lanes=1 casf/x", "lanes=4 casf/x"});
  for (int n : cfg.levels) {
    cell_result l1 = measure_core<fab_t<1>>(n, cfg);
    cell_result l2 = measure_core<fab_t<2>>(n, cfg);
    cell_result l4 = measure_core<fab_t<4>>(n, cfg);
    const double speedup = l4.ns > 0 ? l1.ns / l4.ns : 0.0;
    t.add_row({std::to_string(n), harness::table::fmt(l1.ns),
               harness::table::fmt(l2.ns), harness::table::fmt(l4.ns),
               harness::table::fmt(speedup) + "x",
               harness::table::fmt(l1.parks, 4),
               harness::table::fmt(l4.parks, 4),
               harness::table::fmt(l1.cas_fail, 4),
               harness::table::fmt(l4.cas_fail, 4)});
    std::fflush(stdout);
  }
  emit(t, cfg, "Ablation H: sharded handoff fabric, lane-count sweep");
  return 0;
}
