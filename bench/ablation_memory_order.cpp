// Ablation H: audited acquire/release relaxation vs forced seq_cst.
//
// The mo-pairing pass (docs/memory_model.md) relaxed the hot cores from
// blanket seq_cst to labeled acquire/release edges. This bench prices that
// audit on the same handoff workload the figure benches use, over the three
// cores the relaxation touched hardest: the unfair (stack) and fair (queue)
// flagship cores and the segmented fair core.
//
// It is built twice from this one source file:
//   * ablation_memory_order         -- the audited relaxed tree (SSQ_MO as
//                                      spelled), and
//   * ablation_memory_order_forced  -- compiled with -DSSQ_FORCE_SEQ_CST,
//                                      pinning every labeled site back to
//                                      seq_cst.
// Each binary stamps its mode into the JSON meta header; the committed
// snapshot BENCH_memory_order.json is the two --json outputs merged by
// scripts/bench_compare.py on the reference container, and the CI bench
// gate re-runs the pair in --quick mode and asserts parity-or-better with
// bench_compare.py --mode=parity.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

using seg_fair_t = segmented_synchronous_queue<payload>;

} // namespace

int main(int argc, char **argv) {
  auto cfg =
      parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_memory_order.csv");

  std::printf("memory-order mode: %s\n", SSQ_MEMORY_ORDER_MODE);

  harness::table t(
      {"pairs", "unfair ns/x", "fair ns/x", "segmented ns/x"});
  for (int n : cfg.levels) {
    const double unfair = measure<new_unfair_t>(n, n, cfg);
    const double fair = measure<new_fair_t>(n, n, cfg);
    const double seg = measure<seg_fair_t>(n, n, cfg);
    t.add_row({std::to_string(n), harness::table::fmt(unfair),
               harness::table::fmt(fair), harness::table::fmt(seg)});
    std::fflush(stdout);
  }
  emit(t, cfg,
       "Ablation H: labeled acquire/release vs forced seq_cst "
       "(" SSQ_MEMORY_ORDER_MODE ")");
  return 0;
}
