// Ablation F: node pooling -- taking allocator traffic off the hot path.
//
// Every transfer allocates one node and (eventually) frees one; the paper's
// Java original paid almost nothing for this thanks to TLAB bump allocation
// and the collector. This bench prices the C++ equivalents against each
// other by running the same handoff workload over the four allocation x
// reclamation combinations:
//
//   heap/hp    -- operator new/delete under hazard pointers (the old default)
//   pool/hp    -- thread-local node pools under hazard pointers (the default)
//   heap/def   -- heap allocation, deferred (tombstone) reclamation
//   pool/def   -- pooled allocation, deferred reclamation
//
// pool vs heap isolates the allocator; hp vs def isolates the scan cost.
// The summary line reports the pooled/heap speedup per thread level and the
// pool's recycle ratio (allocations served from magazines/ring vs fresh
// chunk carves) -- in steady state the ratio should be close to 1.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

template <bool Fair, typename Rec>
double measure_rec(int pairs, const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    synchronous_queue<payload, Fair, Rec> q(sync::spin_policy::adaptive(),
                                            Rec{});
    auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
    if (!res.checksum_ok) std::exit(1);
    samples.push_back(res.ns_per_transfer);
  }
  return harness::summarize(samples).median;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_pooling.csv");

  harness::table t({"pairs", "unfair/heap-hp", "unfair/pool-hp",
                    "fair/heap-hp", "fair/pool-hp", "unfair/heap-def",
                    "unfair/pool-def"});
  std::vector<std::pair<int, double>> speedups; // unfair hp: heap / pool
  for (int n : cfg.levels) {
    double uhh = measure_rec<false, mem::hp_reclaimer>(n, cfg);
    double uph = measure_rec<false, mem::pooled_hp_reclaimer>(n, cfg);
    double fhh = measure_rec<true, mem::hp_reclaimer>(n, cfg);
    double fph = measure_rec<true, mem::pooled_hp_reclaimer>(n, cfg);
    double uhd = measure_rec<false, mem::deferred_reclaimer>(n, cfg);
    double upd = measure_rec<false, mem::pooled_deferred_reclaimer>(n, cfg);
    t.add_row({std::to_string(n), harness::table::fmt(uhh),
               harness::table::fmt(uph), harness::table::fmt(fhh),
               harness::table::fmt(fph), harness::table::fmt(uhd),
               harness::table::fmt(upd)});
    speedups.emplace_back(n, uph > 0 ? uhh / uph : 0.0);
    std::fflush(stdout);
  }
  emit(t, cfg.csv, "Ablation F: node pooling, ns/transfer");

  for (auto [n, s] : speedups)
    std::printf("pairs=%d pooled speedup (unfair/hp): %.2fx\n", n, s);
  const double rec = static_cast<double>(diag::read(diag::id::pool_recycle));
  const double fresh = static_cast<double>(diag::read(diag::id::pool_fresh));
  std::printf("pool recycle ratio: %.4f (%llu recycled, %llu fresh carves)\n",
              rec + fresh > 0 ? rec / (rec + fresh) : 0.0,
              static_cast<unsigned long long>(rec),
              static_cast<unsigned long long>(fresh));
  return 0;
}
