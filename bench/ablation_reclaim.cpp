// Ablation B: the price of safe memory reclamation.
//
// Java gets node reclamation for free from the garbage collector; the C++
// port pays for hazard-pointer publication and scanning. This bench prices
// that safety by running the same handoff workload over:
//
//   hp        -- hazard-pointer reclaimer (the default),
//   deferred  -- retire is a tombstone push, freeing deferred to structure
//                destruction (an idealized "GC will handle it" stand-in).
//
// It also reports epoch-based reclamation on the M&S substrate, where EBR is
// applicable (no parked waiters), for cross-scheme context.
#include "bench_common.hpp"
#include "substrate/ms_queue.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

template <bool Fair, typename Rec>
double measure_rec(int pairs, const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    synchronous_queue<payload, Fair, Rec> q(sync::spin_policy::adaptive(),
                                            Rec{});
    auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
    if (!res.checksum_ok) std::exit(1);
    samples.push_back(res.ns_per_transfer);
  }
  return harness::summarize(samples).median;
}

// M&S queue is non-synchronous: producers never block, so quota-balance is
// trivial; consumers poll-loop.
double measure_msq(int pairs, const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    ms_queue<payload> q;
    std::atomic<std::uint64_t> consumed{0};
    const std::uint64_t total = cfg.ops;
    auto pq = harness::split_quota(total, pairs);
    auto cq = harness::split_quota(total, pairs);
    std::vector<std::function<void()>> bodies;
    for (int p = 0; p < pairs; ++p) {
      std::uint64_t n = pq[static_cast<std::size_t>(p)];
      bodies.push_back([&q, n] {
        for (std::uint64_t i = 0; i < n; ++i)
          q.enqueue(static_cast<payload>(i + 1));
      });
    }
    for (int c = 0; c < pairs; ++c) {
      std::uint64_t n = cq[static_cast<std::size_t>(c)];
      bodies.push_back([&q, n] {
        std::uint64_t got = 0;
        while (got < n) {
          if (q.dequeue())
            ++got;
          else
            std::this_thread::yield();
        }
      });
    }
    (void)consumed;
    double secs = harness::run_threads_timed(std::move(bodies));
    samples.push_back(secs * 1e9 / static_cast<double>(total));
  }
  return harness::summarize(samples).median;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4}, "ablation_reclaim.csv");

  harness::table t({"pairs", "unfair/hp", "unfair/deferred", "fair/hp",
                    "fair/deferred", "msq/epoch"});
  for (int n : cfg.levels) {
    double uh = measure_rec<false, mem::hp_reclaimer>(n, cfg);
    double ud = measure_rec<false, mem::deferred_reclaimer>(n, cfg);
    double fh = measure_rec<true, mem::hp_reclaimer>(n, cfg);
    double fd = measure_rec<true, mem::deferred_reclaimer>(n, cfg);
    double ms = measure_msq(n, cfg);
    t.add_row({std::to_string(n), harness::table::fmt(uh),
               harness::table::fmt(ud), harness::table::fmt(fh),
               harness::table::fmt(fd), harness::table::fmt(ms)});
    std::fflush(stdout);
  }
  emit(t, cfg.csv, "Ablation B: reclamation scheme, ns/transfer");
  std::printf("hp scans so far: %llu, retired-watermark: %zu\n",
              static_cast<unsigned long long>(diag::read(diag::id::hp_scan)),
              mem::hazard_domain::global().approx_retired());
  return 0;
}
