// Ablation G: segmented waiter-cell core vs the linked fair core.
//
// The linked dual queue allocates and retires one node per transfer; the
// segmented core (core/segment_queue.hpp) amortizes both over 64-cell
// segments, so its reclaimer sees ~1/64th the retire traffic. This bench
// prices that trade on the same handoff workload:
//
//   * ns/transfer for both cores per concurrency level (same series the
//     figure benches print), and
//   * retire calls per transfer, measured from the node_retire diagnostic
//     counter around each run -- the 64:1 claim, observed not asserted.
//
// The committed snapshot BENCH_segment.json is this bench's --json output
// on the reference container (levels 1,2,4,8 -- level 8 = 16 threads).
#include "bench_common.hpp"

#include "support/diagnostics.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

using seg_fair_t = segmented_synchronous_queue<payload>;

struct cell_result {
  double ns = 0;          // median ns/transfer
  double retires = 0;     // retire calls per transfer (worst rep)
};

template <typename Q>
cell_result measure_core(int pairs, const sweep_config &cfg) {
  std::vector<double> samples;
  cell_result out;
  for (int r = 0; r < cfg.reps; ++r) {
    const std::uint64_t r0 = diag::read(diag::id::node_retire);
    {
      Q q;
      auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
      if (!res.checksum_ok) {
        std::fprintf(stderr, "CHECKSUM FAILURE (pairs=%d)\n", pairs);
        std::exit(1);
      }
      samples.push_back(res.ns_per_transfer);
    }
    const std::uint64_t r1 = diag::read(diag::id::node_retire);
    const double per =
        static_cast<double>(r1 - r0) / static_cast<double>(cfg.ops);
    if (per > out.retires) out.retires = per;
  }
  out.ns = harness::summarize(samples).median;
  return out;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_segment.csv");

  harness::table t({"pairs", "linked ns/x", "segmented ns/x",
                    "linked ret/x", "segmented ret/x", "retire reduction"});
  for (int n : cfg.levels) {
    cell_result linked = measure_core<new_fair_t>(n, cfg);
    cell_result seg = measure_core<seg_fair_t>(n, cfg);
    const double reduction =
        seg.retires > 0 ? linked.retires / seg.retires : 0.0;
    t.add_row({std::to_string(n), harness::table::fmt(linked.ns),
               harness::table::fmt(seg.ns), harness::table::fmt(linked.retires, 4),
               harness::table::fmt(seg.retires, 4),
               harness::table::fmt(reduction) + "x"});
    std::fflush(stdout);
  }
  emit(t, cfg, "Ablation G: segmented vs linked fair core");

  std::printf(
      "segment size: %zu cells; whole-segment retires this process: %llu\n",
      segment_queue<>::seg_cells,
      static_cast<unsigned long long>(diag::read(diag::id::seg_retire)));
  return 0;
}
