// Ablation A: waiting policy -- spin-then-park vs. park-only vs. spin-only
// (paper §3.3 Pragmatics: "On very busy synchronous queues, spinning can
// dramatically improve throughput ... busy-wait is useless overhead on a
// uniprocessor").
//
// On a multiprocessor, expect spin-then-park <= park-only at high handoff
// rates; on a uniprocessor (like the reference CI box), expect park-only and
// adaptive to coincide and spin-only to trail badly -- the paper's claim in
// the other direction.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

double measure_policy(sync::spin_policy pol, int pairs,
                      const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    synchronous_queue<payload, false> q(pol);
    auto res = harness::run_handoff(q, pairs, pairs, cfg.ops);
    if (!res.checksum_ok) std::exit(1);
    samples.push_back(res.ns_per_transfer);
  }
  return harness::summarize(samples).median;
}

} // namespace

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 4, 8}, "ablation_spin.csv");

  harness::table t({"pairs", "park-only", "spin-then-park", "spin-only"});
  for (int n : cfg.levels) {
    t.add_row(
        {std::to_string(n),
         harness::table::fmt(
             measure_policy(sync::spin_policy::park_only(), n, cfg)),
         harness::table::fmt(
             measure_policy(sync::spin_policy::adaptive(), n, cfg)),
         harness::table::fmt(
             measure_policy(sync::spin_policy::spin_only(), n, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv,
       "Ablation A: waiting policy on the unfair queue, ns/transfer");
  std::printf("hardware_concurrency=%u (paper: spinning helps only on "
              "multiprocessors)\n",
              std::thread::hardware_concurrency());
  return 0;
}
