// Shared scaffolding for the figure-reproduction benches.
//
// Each figure binary sweeps concurrency levels and prints one row per level
// with one ns/transfer column per algorithm -- the same series the paper
// plots. Results are also written as CSV (<bench>.csv in the working
// directory) for plotting.
//
// Flags (all optional):
//   --levels=1,2,4,...   concurrency sweep
//   --ops=N              transfers per cell   (default 8000)
//   --reps=N             repetitions per cell (default 2; median reported)
//   --csv=path           CSV output path
//   --json=path          JSON output path (machine-readable series; the
//                        committed BENCH_*.json snapshots use this)
//   --quick              tiny run for smoke-testing (CI)
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "core/synchronous_queue.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

namespace ssq::bench {

using payload = std::uint32_t; // inline-encoded: no boxing in the hot loop

// The five contenders of Figures 3-5, under the paper's names.
using java5_unfair_t = java5_sq<payload, false>; // "SynchronousQueue"
using java5_fair_t = java5_sq<payload, true>;    // "SynchronousQueue (fair)"
using hanson_t = hanson_sq<payload>;             // "HansonSQ"
using new_unfair_t = synchronous_queue<payload, false>; // "New SynchQueue"
using new_fair_t = synchronous_queue<payload, true>; // "New SynchQueue (fair)"

struct sweep_config {
  std::vector<int> levels;
  std::uint64_t ops = 8000;
  int reps = 2;
  std::string csv;
  std::string json; // empty: no JSON emitted
};

inline sweep_config parse_sweep(int argc, char **argv,
                                std::vector<int> default_levels,
                                const char *default_csv,
                                std::uint64_t default_ops = 8000) {
  auto opt = harness::options::parse(argc, argv);
  sweep_config cfg;
  cfg.levels = opt.get_int_list("levels", std::move(default_levels));
  cfg.ops = static_cast<std::uint64_t>(
      opt.get_int("ops", static_cast<std::int64_t>(default_ops)));
  cfg.reps = static_cast<int>(opt.get_int("reps", 2));
  cfg.csv = opt.get("csv", default_csv);
  cfg.json = opt.get("json", "");
  if (opt.has("quick")) {
    cfg.levels.resize(cfg.levels.size() > 3 ? 3 : cfg.levels.size());
    cfg.ops = 1000;
    cfg.reps = 1;
  }
  return cfg;
}

// Median ns/transfer over `reps` runs of a (nprod, ncons) handoff workload
// on a fresh instance of Q per rep.
template <typename Q>
double measure(int nprod, int ncons, const sweep_config &cfg) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(cfg.reps));
  for (int r = 0; r < cfg.reps; ++r) {
    Q q;
    auto res = harness::run_handoff(q, nprod, ncons, cfg.ops);
    if (!res.checksum_ok) {
      std::fprintf(stderr, "CHECKSUM FAILURE (np=%d nc=%d)\n", nprod, ncons);
      std::exit(1);
    }
    samples.push_back(res.ns_per_transfer);
  }
  return harness::summarize(samples).median;
}

inline void emit(const harness::table &t, const std::string &csv_path,
                 const char *title) {
  std::printf("\n%s\n", title);
  t.print();
  if (!csv_path.empty() && t.write_csv(csv_path))
    std::printf("(csv written to %s)\n", csv_path.c_str());
}

// Full-config form: CSV plus the optional --json series. The JSON header
// records provenance: which memory-order mode the binary was compiled in
// (annotations.hpp's SSQ_MO switch) and the source revision, so committed
// BENCH_*.json snapshots are self-describing and bench_compare.py can
// refuse to diff two runs of the same mode as if they were a differential.
inline void emit(harness::table &t, const sweep_config &cfg,
                 const char *title) {
  emit(t, cfg.csv, title);
  if (!cfg.json.empty()) {
    t.set_meta("memory_order", SSQ_MEMORY_ORDER_MODE);
#if defined(SSQ_GIT_REV)
    t.set_meta("git_rev", SSQ_GIT_REV);
#else
    t.set_meta("git_rev", "unknown");
#endif
    if (t.write_json(cfg.json))
      std::printf("(json written to %s)\n", cfg.json.c_str());
  }
}

} // namespace ssq::bench
