// Figure 3: synchronous handoff, N producers : N consumers.
//
// Paper result (§4): Hanson and Java5-fair are 4-8x slower than the best;
// Java5-unfair is ~2x the new algorithms; the two new algorithms are
// comparable to each other.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 3, 4, 6, 8, 12, 16},
                         "fig3_prodcons.csv");

  harness::table t({"pairs", "SynchronousQueue", "SynchronousQueue(fair)",
                    "HansonSQ", "NewSynchQueue", "NewSynchQueue(fair)"});
  for (int n : cfg.levels) {
    t.add_row({std::to_string(n),
               harness::table::fmt(measure<java5_unfair_t>(n, n, cfg)),
               harness::table::fmt(measure<java5_fair_t>(n, n, cfg)),
               harness::table::fmt(measure<hanson_t>(n, n, cfg)),
               harness::table::fmt(measure<new_unfair_t>(n, n, cfg)),
               harness::table::fmt(measure<new_fair_t>(n, n, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv,
       "Figure 3: producer-consumer handoff, ns/transfer (N pairs)");
  return 0;
}
