// Figure 4: synchronous handoff, 1 producer : N consumers.
//
// Paper result (§4): Hanson's mandatory per-operation blocking is
// accentuated when a singleton serves many counterparts.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 3, 5, 8, 12, 18, 27},
                         "fig4_single_producer.csv");

  harness::table t({"consumers", "SynchronousQueue", "SynchronousQueue(fair)",
                    "HansonSQ", "NewSynchQueue", "NewSynchQueue(fair)"});
  for (int n : cfg.levels) {
    t.add_row({std::to_string(n),
               harness::table::fmt(measure<java5_unfair_t>(1, n, cfg)),
               harness::table::fmt(measure<java5_fair_t>(1, n, cfg)),
               harness::table::fmt(measure<hanson_t>(1, n, cfg)),
               harness::table::fmt(measure<new_unfair_t>(1, n, cfg)),
               harness::table::fmt(measure<new_fair_t>(1, n, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv,
       "Figure 4: single producer, N consumers, ns/transfer");
  return 0;
}
