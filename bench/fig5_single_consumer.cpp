// Figure 5: synchronous handoff, N producers : 1 consumer.
#include "bench_common.hpp"

using namespace ssq;
using namespace ssq::bench;

int main(int argc, char **argv) {
  auto cfg = parse_sweep(argc, argv, {1, 2, 3, 5, 8, 12, 18, 27},
                         "fig5_single_consumer.csv");

  harness::table t({"producers", "SynchronousQueue", "SynchronousQueue(fair)",
                    "HansonSQ", "NewSynchQueue", "NewSynchQueue(fair)"});
  for (int n : cfg.levels) {
    t.add_row({std::to_string(n),
               harness::table::fmt(measure<java5_unfair_t>(n, 1, cfg)),
               harness::table::fmt(measure<java5_fair_t>(n, 1, cfg)),
               harness::table::fmt(measure<hanson_t>(n, 1, cfg)),
               harness::table::fmt(measure<new_unfair_t>(n, 1, cfg)),
               harness::table::fmt(measure<new_fair_t>(n, 1, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv,
       "Figure 5: N producers, single consumer, ns/transfer");
  return 0;
}
