// Figure 6: CachedThreadPool benchmark -- ns/task for N submitter threads
// feeding a thread pool whose handoff channel is each of the paper's four
// contenders (Hanson cannot drive an executor: no timed poll).
//
// Paper result (§4): the new fair queue beats Java5-fair by 14x (SPARC) /
// 6x (Opteron); the new unfair queue beats Java5-unfair by ~3x.
#include <atomic>

#include "bench_common.hpp"
#include "executor/thread_pool_executor.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

template <typename Channel>
double measure_executor(int submitters, const sweep_config &cfg) {
  std::vector<double> samples;
  for (int r = 0; r < cfg.reps; ++r) {
    thread_pool_executor<Channel> ex(
        {0, 1u << 20, std::chrono::milliseconds(500)});
    std::atomic<std::uint64_t> done{0};
    const std::uint64_t total = cfg.ops;
    auto quotas = harness::split_quota(total, submitters);

    std::vector<std::function<void()>> bodies;
    for (int s = 0; s < submitters; ++s) {
      std::uint64_t quota = quotas[static_cast<std::size_t>(s)];
      bodies.push_back([&ex, &done, quota] {
        for (std::uint64_t i = 0; i < quota; ++i)
          ex.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    double secs = harness::run_threads_timed(std::move(bodies));
    // Include drain time: a task is not "done" until it ran.
    auto t0 = steady_clock::now();
    while (done.load(std::memory_order_acquire) < total)
      std::this_thread::yield();
    secs += std::chrono::duration<double>(steady_clock::now() - t0).count();
    ex.shutdown();
    ex.join();
    samples.push_back(secs * 1e9 / static_cast<double>(total));
  }
  return harness::summarize(samples).median;
}

} // namespace

int main(int argc, char **argv) {
  // Executor tasks cost far more than bare handoffs (spawns, keep-alive
  // churn); a smaller default op count keeps the stock sweep to minutes.
  auto cfg = parse_sweep(argc, argv, {1, 2, 3, 4, 6, 8, 12, 16},
                         "fig6_executor.csv", /*default_ops=*/1500);

  using ch_j5u = java5_sq<unique_task, false>;
  using ch_j5f = java5_sq<unique_task, true>;
  using ch_newu = synchronous_queue<unique_task, false>;
  using ch_newf = synchronous_queue<unique_task, true>;

  harness::table t({"threads", "SynchronousQueue", "SynchronousQueue(fair)",
                    "NewSynchQueue", "NewSynchQueue(fair)"});
  for (int n : cfg.levels) {
    t.add_row({std::to_string(n),
               harness::table::fmt(measure_executor<ch_j5u>(n, cfg)),
               harness::table::fmt(measure_executor<ch_j5f>(n, cfg)),
               harness::table::fmt(measure_executor<ch_newu>(n, cfg)),
               harness::table::fmt(measure_executor<ch_newf>(n, cfg))});
    std::fflush(stdout);
  }
  emit(t, cfg.csv, "Figure 6: CachedThreadPool, ns/task (N submitters)");
  return 0;
}
