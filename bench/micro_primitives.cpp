// google-benchmark micro-benchmarks for the substrate primitives: the
// costs the paper's cost model is built from (CAS, semaphore ops, lock
// acquire/release, codec encode/decode, hazard publication, non-blocking
// queue ops).
#include <benchmark/benchmark.h>

#include <atomic>
#include <mutex>
#include <string>

#include "baselines/java5_sq.hpp"
#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "memory/hazard.hpp"
#include "substrate/eb_stack.hpp"
#include "substrate/ms_queue.hpp"
#include "substrate/treiber_stack.hpp"
#include "support/codec.hpp"
#include "sync/fair_lock.hpp"
#include "sync/queue_locks.hpp"
#include "sync/semaphore.hpp"

using namespace ssq;

static void BM_AtomicCas(benchmark::State &state) {
  std::atomic<std::uint64_t> w{0};
  std::uint64_t v = 0;
  for (auto _ : state) {
    w.compare_exchange_strong(v, v + 1, std::memory_order_seq_cst);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AtomicCas);

static void BM_SeqCstStore(benchmark::State &state) {
  std::atomic<std::uint64_t> w{0};
  std::uint64_t i = 0;
  for (auto _ : state) w.store(++i, std::memory_order_seq_cst);
}
BENCHMARK(BM_SeqCstStore);

static void BM_SemaphoreReleaseAcquire(benchmark::State &state) {
  sync::counting_semaphore s(0);
  for (auto _ : state) {
    s.release();
    s.acquire();
  }
}
BENCHMARK(BM_SemaphoreReleaseAcquire);

static void BM_StdMutexLockUnlock(benchmark::State &state) {
  std::mutex m;
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
}
BENCHMARK(BM_StdMutexLockUnlock);

static void BM_FairLockLockUnlock(benchmark::State &state) {
  sync::fair_lock m;
  for (auto _ : state) {
    m.lock();
    m.unlock();
  }
}
BENCHMARK(BM_FairLockLockUnlock);

static void BM_McsLockLockUnlock(benchmark::State &state) {
  sync::mcs_lock m;
  sync::mcs_lock::node n;
  for (auto _ : state) {
    m.lock(n);
    m.unlock(n);
  }
}
BENCHMARK(BM_McsLockLockUnlock);

static void BM_ClhLockLockUnlock(benchmark::State &state) {
  sync::clh_lock m;
  sync::clh_lock::handle h;
  for (auto _ : state) {
    m.lock(h);
    m.unlock(h);
  }
}
BENCHMARK(BM_ClhLockLockUnlock);

static void BM_EbStackPushPop(benchmark::State &state) {
  elimination_backoff_stack<std::uint64_t> s;
  for (auto _ : state) {
    s.push(1);
    benchmark::DoNotOptimize(s.pop());
  }
}
BENCHMARK(BM_EbStackPushPop);

static void BM_CodecInlineRoundTrip(benchmark::State &state) {
  std::uint32_t v = 12345;
  for (auto _ : state) {
    item_token t = item_codec<std::uint32_t>::encode(v);
    benchmark::DoNotOptimize(item_codec<std::uint32_t>::decode_consume(t));
  }
}
BENCHMARK(BM_CodecInlineRoundTrip);

static void BM_CodecBoxedRoundTrip(benchmark::State &state) {
  for (auto _ : state) {
    item_token t = item_codec<std::uint64_t>::encode(0x123456789ABCDEFULL);
    benchmark::DoNotOptimize(item_codec<std::uint64_t>::decode_consume(t));
  }
}
BENCHMARK(BM_CodecBoxedRoundTrip);

static void BM_HazardProtect(benchmark::State &state) {
  static std::atomic<int *> cell{new int(7)};
  for (auto _ : state) {
    mem::hazard_domain::hazard hz;
    benchmark::DoNotOptimize(hz.protect(cell));
  }
}
BENCHMARK(BM_HazardProtect);

static void BM_TreiberPushPop(benchmark::State &state) {
  treiber_stack<std::uint64_t> s;
  for (auto _ : state) {
    s.push(1);
    benchmark::DoNotOptimize(s.pop());
  }
}
BENCHMARK(BM_TreiberPushPop);

static void BM_MsQueueEnqDeq(benchmark::State &state) {
  ms_queue<std::uint64_t> q;
  for (auto _ : state) {
    q.enqueue(1);
    benchmark::DoNotOptimize(q.dequeue());
  }
}
BENCHMARK(BM_MsQueueEnqDeq);

// Failed non-blocking ops on an empty queue: the cheap-miss path an executor
// relies on when deciding whether to spawn.
static void BM_NewUnfairOfferMiss(benchmark::State &state) {
  synchronous_queue<std::uint32_t, false> q;
  for (auto _ : state) benchmark::DoNotOptimize(q.offer(1));
}
BENCHMARK(BM_NewUnfairOfferMiss);

static void BM_NewFairOfferMiss(benchmark::State &state) {
  synchronous_queue<std::uint32_t, true> q;
  for (auto _ : state) benchmark::DoNotOptimize(q.offer(1));
}
BENCHMARK(BM_NewFairOfferMiss);

static void BM_Java5OfferMiss(benchmark::State &state) {
  java5_sq<std::uint32_t, false> q;
  for (auto _ : state) benchmark::DoNotOptimize(q.offer(1));
}
BENCHMARK(BM_Java5OfferMiss);

static void BM_NewUnfairPollMiss(benchmark::State &state) {
  synchronous_queue<std::uint32_t, false> q;
  for (auto _ : state) benchmark::DoNotOptimize(q.poll().has_value());
}
BENCHMARK(BM_NewUnfairPollMiss);

// Same-thread rendezvous: producer hands to itself through the async path
// (measures node alloc + CAS + claim without scheduling noise).
static void BM_NewFairAsyncPutPoll(benchmark::State &state) {
  linked_transfer_queue<std::uint32_t> *q = nullptr;
  q = new linked_transfer_queue<std::uint32_t>();
  for (auto _ : state) {
    q->put(1);
    benchmark::DoNotOptimize(q->poll().has_value());
  }
  delete q;
}
BENCHMARK(BM_NewFairAsyncPutPoll);

BENCHMARK_MAIN();
