// Duration-based throughput sweep: transfers/second over a fixed wall-clock
// window, for every timed-capable implementation.
//
// Complements the figure benches (fixed operation count, median of reps):
// a duration-based method is insensitive to straggler threads and lets the
// slow baselines be compared at identical wall-clock cost. Hanson's queue
// is absent by necessity (no timed operations -- paper §3.3).
#include <atomic>
#include <barrier>
#include <thread>

#include "baselines/naive_sq.hpp"
#include "bench_common.hpp"
#include "core/eliminating_sq.hpp"

using namespace ssq;
using namespace ssq::bench;

namespace {

struct tp_result {
  double transfers_per_sec;
  bool checksum_ok;
};

template <typename Q>
tp_result run_throughput(int pairs, nanoseconds window) {
  Q q;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0}, count{0};
  std::barrier gate(2 * pairs + 1);

  std::vector<std::thread> ts;
  for (int p = 0; p < pairs; ++p) {
    ts.emplace_back([&, p] {
      gate.arrive_and_wait();
      std::uint64_t v = static_cast<std::uint64_t>(p) << 32;
      while (!stop.load(std::memory_order_acquire)) {
        ++v;
        if (q.offer(static_cast<payload>(v),
                    deadline::in(std::chrono::milliseconds(1))))
          in_sum.fetch_add(static_cast<payload>(v),
                           std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < pairs; ++c) {
    ts.emplace_back([&] {
      gate.arrive_and_wait();
      for (;;) {
        auto v = q.poll(deadline::in(std::chrono::milliseconds(1)));
        if (v) {
          out_sum.fetch_add(*v, std::memory_order_relaxed);
          count.fetch_add(1, std::memory_order_relaxed);
        }
        if (stop.load(std::memory_order_acquire) && !v) break;
      }
    });
  }
  gate.arrive_and_wait();
  auto t0 = steady_clock::now();
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_release);
  for (auto &t : ts) t.join();
  double secs = std::chrono::duration<double>(steady_clock::now() - t0).count();

  tp_result r;
  r.transfers_per_sec = static_cast<double>(count.load()) / secs;
  r.checksum_ok = in_sum.load() == out_sum.load();
  if (!r.checksum_ok) {
    std::fprintf(stderr, "THROUGHPUT CHECKSUM FAILURE\n");
    std::exit(1);
  }
  return r;
}

} // namespace

int main(int argc, char **argv) {
  auto opt = harness::options::parse(argc, argv);
  auto levels = opt.get_int_list("levels", {1, 2, 4});
  auto window = std::chrono::milliseconds(
      opt.get_int("window_ms", opt.has("quick") ? 50 : 250));
  std::string csv = opt.get("csv", "throughput_sweep.csv");

  harness::table t({"pairs", "SynchronousQueue", "SynchronousQueue(fair)",
                    "NewSynchQueue", "NewSynchQueue(fair)", "Eliminating",
                    "NaiveSQ"});
  for (int n : levels) {
    t.add_row(
        {std::to_string(n),
         harness::table::fmt(
             run_throughput<java5_unfair_t>(n, window).transfers_per_sec, 0),
         harness::table::fmt(
             run_throughput<java5_fair_t>(n, window).transfers_per_sec, 0),
         harness::table::fmt(
             run_throughput<new_unfair_t>(n, window).transfers_per_sec, 0),
         harness::table::fmt(
             run_throughput<new_fair_t>(n, window).transfers_per_sec, 0),
         harness::table::fmt(
             run_throughput<eliminating_sq<payload>>(n, window)
                 .transfers_per_sec,
             0),
         harness::table::fmt(
             run_throughput<naive_sq<payload>>(n, window).transfers_per_sec,
             0)});
    std::fflush(stdout);
  }
  emit(t, csv, "Throughput sweep: successful transfers per second "
               "(duration-based method)");
  return 0;
}
