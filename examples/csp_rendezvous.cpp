// csp_rendezvous: CSP-style synchronous channels (paper §1: synchronous
// queues "constitute the central synchronization primitive of Hoare's CSP").
//
// A tiny CSP program: a `worker` process and a `coordinator` process
// communicate over two unbuffered channels (request / reply), plus an
// Ada-style rendezvous built from the exchanger, where two parties swap
// state atomically at a meeting point.
#include <cstdio>
#include <string>
#include <thread>

#include "core/exchanger.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

// A CSP channel is just a synchronous queue with send/recv vocabulary.
template <typename T>
class channel {
 public:
  void send(T v) { q_.put(std::move(v)); } // blocks until received ("!")
  T recv() { return q_.take(); }           // blocks until sent ("?")

 private:
  synchronous_queue<T, true> q_;
};

int main() {
  channel<int> request;
  channel<std::string> reply;

  // worker = request?n -> reply!(n*n) -> worker
  std::thread worker([&] {
    for (;;) {
      int n = request.recv();
      if (n < 0) return; // STOP
      reply.send("square(" + std::to_string(n) +
                 ") = " + std::to_string(n * n));
    }
  });

  // coordinator = request!i -> reply?s -> ...
  for (int i = 1; i <= 5; ++i) {
    request.send(i); // rendezvous #1
    std::printf("%s\n", reply.recv().c_str()); // rendezvous #2
  }
  request.send(-1);
  worker.join();

  // Ada-style rendezvous with data flowing BOTH ways at one meeting point:
  // two peers swap their local state via the elimination exchanger.
  exchanger<std::string> meeting_point;
  std::thread peer_a([&] {
    std::string got = meeting_point.exchange("state-of-A");
    std::printf("A received: %s\n", got.c_str());
  });
  std::thread peer_b([&] {
    std::string got = meeting_point.exchange("state-of-B");
    std::printf("B received: %s\n", got.c_str());
  });
  peer_a.join();
  peer_b.join();

  std::printf("csp demo done\n");
  return 0;
}
