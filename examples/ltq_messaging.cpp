// ltq_messaging: the §5 TransferQueue motivation, end to end --
// "TransferQueues are useful for example in supporting messaging frameworks
// that allow messages to be either synchronous or asynchronous."
//
// A tiny actor-style mailbox where senders choose, per message, whether to
// fire-and-forget (put), wait for the recipient to accept delivery
// (transfer), or deliver only if the recipient is actively receiving
// (try_transfer).
#include <cstdio>
#include <string>
#include <thread>

#include "core/linked_transfer_queue.hpp"

using namespace ssq;

namespace {

struct message {
  int id;
  std::string body;
};

} // namespace

int main() {
  linked_transfer_queue<message> mailbox;

  std::thread actor([&] {
    for (;;) {
      message m = mailbox.take();
      if (m.id < 0) return;
      std::printf("  [actor] handling #%d: %s\n", m.id, m.body.c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Asynchronous: returns immediately even though the actor is busy.
  std::printf("[sender] put #1 (async)\n");
  mailbox.put({1, "log this sometime"});
  std::printf("[sender] put returned immediately; queued=%zu\n",
              mailbox.unsafe_length());

  // Synchronous: blocks until the actor actually accepts the message --
  // delivery confirmation without an explicit ack channel.
  std::printf("[sender] transfer #2 (sync)...\n");
  mailbox.transfer({2, "commit this before I continue"});
  std::printf("[sender] transfer returned: actor HAS message #2\n");

  // Conditional: deliver only if the recipient is receiving right now.
  bool delivered = mailbox.try_transfer({3, "only if you are listening"});
  std::printf("[sender] try_transfer #3 -> %s\n",
              delivered ? "delivered" : "recipient busy, dropped");

  // Timed: wait up to 200ms for an active recipient.
  if (mailbox.try_transfer({4, "time-limited handshake"},
                           deadline::in(std::chrono::milliseconds(200))))
    std::printf("[sender] try_transfer #4 delivered within 200ms\n");
  else
    std::printf("[sender] try_transfer #4 timed out\n");

  mailbox.put({-1, "shutdown"});
  actor.join();
  std::printf("messaging demo done\n");
  return 0;
}
