// pipeline_handoff: stream-style "hand-off" processing (paper §1 cites
// stream-style hand-off algorithms as a core use of synchronous queues).
//
// A three-stage pipeline -- tokenize -> transform -> sink -- where each
// stage runs in its own thread and stages are coupled by synchronous
// queues: no stage can run ahead, so at any instant at most one item is in
// flight between adjacent stages (lock-step streaming with zero buffering).
#include <cctype>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/synchronous_queue.hpp"

using namespace ssq;

namespace {

// A poison pill ends the stream.
const std::string kEof = "\x04";

} // namespace

int main() {
  synchronous_queue<std::string, true> stage1; // tokenizer -> transformer
  synchronous_queue<std::string, true> stage2; // transformer -> sink

  const char *document =
      "synchronous queues pair up producers and consumers without buffering";

  std::thread tokenizer([&] {
    std::string word;
    for (const char *p = document;; ++p) {
      if (*p && !std::isspace(static_cast<unsigned char>(*p))) {
        word.push_back(*p);
        continue;
      }
      if (!word.empty()) {
        stage1.put(word); // blocks until the transformer is ready
        word.clear();
      }
      if (!*p) break;
    }
    stage1.put(kEof);
  });

  std::thread transformer([&] {
    for (;;) {
      std::string w = stage1.take();
      if (w == kEof) {
        stage2.put(kEof);
        return;
      }
      for (auto &c : w) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      stage2.put(w);
    }
  });

  std::thread sink([&] {
    std::size_t words = 0;
    for (;;) {
      std::string w = stage2.take();
      if (w == kEof) break;
      std::printf("%s ", w.c_str());
      ++words;
    }
    std::printf("\n(%zu words streamed through 2 synchronous handoffs "
                "each)\n",
                words);
  });

  tokenizer.join();
  transformer.join();
  sink.join();

  // Because the queues are synchronous, the pipeline provides natural
  // backpressure: a slow sink stalls the tokenizer after exactly one item
  // per stage, with no buffer growth anywhere.
  std::printf("pipeline drained; both queues empty: %s\n",
              (stage1.is_empty() && stage2.is_empty()) ? "yes" : "no");
  return 0;
}
