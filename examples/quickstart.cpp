// Quickstart: the 60-second tour of ssq::synchronous_queue.
//
//   $ ./quickstart
//
// A synchronous queue has no buffer: put() waits for a take() and vice
// versa -- threads "shake hands and leave in pairs" (paper §1).
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "core/synchronous_queue.hpp"

int main() {
  // Unfair (stack-based) mode: best throughput, LIFO pairing.
  ssq::synchronous_queue<std::string> queue;

  // 1. Basic handoff: the producer blocks until the consumer takes.
  std::thread consumer([&] {
    std::string msg = queue.take(); // blocks until a producer arrives
    std::printf("consumer received: %s\n", msg.c_str());
  });
  queue.put("hello, rendezvous"); // blocks until the consumer takes
  consumer.join();

  // 2. offer/poll never wait: they succeed only when a counterpart is
  //    *already* blocked on the other side.
  if (!queue.offer("nobody is listening"))
    std::printf("offer refused: no waiting consumer\n");
  if (!queue.poll().has_value())
    std::printf("poll refused: no waiting producer\n");

  // 3. Timed variants bound the wait ("patience" in the paper's terms).
  if (!queue.try_put("anyone there?", std::chrono::milliseconds(50)))
    std::printf("try_put timed out after 50ms\n");

  std::thread late_producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.put("worth the wait");
  });
  if (auto v = queue.try_take(std::chrono::seconds(5)))
    std::printf("timed take got: %s\n", v->c_str());
  late_producer.join();

  // 4. Fair mode guarantees FIFO pairing: the longest-waiting consumer is
  //    served first.
  ssq::fair_synchronous_queue<int> fair;
  std::thread c1([&] { std::printf("first waiter got %d\n", fair.take()); });
  while (fair.is_empty()) std::this_thread::yield(); // c1 is now queued
  std::thread c2([&] { std::printf("second waiter got %d\n", fair.take()); });
  while (fair.unsafe_length() < 2) std::this_thread::yield();
  fair.put(1); // goes to c1 -- strict FIFO
  fair.put(2); // goes to c2
  c1.join();
  c2.join();

  std::printf("quickstart done\n");
  return 0;
}
