// select_mux: CSP alternation over several synchronous channels
// (core/select.hpp) -- a multiplexer thread serves whichever of three
// producers is ready, Go-select style.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/select.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

int main() {
  synchronous_queue<int, true> sensors;   // channel 0
  synchronous_queue<int, true> commands;  // channel 1
  synchronous_queue<int, false> events;   // channel 2

  const int per = 20;
  std::vector<std::thread> producers;
  producers.emplace_back([&] {
    for (int i = 0; i < per; ++i) sensors.put(100 + i);
  });
  producers.emplace_back([&] {
    for (int i = 0; i < per; ++i) commands.put(200 + i);
  });
  producers.emplace_back([&] {
    for (int i = 0; i < per; ++i) events.put(300 + i);
  });

  int counts[3] = {0, 0, 0};
  long sum = 0;
  for (int i = 0; i < 3 * per; ++i) {
    auto r = select_take<int>(deadline::in(std::chrono::seconds(30)), sensors,
                              commands, events);
    if (!r) break;
    ++counts[r->first];
    sum += r->second;
    if (i % 10 == 0)
      std::printf("mux: chan=%zu value=%d\n", r->first, r->second);
  }
  for (auto &p : producers) p.join();

  std::printf("served: sensors=%d commands=%d events=%d (sum=%ld)\n",
              counts[0], counts[1], counts[2], sum);

  // select_put: deliver to whichever consumer shows up first.
  synchronous_queue<int, false> east, west;
  std::thread consumer([&] {
    std::printf("west consumer got %d\n", west.take());
  });
  int v = 7;
  auto idx = select_put(v, deadline::in(std::chrono::seconds(30)), east, west);
  consumer.join();
  std::printf("select_put delivered to channel %zu\n", *idx);

  // Timeout branch (Go's `default` after a deadline).
  auto none = select_take<int>(deadline::in(std::chrono::milliseconds(50)),
                               east, west);
  std::printf("quiet channels -> select timed out: %s\n",
              none ? "no" : "yes");
  return 0;
}
