// thread_pool_server: the paper's motivating "real-world" scenario (§1, §4)
// -- a cached thread pool whose core is a synchronous queue.
//
// "Producers deliver tasks to waiting worker threads if immediately
// available, but otherwise create new worker threads. Conversely, worker
// threads terminate themselves if no work appears within a given keep-alive
// period."
//
// This example simulates a bursty request load and prints how the pool
// grows under a burst and shrinks during the lull.
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/synchronous_queue.hpp"
#include "executor/thread_pool_executor.hpp"

using namespace ssq;

int main() {
  // The handoff channel is the paper's unfair synchronous queue: idle
  // workers are reused most-recently-parked-first, which keeps their stack
  // and TLB footprint hot (§1).
  thread_pool_executor<synchronous_queue<unique_task, false>> pool(
      {/*core_pool_size=*/0, /*max_pool_size=*/64,
       /*keep_alive=*/std::chrono::milliseconds(150)});

  std::atomic<int> handled{0};

  auto burst = [&](int requests, const char *label) {
    for (int i = 0; i < requests; ++i) {
      pool.submit([&handled] {
        // "handle" a request
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        handled.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (handled.load(std::memory_order_acquire) < requests)
      std::this_thread::yield();
    handled.store(0);
    std::printf("%-12s pool=%2zu largest=%2zu spawned-so-far=%llu\n", label,
                pool.pool_size(), pool.largest_pool_size(),
                static_cast<unsigned long long>(pool.spawned_count()));
  };

  burst(200, "burst #1:");
  std::printf("lull (keep-alive expires)...\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::printf("%-12s pool=%2zu (idle workers retired)\n", "after lull:",
              pool.pool_size());

  burst(200, "burst #2:");
  std::printf("completed=%llu exceptions=%llu\n",
              static_cast<unsigned long long>(pool.completed_count()),
              static_cast<unsigned long long>(pool.task_exception_count()));

  pool.shutdown();
  pool.join();
  std::printf("server shut down cleanly\n");
  return 0;
}
