// timeout_patterns: the capabilities the paper's §1 says real applications
// demand beyond put/take -- poll, offer, patience intervals, and
// interruption -- shown as small recipes.
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

int main() {
  synchronous_queue<std::string, false> q;

  // Recipe 1: "deliver if a worker is free, otherwise do it myself" --
  // the offer() pattern ThreadPoolExecutor uses to decide whether to spawn.
  {
    if (!q.offer("job-1")) {
      std::printf("[offer] no idle worker; caller handles job-1 itself\n");
    }
  }

  // Recipe 2: bounded-patience producer. The failed try_put returns with
  // the value conceptually back in hand (try_put_ref makes that literal).
  {
    std::string job = "job-2";
    if (!q.try_put_ref(job, deadline::in(std::chrono::milliseconds(40)))) {
      std::printf("[try_put] no consumer within 40ms; job returned: %s\n",
                  job.c_str());
    }
  }

  // Recipe 3: keep-alive consumer loop -- a worker that retires itself
  // after an idle period (the executor's worker loop in miniature).
  {
    std::thread producer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      q.put("work#1");
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      q.put("work#2");
      // then goes silent: the worker must time out and retire
    });
    int handled = 0;
    for (;;) {
      auto work = q.try_take(std::chrono::milliseconds(100));
      if (!work) break; // keep-alive expired
      std::printf("[keep-alive] handled %s\n", work->c_str());
      ++handled;
    }
    std::printf("[keep-alive] idle too long; worker retires after %d jobs\n",
                handled);
    producer.join();
  }

  // Recipe 4: interruptible wait -- shutdown without poison pills.
  {
    sync::interrupt_token shutdown;
    std::thread worker([&] {
      for (;;) {
        auto work = q.try_take(deadline::unbounded(), &shutdown);
        if (!work) {
          std::printf("[interrupt] worker observed shutdown\n");
          return;
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    shutdown.interrupt();
    worker.join();
  }

  // Recipe 5: TransferQueue -- choose per message whether to wait.
  {
    linked_transfer_queue<std::string> mailbox;
    mailbox.put("async: fire and forget"); // buffered, returns at once
    std::thread reader([&] {
      std::printf("[ltq] got: %s\n", mailbox.take().c_str());
      std::printf("[ltq] got: %s\n", mailbox.take().c_str());
    });
    mailbox.transfer("sync: wait until read"); // blocks until taken
    std::printf("[ltq] synchronous message was consumed\n");
    reader.join();
  }

  std::printf("timeout patterns done\n");
  return 0;
}
