#!/usr/bin/env python3
"""Compare, merge, or parity-gate two bench JSON series.

The bench harness (src/harness/table.cpp) writes
    {"meta": {"memory_order": ..., "git_rev": ...},
     "columns": [...], "rows": [{col: cell, ...}, ...]}
and the memory-order differential (bench/ablation_memory_order.cpp) produces
one such file per build mode. This script consumes pairs of them:

  compare  print a side-by-side table of every shared numeric column with
           the ratio b/a per cell (a = first file, the baseline).
  merge    emit one JSON document {"meta": ..., "series": {label_a: doc_a,
           label_b: doc_b}} -- the format of the committed
           BENCH_memory_order.json snapshot.
  parity   exit 0 iff, for every numeric column matching --metric (default:
           columns containing "ns/"), file A is at parity or better with
           file B on at least --min-wins rows (default 1) and is never worse
           than B by more than --tolerance (default 0.15, i.e. 15%) on any
           row. This is the CI bench gate: A = relaxed, B = forced seq_cst;
           lower is better.
  regress  same-mode gate for committed BENCH_*.json snapshots: A = the
           committed baseline, B = a fresh run of the same bench. Exit 1
           only on a genuine regression -- a shared cell where B is slower
           than A by more than --tolerance. Rows or columns present in only
           one file (a bench gained or lost a series since the snapshot)
           are *reported*, never fatal: schema drift is what a refreshed
           snapshot is for, not a reason to fail the gate.

Rows and columns present in only one input are reported as added/removed in
every mode; the comparison proceeds over the shared cells. compare/parity
require the two inputs to disagree on meta.memory_order (a differential
needs two modes); --allow-same-mode disables that check for ad-hoc use, and
regress mode (a same-mode diff by definition) never applies it.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "columns" not in doc or "rows" not in doc:
        sys.exit(f"{path}: not a bench table (missing columns/rows)")
    return doc


def meta(doc, key):
    return doc.get("meta", {}).get(key, "unknown")


def numeric_columns(doc_a, doc_b, metric):
    cols = []
    for c in doc_a["columns"]:
        if c not in doc_b["columns"]:
            continue
        if metric not in c:
            continue
        vals = [r.get(c) for r in doc_a["rows"] + doc_b["rows"]]
        if all(isinstance(v, (int, float)) for v in vals):
            cols.append(c)
    return cols


def key_column(doc):
    # First column is the sweep key (pairs / threads / level).
    return doc["columns"][0]


def paired_rows(doc_a, doc_b):
    """Yield (key, row_a, row_b) for rows sharing the sweep-key value."""
    k = key_column(doc_a)
    if k != key_column(doc_b):
        sys.exit(f"sweep keys differ: {k!r} vs {key_column(doc_b)!r}")
    b_by_key = {r[k]: r for r in doc_b["rows"]}
    for ra in doc_a["rows"]:
        rb = b_by_key.get(ra[k])
        if rb is not None:
            yield ra[k], ra, rb


def report_drift(doc_a, doc_b):
    """Print added/removed columns and rows; the diff proceeds over the
    shared cells either way."""
    ca, cb = doc_a["columns"], doc_b["columns"]
    for c in ca:
        if c not in cb:
            print(f"  note: column {c!r} only in A (removed from B)")
    for c in cb:
        if c not in ca:
            print(f"  note: column {c!r} only in B (added since A)")
    k = key_column(doc_a)
    if k != key_column(doc_b):
        return
    keys_a = [r.get(k) for r in doc_a["rows"]]
    keys_b = [r.get(k) for r in doc_b["rows"]]
    for key in keys_a:
        if key not in keys_b:
            print(f"  note: row {k}={key!r} only in A (removed from B)")
    for key in keys_b:
        if key not in keys_a:
            print(f"  note: row {k}={key!r} only in B (added since A)")


def check_modes(doc_a, doc_b, allow_same):
    ma, mb = meta(doc_a, "memory_order"), meta(doc_b, "memory_order")
    if ma == mb and not allow_same:
        sys.exit(
            f"both inputs are memory_order={ma!r}; a differential needs two "
            "modes (pass --allow-same-mode to override)"
        )
    return ma, mb


def cmd_compare(args):
    a, b = load(args.file_a), load(args.file_b)
    ma, mb = check_modes(a, b, args.allow_same_mode)
    cols = numeric_columns(a, b, args.metric)
    print(f"A = {args.file_a} ({ma}), B = {args.file_b} ({mb})")
    report_drift(a, b)
    if not cols:
        sys.exit(f"no shared numeric columns matching {args.metric!r}")
    k = key_column(a)
    header = [k] + [f"{c} A|B|B/A" for c in cols]
    print("  ".join(header))
    for key, ra, rb in paired_rows(a, b):
        cells = [str(key)]
        for c in cols:
            va, vb = ra[c], rb[c]
            ratio = vb / va if va else float("inf")
            cells.append(f"{va:.1f}|{vb:.1f}|{ratio:.3f}")
        print("  ".join(cells))
    return 0


def cmd_merge(args):
    a, b = load(args.file_a), load(args.file_b)
    ma, mb = check_modes(a, b, args.allow_same_mode)
    label_a = args.label_a or ma
    label_b = args.label_b or mb
    out = {
        "meta": {
            "kind": "memory_order_differential",
            "git_rev": meta(a, "git_rev"),
        },
        "series": {label_a: a, label_b: b},
    }
    json.dump(out, args.output, indent=2)
    args.output.write("\n")
    return 0


def cmd_parity(args):
    a, b = load(args.file_a), load(args.file_b)
    check_modes(a, b, args.allow_same_mode)
    cols = numeric_columns(a, b, args.metric)
    report_drift(a, b)
    if not cols:
        sys.exit(f"no shared numeric columns matching {args.metric!r}")
    worst = []
    wins = 0
    total = 0
    for key, ra, rb in paired_rows(a, b):
        for c in cols:
            va, vb = ra[c], rb[c]
            if vb <= 0:
                continue
            total += 1
            # Lower is better; A at parity-or-better means va <= vb (within
            # noise). Regression ratio > 1 means A is slower than B.
            regression = va / vb
            if va <= vb:
                wins += 1
            if regression > 1 + args.tolerance:
                worst.append((key, c, va, vb, regression))
    if total == 0:
        sys.exit("no comparable cells")
    print(f"parity check: A at-or-better on {wins}/{total} cells")
    for key, c, va, vb, r in worst:
        print(f"  REGRESSION {key} {c}: A={va:.1f} B={vb:.1f} ({r:.2f}x)")
    if wins < args.min_wins:
        print(f"FAIL: fewer than {args.min_wins} parity-or-better cells")
        return 1
    if worst:
        print(f"FAIL: {len(worst)} cells regress beyond {args.tolerance:.0%}")
        return 1
    print("PASS")
    return 0


def cmd_regress(args):
    a, b = load(args.file_a), load(args.file_b)
    ma, mb = meta(a, "memory_order"), meta(b, "memory_order")
    if ma != mb:
        # A cross-mode diff through the regression gate is almost certainly
        # a wiring mistake (comparing a relaxed snapshot against a seq_cst
        # run would gate on the differential, not on a regression).
        sys.exit(f"regress mode wants same-mode inputs: {ma!r} vs {mb!r}")
    print(f"A = {args.file_a} (baseline), B = {args.file_b} (fresh run)")
    report_drift(a, b)
    cols = numeric_columns(a, b, args.metric)
    if not cols:
        # Nothing shared to compare: the bench was restructured. That is
        # snapshot drift, not a regression.
        print(f"no shared numeric columns matching {args.metric!r}; "
              "nothing to gate")
        return 0
    regressions = []
    total = 0
    for key, ra, rb in paired_rows(a, b):
        for c in cols:
            va, vb = ra[c], rb[c]
            if va <= 0:
                continue
            total += 1
            # Lower is better; ratio > 1 means the fresh run is slower
            # than the committed snapshot.
            ratio = vb / va
            if ratio > 1 + args.tolerance:
                regressions.append((key, c, va, vb, ratio))
    print(f"regression check: {total} shared cells, "
          f"{len(regressions)} beyond {args.tolerance:.0%}")
    for key, c, va, vb, r in regressions:
        print(f"  REGRESSION {key} {c}: baseline={va:.1f} "
              f"fresh={vb:.1f} ({r:.2f}x)")
    if total == 0:
        print("no comparable cells; nothing to gate")
        return 0
    if regressions:
        print("FAIL")
        return 1
    print("PASS")
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--mode", choices=["compare", "merge", "parity", "regress"],
                   default="compare")
    p.add_argument("file_a", help="baseline / relaxed-side JSON")
    p.add_argument("file_b", help="comparison / forced-side JSON")
    p.add_argument("--metric", default="ns/",
                   help="substring selecting the columns to compare")
    p.add_argument("--tolerance", type=float, default=0.15,
                   help="parity/regress: max tolerated per-cell slowdown")
    p.add_argument("--min-wins", type=int, default=1,
                   help="parity: required parity-or-better cell count")
    p.add_argument("--label-a", default=None, help="merge: series label for A")
    p.add_argument("--label-b", default=None, help="merge: series label for B")
    p.add_argument("--output", type=argparse.FileType("w"),
                   default=sys.stdout, help="merge: output path")
    p.add_argument("--allow-same-mode", action="store_true",
                   help="skip the two-distinct-modes meta check")
    args = p.parse_args()
    if args.mode == "compare":
        sys.exit(cmd_compare(args))
    if args.mode == "merge":
        sys.exit(cmd_merge(args))
    if args.mode == "regress":
        sys.exit(cmd_regress(args))
    sys.exit(cmd_parity(args))


if __name__ == "__main__":
    main()
