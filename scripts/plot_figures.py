#!/usr/bin/env python3
"""Plot the figure-bench CSVs in the paper's visual layout.

Usage:
    scripts/run_figures.sh build          # produces bench_results/*.csv
    python3 scripts/plot_figures.py bench_results/ [out-dir]

Requires matplotlib; degrades to a message if unavailable.
"""
import csv
import pathlib
import sys


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    xs = [int(r[0]) for r in data]
    series = {
        header[c]: [float(r[c]) for r in data] for c in range(1, len(header))
    }
    return header[0], xs, series


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs are ready for any plotter.")
        return 0

    src = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "bench_results")
    out = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else src)
    out.mkdir(parents=True, exist_ok=True)

    titles = {
        "fig3_prodcons": "Producer-consumer (N : N), ns/transfer",
        "fig4_single_producer": "Single producer (1 : N), ns/transfer",
        "fig5_single_consumer": "Single consumer (N : 1), ns/transfer",
        "fig6_executor": "CachedThreadPool, ns/task",
        "ablation_spin": "Waiting policy ablation, ns/transfer",
        "ablation_reclaim": "Reclamation ablation, ns/transfer",
        "ablation_elimination": "Elimination ablation, ns/transfer",
        "throughput_sweep": "Throughput (transfers/sec)",
    }

    made = 0
    for csv_path in sorted(src.glob("*.csv")):
        name = csv_path.stem
        xlabel, xs, series = load(csv_path)
        fig, ax = plt.subplots(figsize=(6, 4))
        for label, ys in series.items():
            ax.plot(xs, ys, marker="o", label=label)
        ax.set_xlabel(xlabel)
        ax.set_ylabel("ns" if "ns" in titles.get(name, "ns") else "value")
        ax.set_title(titles.get(name, name))
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        fig.savefig(out / f"{name}.png", dpi=130)
        plt.close(fig)
        made += 1
        print(f"wrote {out / (name + '.png')}")
    if not made:
        print(f"no CSVs found under {src}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
