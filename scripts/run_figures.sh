#!/usr/bin/env bash
# Regenerate every figure and ablation, collecting console tables into
# bench_output.txt and CSVs into bench_results/.
#
# Usage: scripts/run_figures.sh [build-dir] [extra bench flags...]
#   e.g. scripts/run_figures.sh build --quick
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
OUT_DIR="bench_results"
mkdir -p "$OUT_DIR"

BENCHES=(
  fig3_prodcons
  fig4_single_producer
  fig5_single_consumer
  fig6_executor
  ablation_spin
  ablation_reclaim
  ablation_pooling
  ablation_elimination
  ablation_cleaning
  ablation_contention
  throughput_sweep
)

# The executor bench costs far more per task (pool churn) than a bare
# handoff; scale its default op count down so the sweep stays minutes, not
# hours, on small hosts. Explicit flags on the command line still win.
extra_for() {
  case "$1" in
    fig6_executor) echo "--ops=1500" ;;
    *) echo "" ;;
  esac
}

: > bench_output.txt
for b in "${BENCHES[@]}"; do
  echo "== $b ==" | tee -a bench_output.txt
  # shellcheck disable=SC2046
  "$BUILD_DIR/bench/$b" $(extra_for "$b") --csv="$OUT_DIR/$b.csv" "$@" \
    | tee -a bench_output.txt
done

echo "== micro_primitives ==" | tee -a bench_output.txt
"$BUILD_DIR/bench/micro_primitives" --benchmark_min_time=0.05 \
  | tee -a bench_output.txt

echo "done; tables in bench_output.txt, series in $OUT_DIR/"
