#!/usr/bin/env bash
# Long-running randomized soak across every implementation; intended to run
# under the ASan/TSan build configurations for hours before releases.
#
# Usage: scripts/soak.sh [build-dir] [seconds-per-impl] [threads]
set -euo pipefail

BUILD_DIR="${1:-build}"
SECONDS_PER="${2:-30}"
THREADS="${3:-8}"

IMPLS=(new-fair new-unfair java5-fair java5-unfair naive eliminating)

fail=0
for impl in "${IMPLS[@]}"; do
  for seed in 1 2 3; do
    echo "== torture --impl=$impl --seed=$seed =="
    if ! "$BUILD_DIR/tools/torture" --impl="$impl" --threads="$THREADS" \
        --seconds="$SECONDS_PER" --seed="$seed"; then
      echo "SOAK FAILURE: $impl seed=$seed"
      fail=1
    fi
  done
done
exit $fail
