// Hanson's synchronous queue (paper Listing 1; Hanson, "C Interfaces and
// Implementations", 1997).
//
// Three semaphores choreograph each transfer: `send` admits one producer at a
// time, `recv` tells a consumer an item is valid, and `sync` tells the
// producer its item was taken. The cost structure the paper measures --
// three synchronization events per transfer *per side*, with at least one
// mandatory block per operation -- falls directly out of this choreography.
//
// As the paper notes (§3.2 "Hanson's synchronous queue offers no simple way
// to do this"), the algorithm does not admit timeout: a producer that gave
// up after `send.acquire()` would strand the queue's internal state. We
// therefore expose only the total, blocking operations.
#pragma once

#include <optional>
#include <utility>

#include "sync/semaphore.hpp"

namespace ssq {

template <typename T>
class hanson_sq {
 public:
  static constexpr bool supports_timed = false;
  static constexpr bool is_fair = false; // semaphore wake order is arbitrary

  void put(T x) {
    send_.acquire();             // wait for the slot
    item_.emplace(std::move(x)); // publish
    recv_.release();             // let one consumer in
    sync_.acquire();             // wait until the item is taken
  }

  T take() {
    recv_.acquire(); // wait for a valid item
    T x = std::move(*item_);
    item_.reset();
    sync_.release(); // release the producer
    send_.release(); // open the slot for the next producer
    return x;
  }

 private:
  std::optional<T> item_;
  sync::counting_semaphore sync_{0}; // item has been taken
  sync::counting_semaphore send_{1}; // 1 minus pending puts
  sync::counting_semaphore recv_{0}; // 0 minus pending takes
};

} // namespace ssq
