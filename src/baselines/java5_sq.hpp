// The Java SE 5.0 SynchronousQueue (paper Listing 4).
//
// One entry lock protects two lists of waiter nodes -- waiting producers and
// waiting consumers. An arriving thread pops a counterpart if one is waiting
// (one lock acquisition + one unpark: the "three synchronization operations"
// the paper credits this design with, versus Hanson's six), otherwise pushes
// its own node and blocks.
//
//   * fair mode:   FIFO waiter lists + a strict-FIFO entry lock
//                  (sync::fair_lock), reproducing the fair-mode ReentrantLock
//                  whose pileups dominate Figure 3's fair curve;
//   * unfair mode: LIFO waiter lists + a barging std::mutex.
//
// This is the *baseline* whose single coarse lock the paper's new algorithms
// eliminate.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

#include "support/annotations.hpp"
#include "support/time.hpp"
#include "sync/fair_lock.hpp"
#include "sync/interrupt.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <typename T, bool Fair>
class java5_sq {
  enum : std::uint32_t { waiting = 0, matched = 1, cancelled = 2 };

  struct node {
    std::atomic<std::uint32_t> state{waiting};
    std::optional<T> item; // producer's offering / consumer's receipt
    sync::park_slot slot;
    node *next = nullptr; // list linkage, guarded by the entry lock
  };

  // Intrusive waiter list: FIFO in fair mode, LIFO in unfair mode. All
  // mutation happens under the entry lock.
  struct waiter_list {
    node *head = nullptr;
    node *tail = nullptr;

    void push(node *n) {
      if constexpr (Fair) { // enqueue at tail
        n->next = nullptr;
        if (tail)
          tail->next = n;
        else
          head = n;
        tail = n;
      } else { // push at head
        n->next = head;
        head = n;
      }
    }

    node *pop() {
      node *n = head;
      if (n) {
        head = n->next;
        if constexpr (Fair) {
          if (!head) tail = nullptr;
        }
      }
      return n;
    }

    // Cancellation: the owner removes its own node (O(n) under the lock --
    // acceptable for a baseline whose lock is the bottleneck anyway).
    void remove(node *n) {
      node **pp = &head;
      node *prev = nullptr;
      while (*pp) {
        if (*pp == n) {
          *pp = n->next;
          if constexpr (Fair) {
            if (tail == n) tail = prev;
          }
          return;
        }
        prev = *pp;
        pp = &(*pp)->next;
      }
    }
  };

 public:
  static constexpr bool supports_timed = true;
  static constexpr bool is_fair = Fair;

  java5_sq() : pol_(sync::spin_policy::adaptive()) {}
  explicit java5_sq(sync::spin_policy pol) : pol_(pol) {}

  void put(T e) { (void)offer(std::move(e), deadline::unbounded()); }

  T take() {
    auto v = poll(deadline::unbounded());
    return std::move(*v);
  }

  bool offer(T e, deadline dl = deadline::expired(),
             sync::interrupt_token *tok = nullptr) {
    node self;
    {
      std::lock_guard<lock_t> lk(qlock_);
      if (node *c = consumers_.pop()) {
        // Deliver directly to the longest-(or most-recently-)waiting
        // consumer.
        c->item.emplace(std::move(e));
        SSQ_MO_JUSTIFIED(
            "release: publishes the item emplace to await()'s acquire load");
        c->state.store(matched, std::memory_order_release);
        c->slot.signal();
        return true;
      }
      if (dl == deadline::expired()) return false;
      self.item.emplace(std::move(e));
      producers_.push(&self);
    }
    return await(self, dl, tok);
  }

  // Executor hook: failed handoff returns the value to the caller.
  bool try_put_ref(T &v, deadline dl, sync::interrupt_token *tok = nullptr) {
    node self;
    {
      std::lock_guard<lock_t> lk(qlock_);
      if (node *c = consumers_.pop()) {
        c->item.emplace(std::move(v));
        SSQ_MO_JUSTIFIED(
            "release: publishes the item emplace to await()'s acquire load");
        c->state.store(matched, std::memory_order_release);
        c->slot.signal();
        return true;
      }
      if (dl == deadline::expired()) return false;
      self.item.emplace(std::move(v));
      producers_.push(&self);
    }
    if (await(self, dl, tok)) return true;
    v = std::move(*self.item);
    return false;
  }

  std::optional<T> poll(deadline dl = deadline::expired(),
                        sync::interrupt_token *tok = nullptr) {
    node self;
    {
      std::lock_guard<lock_t> lk(qlock_);
      if (node *p = producers_.pop()) {
        std::optional<T> e = std::move(p->item);
        SSQ_MO_JUSTIFIED(
            "release: lets the producer's await() acquire-read see the item "
            "was taken before it destroys the stack node");
        p->state.store(matched, std::memory_order_release);
        p->slot.signal();
        return e;
      }
      if (dl == deadline::expired()) return std::nullopt;
      consumers_.push(&self);
    }
    if (!await(self, dl, tok)) return std::nullopt;
    return std::move(self.item);
  }

 private:
  using lock_t = std::conditional_t<Fair, sync::fair_lock, std::mutex>;

  // Wait for a match; on timeout/interrupt, unlink under the lock unless a
  // match raced us there (in which case the transfer already happened and we
  // must honor it).
  bool await(node &self, deadline dl, sync::interrupt_token *tok) {
    auto done = [&] {
      SSQ_MO_JUSTIFIED(
          "acquire: pairs with the matcher's release store; seeing matched "
          "implies the item transfer is visible");
      return self.state.load(std::memory_order_acquire) != waiting;
    };
    auto r = sync::spin_then_park(
        self.slot, done, [] { return true; }, pol_, dl, tok);
    if (r == sync::park_slot::wait_result::woken) {
      settle(self);
      return true;
    }
    {
      std::lock_guard<lock_t> lk(qlock_);
      SSQ_MO_JUSTIFIED(
          "acquire: under the entry lock, but must still pair with the "
          "matcher's lock-free release store");
      if (self.state.load(std::memory_order_acquire) == waiting) {
        SSQ_MO_JUSTIFIED("release: cancellation visible to later matchers");
        self.state.store(cancelled, std::memory_order_release);
        (self.item.has_value() ? producers_ : consumers_).remove(&self);
        return false;
      }
    }
    settle(self); // matched concurrently with our timeout
    return true;
  }

  // `self` lives on the waiter's stack. A matcher's last touch of it is the
  // state_.exchange inside slot.signal() (the subsequent futex wake only
  // uses the *address*). A waiter that noticed the match by spinning could
  // otherwise return -- destroying the node -- between the matcher's
  // state.store and its signal(); wait out that instruction-scale window.
  static void settle(node &self) noexcept {
    while (!self.slot.was_signalled()) cpu_relax();
  }

  lock_t qlock_;
  waiter_list producers_;
  waiter_list consumers_;
  sync::spin_policy pol_;
};

} // namespace ssq
