// The naive monitor-based synchronous queue (paper Listing 3).
//
// One monitor serializes access to a single item slot and a `putting` flag.
// Every state change notifies *all* waiters, which the paper identifies as a
// wake-up count quadratic in the number of waiting threads. Reproduced
// faithfully; timed variants (not in Listing 3) are added with the same
// notify-all discipline so it can participate in the cross-implementation
// property battery.
#pragma once

#include <optional>
#include <utility>

#include "support/time.hpp"
#include "sync/monitor.hpp"

namespace ssq {

template <typename T>
class naive_sq {
 public:
  static constexpr bool supports_timed = true;
  static constexpr bool is_fair = false; // monitor wakeups are unordered

  void put(T e) { (void)offer(std::move(e), deadline::unbounded()); }

  T take() {
    auto v = poll(deadline::unbounded());
    return std::move(*v);
  }

  // Returns false on deadline expiry (the item, if inserted, is retracted).
  bool offer(T e, deadline dl = deadline::expired()) {
    return mon_.synchronized([&](sync::monitor::scope &s) {
      while (putting_) {
        if (!s.wait_until(dl)) return false;
      }
      putting_ = true;
      item_.emplace(std::move(e));
      s.notify_all();
      while (item_.has_value()) {
        if (!s.wait_until(dl) && item_.has_value()) {
          // Timed out with our offering untaken: retract it.
          item_.reset();
          putting_ = false;
          s.notify_all();
          return false;
        }
      }
      putting_ = false;
      s.notify_all();
      return true;
    });
  }

  std::optional<T> poll(deadline dl = deadline::expired()) {
    return mon_.synchronized([&](sync::monitor::scope &s) -> std::optional<T> {
      while (!item_.has_value()) {
        if (!s.wait_until(dl) && !item_.has_value()) return std::nullopt;
      }
      std::optional<T> e = std::move(item_);
      item_.reset();
      s.notify_all();
      return e;
    });
  }

 private:
  sync::monitor mon_;
  bool putting_ = false;
  std::optional<T> item_;
};

} // namespace ssq
