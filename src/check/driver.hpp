// The checked stress driver shared by tools/torture --check=linearize and
// the bounded ctest suites (tests/test_linearize_check.cpp).
//
// One code path generates the workload (seeded random mix of sync / timed /
// now / async operations across a configurable thread count), records every
// operation into a check::recorder, drains the structure, and hands the
// history to the oracle. tools/torture adds periodic vitals and failing-
// history dumps on top; the tests call run_* directly with bounded op
// budgets.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "check/oracle.hpp"
#include "core/lane.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"
#include "sync/interrupt.hpp"

namespace ssq::check {

// Type-erased operation surface over one implementation. The wrappers
// classify their own failures (miss vs timeout vs interrupted) because only
// they know whether an interrupt token was consulted.
struct checked_ops {
  // Offer `v` with the given wait_kind/deadline; returns the outcome.
  std::function<op_status(std::uint64_t v, wait_kind wk, deadline dl)> produce;
  // Poll/take; returns outcome and the value when ok.
  std::function<std::pair<op_status, std::uint64_t>(wait_kind wk, deadline dl)>
      consume;
  // Non-null only for structures with an async (buffering) producer mode.
  std::function<void(std::uint64_t v)> produce_async;
  // Drain one already-buffered/committed item, non-blocking-ish; nullopt
  // when empty. Used by the post-run drain loop.
  std::function<std::optional<std::uint64_t>()> drain_one;
  bool fair = false;
  // The implementation publishes its pairing lane via ssq::tl_last_lane
  // (core/lane.hpp); run_mixed copies it into every event so the oracle
  // can check FIFO per lane (rules::fifo_lanes).
  bool lanes = false;
};

struct driver_cfg {
  int threads = 8;
  std::uint64_t seed = 1;
  std::chrono::milliseconds duration{1000};
  // Stop a thread after this many operations (0 = unbounded). Also bounds
  // history memory: the recorder preallocates this many events per thread.
  std::uint64_t max_ops_per_thread = 200000;
  // Out of 100: how often a producing thread uses async mode (if offered).
  int async_pct = 25;
  // Patience ceiling for timed ops, microseconds.
  std::uint64_t max_patience_us = 2000;
};

struct driver_stats {
  std::atomic<std::uint64_t> produced{0}, consumed{0}, timeouts{0},
      misses{0}, interrupts{0};
};

// Run the mixed workload against `ops`, recording into `rec` (which must
// have threads+1 logs: the extra log holds the drain phase's consumes).
// Returns the sequence counter's final value (== number of values minted).
inline std::uint64_t run_mixed(const checked_ops &ops, const driver_cfg &cfg,
                               recorder &rec, driver_stats *stats = nullptr,
                               std::atomic<bool> *external_stop = nullptr) {
  std::atomic<bool> local_stop{false};
  std::atomic<bool> &stop = external_stop ? *external_stop : local_stop;
  std::atomic<std::uint64_t> seq{0};

  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(cfg.threads));
  for (int t = 0; t < cfg.threads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(cfg.seed * 1099511628211ULL +
                     static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ULL);
      const bool lean_producer = (t % 2 == 0);
      std::uint64_t done_ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (cfg.max_ops_per_thread && done_ops >= cfg.max_ops_per_thread)
          break;
        ++done_ops;
        const bool produce = rng.chance(lean_producer ? 3 : 1, 4);
        // Pick a waiting discipline. "sync" is emulated with a generous
        // timed wait so shutdown stays responsive; it is still recorded as
        // wait_kind::timed (the oracle's rules are identical).
        wait_kind wk;
        deadline dl = deadline::expired();
        switch (rng.below(4)) {
          case 0:
            wk = wait_kind::now;
            break;
          case 1: // zero/short patience: exercises the now-equivalence edge
            wk = wait_kind::timed;
            dl = deadline::in(
                std::chrono::microseconds(rng.below(cfg.max_patience_us)));
            break;
          default:
            wk = wait_kind::timed;
            dl = deadline::in(std::chrono::milliseconds(20));
            break;
        }
        if (produce) {
          const bool go_async = ops.produce_async &&
                                rng.below(100) <
                                    static_cast<std::uint64_t>(cfg.async_pct);
          const std::uint64_t v = seq.fetch_add(1) + 1;
          if (go_async) {
            op_scope sc(rec, static_cast<std::size_t>(t), op_role::produce,
                        wait_kind::async);
            if (ops.lanes) tl_last_lane = lane_unattributed;
            ops.produce_async(v);
            if (ops.lanes) sc.lane(tl_last_lane);
            sc.commit(op_status::ok, v, 0);
            if (stats) stats->produced.fetch_add(1, std::memory_order_relaxed);
          } else {
            op_scope sc(rec, static_cast<std::size_t>(t), op_role::produce,
                        wk);
            if (ops.lanes) tl_last_lane = lane_unattributed;
            op_status st = ops.produce(v, wk, dl);
            if (ops.lanes) sc.lane(tl_last_lane);
            sc.commit(st, v, 0);
            if (stats) {
              if (st == op_status::ok)
                stats->produced.fetch_add(1, std::memory_order_relaxed);
              else if (st == op_status::timeout)
                stats->timeouts.fetch_add(1, std::memory_order_relaxed);
              else if (st == op_status::miss)
                stats->misses.fetch_add(1, std::memory_order_relaxed);
              else
                stats->interrupts.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          op_scope sc(rec, static_cast<std::size_t>(t), op_role::consume, wk);
          if (ops.lanes) tl_last_lane = lane_unattributed;
          auto [st, got] = ops.consume(wk, dl);
          if (ops.lanes) sc.lane(tl_last_lane);
          sc.commit(st, 0, st == op_status::ok ? got : 0);
          if (stats) {
            if (st == op_status::ok)
              stats->consumed.fetch_add(1, std::memory_order_relaxed);
            else if (st == op_status::timeout)
              stats->timeouts.fetch_add(1, std::memory_order_relaxed);
            else if (st == op_status::miss)
              stats->misses.fetch_add(1, std::memory_order_relaxed);
            else
              stats->interrupts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  if (!external_stop) {
    std::this_thread::sleep_for(cfg.duration);
    stop.store(true, std::memory_order_release);
  }
  for (auto &t : ts) t.join();

  // Drain phase: absorb values whose producer succeeded as consumers shut
  // down, and any async-buffered leftovers. Logged under the extra tid.
  if (ops.drain_one) {
    const std::size_t drain_tid = static_cast<std::size_t>(cfg.threads);
    for (;;) {
      op_scope sc(rec, drain_tid, op_role::consume, wait_kind::timed);
      if (ops.lanes) tl_last_lane = lane_unattributed;
      auto got = ops.drain_one();
      if (ops.lanes) sc.lane(tl_last_lane);
      if (!got) {
        sc.commit(op_status::timeout, 0, 0);
        break;
      }
      sc.commit(op_status::ok, 0, *got);
      if (stats) stats->consumed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return seq.load();
}

// Build checked_ops over any queue-shaped implementation exposing
//   bool offer(uint64_t, deadline [, interrupt_token*])
//   std::optional<uint64_t> poll(deadline [, interrupt_token*])
// (the surface torture always used). `tok`, when non-null and the
// implementation accepts tokens, marks failures of timed ops as
// `interrupted` once the token fires; baselines without token overloads
// (naive, eliminating) are driven without one.
template <typename Q>
checked_ops make_checked_ops(std::shared_ptr<Q> q, bool fair,
                             sync::interrupt_token *tok = nullptr) {
  constexpr bool has_tok =
      requires(Q &qq, sync::interrupt_token *t) {
        qq.offer(std::uint64_t{1}, deadline::expired(), t);
        qq.poll(deadline::expired(), t);
      };
  checked_ops o;
  o.fair = fair;
  if constexpr (requires { Q::lane_attributed; }) o.lanes = Q::lane_attributed;
  // Structures with a buffering producer mode (fabric spill lanes) get the
  // async workload slice too -- that is what drives the bulk-detach path.
  if constexpr (requires(Q &qq) { qq.put_async(std::uint64_t{1}); })
    o.produce_async = [q](std::uint64_t v) { q->put_async(v); };
  o.produce = [q, tok](std::uint64_t v, wait_kind wk, deadline dl) {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    bool ok;
    if constexpr (has_tok)
      ok = q->offer(v, use, tok);
    else
      ok = q->offer(v, use);
    if (ok) return op_status::ok;
    if (wk == wait_kind::now) return op_status::miss;
    return (tok && tok->interrupted()) ? op_status::interrupted
                                       : op_status::timeout;
  };
  o.consume = [q, tok](wait_kind wk, deadline dl)
      -> std::pair<op_status, std::uint64_t> {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    std::optional<std::uint64_t> got;
    if constexpr (has_tok)
      got = q->poll(use, tok);
    else
      got = q->poll(use);
    if (got) return {op_status::ok, *got};
    if (wk == wait_kind::now) return {op_status::miss, 0};
    return {(tok && tok->interrupted()) ? op_status::interrupted
                                        : op_status::timeout,
            0};
  };
  o.drain_one = [q] {
    return q->poll(deadline::in(std::chrono::milliseconds(50)));
  };
  return o;
}

// Build checked_ops over a TransferQueue-shaped implementation:
//   void put(uint64_t)                       -- asynchronous, cannot fail
//   bool try_transfer(uint64_t, deadline)    -- synchronous producer
//   std::optional<uint64_t> poll(deadline)
// (linked_transfer_queue). The async path is what gives the FIFO check its
// teeth: async producers return before delivery, so their pair intervals
// are not forced open by synchrony alone.
template <typename Q>
checked_ops make_checked_transfer_ops(std::shared_ptr<Q> q) {
  checked_ops o;
  o.fair = true;
  o.produce = [q](std::uint64_t v, wait_kind wk, deadline dl) {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    if (q->try_transfer(v, use)) return op_status::ok;
    return wk == wait_kind::now ? op_status::miss : op_status::timeout;
  };
  o.produce_async = [q](std::uint64_t v) { q->put(v); };
  o.consume = [q](wait_kind wk, deadline dl)
      -> std::pair<op_status, std::uint64_t> {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    auto got = q->poll(use);
    if (got) return {op_status::ok, *got};
    return {wk == wait_kind::now ? op_status::miss : op_status::timeout, 0};
  };
  o.drain_one = [q] {
    return q->poll(deadline::in(std::chrono::milliseconds(50)));
  };
  return o;
}

// Build checked_ops over a channel-shaped implementation:
//   bool try_send(uint64_t, deadline), std::optional<uint64_t>
//   try_recv(deadline), bool closed().
template <typename Ch>
checked_ops make_checked_channel_ops(std::shared_ptr<Ch> ch) {
  checked_ops o;
  o.fair = true;
  o.produce = [ch](std::uint64_t v, wait_kind wk, deadline dl) {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    if (ch->try_send(v, use)) return op_status::ok;
    if (ch->closed()) return op_status::interrupted;
    return wk == wait_kind::now ? op_status::miss : op_status::timeout;
  };
  o.consume = [ch](wait_kind wk, deadline dl)
      -> std::pair<op_status, std::uint64_t> {
    deadline use = (wk == wait_kind::now) ? deadline::expired() : dl;
    auto got = ch->try_recv(use);
    if (got) return {op_status::ok, *got};
    if (ch->closed()) return {op_status::interrupted, 0};
    return {wk == wait_kind::now ? op_status::miss : op_status::timeout, 0};
  };
  o.drain_one = [ch] {
    return ch->try_recv(deadline::in(std::chrono::milliseconds(50)));
  };
  return o;
}

// Exchanger workload: every thread repeatedly performs timed exchanges of
// unique values; the oracle checks pairing symmetry and overlap.
template <typename X>
report run_exchanger(X &x, const driver_cfg &cfg, recorder &rec,
                     driver_stats *stats = nullptr) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> seq{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < cfg.threads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(cfg.seed * 777767777ULL + static_cast<std::uint64_t>(t));
      std::uint64_t done_ops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (cfg.max_ops_per_thread && done_ops >= cfg.max_ops_per_thread)
          break;
        ++done_ops;
        const std::uint64_t v = seq.fetch_add(1) + 1;
        // Patience must be bounded: with an odd live-thread count somebody
        // always times out, and that is the point (withdrawal races).
        deadline dl = deadline::in(std::chrono::microseconds(
            50 + rng.below(cfg.max_patience_us)));
        op_scope sc(rec, static_cast<std::size_t>(t), op_role::exchange,
                    wait_kind::timed);
        auto got = x.exchange_until(v, dl);
        if (got) {
          sc.commit(op_status::ok, v, *got);
          if (stats) stats->produced.fetch_add(1, std::memory_order_relaxed);
        } else {
          sc.commit(op_status::timeout, v, 0);
          if (stats) stats->timeouts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_release);
  for (auto &t : ts) t.join();

  rules r;
  r.exchange = true;
  return check_history(rec.collect(), r);
}

} // namespace ssq::check
