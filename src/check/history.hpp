// Operation-history recording for the linearizability harness (ssq::check).
//
// Every checked operation is logged as one `event` carrying two *global
// stamps* (invoke and return) drawn from a single seq_cst counter. Because
// every internal linearization CAS in the structures is itself seq_cst, all
// stamps and linearization points fall into one total order S, which makes
// stamp arithmetic sound for ordering claims:
//
//     stamp(A.ret) < stamp(B.inv)
//       ==>  A's linearization point precedes B's in S.
//
// The oracle (check/oracle.hpp) consumes exactly that implication: it never
// assumes the converse (stamp order does not prove concurrency order), so
// every violation it reports is a real one.
//
// Recording is per-thread (no shared mutation besides the stamp counter,
// which the workload already hammers far less than the queue itself), and
// buffers are preallocated so that recording does not perturb the schedule
// with malloc.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/lane.hpp"
#include "core/wait_kind.hpp"

namespace ssq::check {

// What role(s) an operation played. An exchanger op is both: it offers a
// value and receives one.
enum class op_role : std::uint8_t { produce, consume, exchange };

enum class op_status : std::uint8_t {
  ok,          // transferred
  timeout,     // patience expired; cancelled
  miss,        // wait_kind::now with no counterpart present
  interrupted, // interrupt/close observed; cancelled
};

struct event {
  std::uint64_t invoke = 0;  // global stamp immediately before the call
  std::uint64_t ret = 0;     // global stamp immediately after the call
  std::uint64_t given = 0;   // value offered (produce/exchange), else 0
  std::uint64_t got = 0;     // value received (consume/exchange), else 0
  // Pairing lane for lane-attributed cores (core/lane.hpp): a lane index,
  // lane_elim / lane_bulk for the FIFO-exempt mechanisms, or
  // lane_unattributed for single-lane cores and failed ops.
  std::uint32_t lane = lane_unattributed;
  std::uint32_t thread = 0;
  op_role role = op_role::produce;
  wait_kind wk = wait_kind::sync;
  op_status status = op_status::ok;
};

// Values are partitioned so 0 can mean "none": workloads must produce
// values >= 1 (the torture driver uses a global sequence counter).

class recorder {
 public:
  explicit recorder(std::size_t nthreads, std::size_t reserve_per_thread = 0)
      : logs_(nthreads) {
    if (reserve_per_thread)
      for (auto &l : logs_) l.reserve(reserve_per_thread);
  }

  // Global stamp: unique, and totally ordered with the structures' seq_cst
  // linearization CASes.
  std::uint64_t stamp() noexcept {
    return clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Append an event to `tid`'s log. Single writer per tid.
  void log(std::size_t tid, const event &ev) {
    logs_[tid].push_back(ev);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t threads() const noexcept { return logs_.size(); }

  // Total logged events. Kept as an atomic side-counter so progress
  // monitors may read it while workers are still logging (the vectors
  // themselves are single-writer and only safe to touch after join).
  std::size_t size() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  // Merge all per-thread logs (stable by thread, then program order).
  // Call only after the worker threads have joined.
  std::vector<event> collect() const {
    std::vector<event> all;
    all.reserve(size());
    for (auto &l : logs_) all.insert(all.end(), l.begin(), l.end());
    return all;
  }

  void clear() {
    for (auto &l : logs_) l.clear();
    count_.store(0, std::memory_order_relaxed);
    clock_.store(0, std::memory_order_seq_cst);
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::size_t> count_{0};
  std::vector<std::vector<event>> logs_;
};

// Scoped helper: stamps invocation at construction; commit() stamps the
// return and writes the event.
class op_scope {
 public:
  op_scope(recorder &r, std::size_t tid, op_role role, wait_kind wk) noexcept
      : r_(r), tid_(tid) {
    ev_.thread = static_cast<std::uint32_t>(tid);
    ev_.role = role;
    ev_.wk = wk;
    ev_.invoke = r.stamp();
  }

  // Record the pairing lane (lane-attributed cores only; see core/lane.hpp).
  // Call before commit().
  void lane(std::uint32_t l) noexcept { ev_.lane = l; }

  void commit(op_status st, std::uint64_t given, std::uint64_t got) {
    ev_.ret = r_.stamp();
    ev_.status = st;
    ev_.given = given;
    ev_.got = got;
    r_.log(tid_, ev_);
  }

 private:
  recorder &r_;
  std::size_t tid_;
  event ev_{};
};

// ---------------------------------------------------------------- dump/load

inline const char *role_name(op_role r) noexcept {
  switch (r) {
    case op_role::produce: return "produce";
    case op_role::consume: return "consume";
    case op_role::exchange: return "exchange";
  }
  return "?";
}

inline const char *status_name(op_status s) noexcept {
  switch (s) {
    case op_status::ok: return "ok";
    case op_status::timeout: return "timeout";
    case op_status::miss: return "miss";
    case op_status::interrupted: return "interrupted";
  }
  return "?";
}

inline const char *wait_kind_name(wait_kind wk) noexcept {
  switch (wk) {
    case wait_kind::now: return "now";
    case wait_kind::timed: return "timed";
    case wait_kind::sync: return "sync";
    case wait_kind::async: return "async";
  }
  return "?";
}

// Lane column for dump_history: an index, a sentinel's name, or "-".
inline std::string lane_name(std::uint32_t lane) {
  if (lane == lane_unattributed) return "-";
  if (lane == lane_elim) return "elim";
  if (lane == lane_bulk) return "bulk";
  return std::to_string(lane);
}

// One line per event: "tid role wk status invoke ret given got lane".
// Sorted by invoke stamp so a human reads the history in (an) admissible
// real-time order. Used to dump failing histories next to their
// reproducing seed.
inline void dump_history(std::FILE *f, std::vector<event> events) {
  std::sort(events.begin(), events.end(),
            [](const event &a, const event &b) { return a.invoke < b.invoke; });
  std::fprintf(f, "# tid role wk status invoke ret given got lane\n");
  for (const event &e : events)
    std::fprintf(f, "%u %s %s %s %llu %llu %llu %llu %s\n", e.thread,
                 role_name(e.role), wait_kind_name(e.wk), status_name(e.status),
                 static_cast<unsigned long long>(e.invoke),
                 static_cast<unsigned long long>(e.ret),
                 static_cast<unsigned long long>(e.given),
                 static_cast<unsigned long long>(e.got),
                 lane_name(e.lane).c_str());
}

} // namespace ssq::check
