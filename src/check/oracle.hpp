// The synchronous-queue sequential oracle: validates a recorded history
// (check/history.hpp) against the specification of a synchronous queue.
//
// Checked properties (all sound: a reported violation is a real one, given
// the stamp guarantee documented in history.hpp):
//
//  P1  Exact pairing. Every value received by a successful consume was
//      offered by exactly one successful produce, and every successful
//      produce's value is received by exactly one successful consume
//      (after the workload's drain phase). No loss, no duplication.
//
//  P2  Cancelled operations never transfer. A produce that reported
//      timeout/miss/interrupted must not have its value show up anywhere;
//      a consume that reported failure must not have received a value.
//      (The facades enforce half of this by construction -- a failed op
//      returns no value -- so the teeth of P2 is the produce side: a value
//      both "returned to the caller" and delivered would be a duplication
//      of ownership, exactly the cancellation-vs-fulfillment race bug
//      class.)
//
//  P3  Synchrony. For every matched pair, the produce and consume
//      intervals must overlap: produce.invoke < consume.ret and
//      consume.invoke < produce.ret ("threads shake hands and leave in
//      pairs", paper SS1). Exempt: wait_kind::async producers, which by
//      contract leave before the handshake (only produce.invoke <
//      consume.ret is required).
//
//  P4  FIFO pairing (fair variants). If produce A provably precedes
//      produce B (A.ret < B.inv, so A's enqueue linearized first), their
//      deliveries must be orderable A-before-B. Each delivery lies inside
//      its pair's interval intersection (lb, ub); the order is impossible
//      -- hence a violation -- exactly when lb(A) >= ub(B). The symmetric
//      check runs on the consumer side. Both are O(n log n) sweeps.
//
//  P4' Per-lane FIFO (sharded fabric cores). The multi-lane relaxation of
//      P4: global FIFO is deliberately given up when the rendezvous point
//      is sharded, but each lane is itself a FIFO queue, so P4 must hold
//      within every lane. Requires lane-attributed events (core/lane.hpp).
//      Pairs delivered through the elimination arena or the bulk
//      spill/detach path (sentinel lanes) are FIFO-exempt by spec but must
//      be sentinel-attributed on *both* sides; a pair whose two sides
//      disagree on the pairing lane, or a successful op with no lane at
//      all, is a violation (the attribution itself is part of the relaxed
//      contract -- P1/P3 still bind every pair globally).
//
//  P5  Exchange symmetry (exchanger histories). Successful exchanges pair
//      perfectly: partner(partner(x)) == x, each party received what the
//      other gave, and the intervals overlap.
//
// What this oracle deliberately does not do: a Wing&Gong-style search for
// a full linearization. For the dual queues the properties above pin the
// observable spec (pairing, cancellation atomicity, synchrony, FIFO) while
// staying checkable on multi-million-event histories in one pass.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/history.hpp"

namespace ssq::check {

struct rules {
  // Check P4 (produce-side and consume-side FIFO pairing order).
  bool fifo = false;
  // Check P4' instead: FIFO per pairing lane, for lane-attributed sharded
  // cores (fabric). Mutually exclusive with `fifo` in practice -- a fabric
  // with more than one lane is not globally FIFO.
  bool fifo_lanes = false;
  // Check P3. On by default; exchangers and queues both require it.
  bool synchrony = true;
  // Treat unconsumed successful produces as violations (P1 second half).
  // Workloads that drain the structure before collecting set this true;
  // bounded runs that may abandon buffered async items set it false.
  bool require_all_consumed = true;
  // History is from an exchanger: apply P5 instead of P1/P4's
  // producer/consumer bipartite pairing.
  bool exchange = false;
};

struct violation {
  std::string what; // human-readable, one line
  event a;          // offending event
  event b;          // counterpart (thread==UINT32_MAX when n/a)
};

struct report {
  std::vector<violation> violations;
  std::size_t events = 0;
  std::size_t pairs = 0;
  std::size_t cancelled = 0;
  bool ok() const noexcept { return violations.empty(); }
};

namespace detail {

inline event none() {
  event e;
  e.thread = ~std::uint32_t{0};
  return e;
}

inline void add(report &r, std::string what, const event &a,
                const event &b) {
  if (r.violations.size() < 256) // cap: a broken run floods otherwise
    r.violations.push_back({std::move(what), a, b});
}

struct pair_iv {
  std::uint64_t p_inv, p_ret, c_inv, c_ret;
  bool p_async;
  const event *p, *c;
  // Delivery lies strictly inside (lb, ub) in stamp order.
  std::uint64_t lb() const noexcept {
    return p_inv > c_inv ? p_inv : c_inv;
  }
  std::uint64_t ub() const noexcept {
    std::uint64_t u = c_ret;
    if (!p_async && p_ret < u) u = p_ret;
    return u;
  }
};

// P4 sweep. `key_inv`/`key_ret` select which side's interval orders the
// premise (produce side: A.p_ret < B.p_inv; consume side symmetric).
template <typename InvFn, typename RetFn>
void check_fifo_side(report &rep, const std::vector<pair_iv> &pairs,
                     InvFn key_inv, RetFn key_ret, const char *side) {
  if (pairs.size() < 2) return;
  // Sort one copy by premise-return, one by premise-invoke.
  std::vector<const pair_iv *> by_ret(pairs.size()), by_inv(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i)
    by_ret[i] = by_inv[i] = &pairs[i];
  std::sort(by_ret.begin(), by_ret.end(),
            [&](const pair_iv *x, const pair_iv *y) {
              return key_ret(*x) < key_ret(*y);
            });
  std::sort(by_inv.begin(), by_inv.end(),
            [&](const pair_iv *x, const pair_iv *y) {
              return key_inv(*x) < key_inv(*y);
            });
  // Prefix-max of lb() over pairs whose premise-return precedes the
  // current pair's premise-invoke.
  std::size_t j = 0;
  std::uint64_t max_lb = 0;
  const pair_iv *argmax = nullptr;
  for (const pair_iv *b : by_inv) {
    while (j < by_ret.size() && key_ret(*by_ret[j]) < key_inv(*b)) {
      if (by_ret[j]->lb() > max_lb) {
        max_lb = by_ret[j]->lb();
        argmax = by_ret[j];
      }
      ++j;
    }
    if (argmax != nullptr && max_lb >= b->ub()) {
      add(rep,
          std::string("FIFO violation (") + side +
              "): an earlier-enqueued pair can only deliver after a "
              "later-enqueued one",
          *argmax->p, *b->p);
    }
  }
}

} // namespace detail

inline report check_history(const std::vector<event> &events,
                            const rules &r = rules{}) {
  report rep;
  rep.events = events.size();

  // ---------------------------------------------------------- exchanger
  if (r.exchange) {
    std::unordered_map<std::uint64_t, const event *> by_given;
    by_given.reserve(events.size());
    for (const event &e : events) {
      if (e.role != op_role::exchange) {
        detail::add(rep, "non-exchange op in exchange history", e,
                    detail::none());
        continue;
      }
      if (e.status != op_status::ok) {
        ++rep.cancelled;
        if (e.got != 0)
          detail::add(rep, "cancelled exchange received a value", e,
                      detail::none());
        continue;
      }
      if (!by_given.emplace(e.given, &e).second)
        detail::add(rep, "duplicate offered value", e, detail::none());
    }
    for (const event &e : events) {
      if (e.role != op_role::exchange || e.status != op_status::ok) continue;
      auto it = by_given.find(e.got);
      if (it == by_given.end()) {
        detail::add(rep, "received a value nobody offered (or a cancelled "
                         "party's value)",
                    e, detail::none());
        continue;
      }
      const event &partner = *it->second;
      if (partner.got != e.given)
        detail::add(rep, "asymmetric exchange: partner did not receive "
                         "this op's value",
                    e, partner);
      if (&partner == &e)
        detail::add(rep, "self-exchange", e, detail::none());
      if (r.synchrony &&
          !(e.invoke < partner.ret && partner.invoke < e.ret))
        detail::add(rep, "exchange intervals do not overlap", e, partner);
      ++rep.pairs;
    }
    rep.pairs /= 2; // counted from both sides
    return rep;
  }

  // ------------------------------------------------- producer / consumer
  std::unordered_map<std::uint64_t, const event *> produced_ok;
  produced_ok.reserve(events.size());
  std::unordered_map<std::uint64_t, const event *> produced_cancelled;

  for (const event &e : events) {
    if (e.role != op_role::produce) continue;
    if (e.given == 0) {
      detail::add(rep, "produce with value 0 (reserved)", e, detail::none());
      continue;
    }
    if (e.status == op_status::ok) {
      if (!produced_ok.emplace(e.given, &e).second)
        detail::add(rep, "value produced twice", e, detail::none());
    } else {
      ++rep.cancelled;
      produced_cancelled.emplace(e.given, &e);
    }
  }

  std::vector<detail::pair_iv> pairs;
  std::unordered_map<std::uint64_t, const event *> consumed;
  consumed.reserve(events.size());

  for (const event &e : events) {
    if (e.role != op_role::consume) continue;
    if (e.status != op_status::ok) {
      ++rep.cancelled;
      if (e.got != 0)
        detail::add(rep, "failed consume reported a value", e,
                    detail::none());
      continue;
    }
    if (!consumed.emplace(e.got, &e).second) {
      detail::add(rep, "value consumed twice (duplication)", e,
                  *consumed[e.got]);
      continue;
    }
    auto it = produced_ok.find(e.got);
    if (it == produced_ok.end()) {
      auto itc = produced_cancelled.find(e.got);
      if (itc != produced_cancelled.end())
        detail::add(rep,
                    "cancelled produce's value was delivered (the "
                    "cancellation-vs-fulfillment race)",
                    e, *itc->second);
      else
        detail::add(rep, "consumed a value never produced", e,
                    detail::none());
      continue;
    }
    const event &p = *it->second;
    detail::pair_iv pv;
    pv.p_inv = p.invoke;
    pv.p_ret = p.ret;
    pv.c_inv = e.invoke;
    pv.c_ret = e.ret;
    pv.p_async = (p.wk == wait_kind::async);
    pv.p = &p;
    pv.c = &e;
    pairs.push_back(pv);
    if (r.synchrony) {
      // P3: intervals must overlap (async producers: only "the item
      // cannot be taken before it was offered").
      if (!(p.invoke < e.ret))
        detail::add(rep, "value consumed before its produce was invoked",
                    e, p);
      if (!pv.p_async && !(e.invoke < p.ret))
        detail::add(rep,
                    "produce returned before its consumer arrived "
                    "(synchrony violated)",
                    e, p);
    }
  }
  rep.pairs = pairs.size();

  if (r.require_all_consumed) {
    for (auto &[v, p] : produced_ok)
      if (consumed.find(v) == consumed.end())
        detail::add(rep, "successful produce never consumed (lost item)",
                    *p, detail::none());
  }

  if (r.fifo) {
    detail::check_fifo_side(
        rep, pairs, [](const detail::pair_iv &x) { return x.p_inv; },
        [](const detail::pair_iv &x) { return x.p_ret; }, "producer order");
    detail::check_fifo_side(
        rep, pairs, [](const detail::pair_iv &x) { return x.c_inv; },
        [](const detail::pair_iv &x) { return x.c_ret; }, "consumer order");
  }

  if (r.fifo_lanes) {
    // P4': bucket pairs by pairing lane, then run the P4 sweeps inside
    // each bucket. Attribution errors are violations in their own right.
    std::unordered_map<std::uint32_t, std::vector<detail::pair_iv>> by_lane;
    for (const detail::pair_iv &pv : pairs) {
      const std::uint32_t pl = pv.p->lane, cl = pv.c->lane;
      if (pl == lane_unattributed || cl == lane_unattributed) {
        detail::add(rep,
                    "lane-attributed history contains a successful pair "
                    "with no lane attribution",
                    *pv.p, *pv.c);
        continue;
      }
      const bool p_sent = pl >= lane_sentinel_min;
      const bool c_sent = cl >= lane_sentinel_min;
      if (p_sent != c_sent || (!p_sent && pl != cl)) {
        detail::add(rep, "matched pair disagrees on its pairing lane",
                    *pv.p, *pv.c);
        continue;
      }
      if (p_sent) continue; // elimination / bulk handoff: FIFO-exempt
      by_lane[pl].push_back(pv);
    }
    for (auto &[lane, lp] : by_lane) {
      const std::string tag = "lane " + std::to_string(lane);
      detail::check_fifo_side(
          rep, lp, [](const detail::pair_iv &x) { return x.p_inv; },
          [](const detail::pair_iv &x) { return x.p_ret; },
          ("producer order, " + tag).c_str());
      detail::check_fifo_side(
          rep, lp, [](const detail::pair_iv &x) { return x.c_inv; },
          [](const detail::pair_iv &x) { return x.c_ret; },
          ("consumer order, " + tag).c_str());
    }
  }

  return rep;
}

// Render the first few violations for a test log / torture stderr.
inline std::string summarize(const report &rep, std::size_t max = 8) {
  std::string s;
  std::size_t n = 0;
  for (const violation &v : rep.violations) {
    if (n++ == max) {
      s += "  ... (" + std::to_string(rep.violations.size() - max) +
           " more)\n";
      break;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %s [tid=%u %s/%s/%s inv=%llu ret=%llu given=%llu "
                  "got=%llu lane=%s]\n",
                  v.what.c_str(), v.a.thread, role_name(v.a.role),
                  wait_kind_name(v.a.wk), status_name(v.a.status),
                  static_cast<unsigned long long>(v.a.invoke),
                  static_cast<unsigned long long>(v.a.ret),
                  static_cast<unsigned long long>(v.a.given),
                  static_cast<unsigned long long>(v.a.got),
                  lane_name(v.a.lane).c_str());
    s += buf;
  }
  return s;
}

} // namespace ssq::check
