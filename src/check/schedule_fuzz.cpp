#include "check/schedule_fuzz.hpp"

#if defined(SSQ_SCHEDULE_FUZZ)

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/rng.hpp"

namespace ssq::fuzz {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace {

std::atomic<std::uint64_t> g_epoch{0}; // bumped by enable(): re-seeds threads
std::atomic<std::uint64_t> g_fired{0};
config g_cfg; // written only while quiescent (see header)

struct thread_stream {
  xoshiro256 rng{1};
  std::uint64_t epoch = ~std::uint64_t{0};
};

thread_stream &stream() {
  thread_local thread_stream s;
  std::uint64_t e = g_epoch.load(std::memory_order_acquire);
  if (s.epoch != e) {
    // Seed: global seed x epoch x a per-thread splitmix stream so threads
    // are uncorrelated but the set of streams is reproducible per seed.
    thread_local const std::uint64_t tid_salt = [] {
      static std::atomic<std::uint64_t> counter{0};
      return counter.fetch_add(1, std::memory_order_relaxed) + 1;
    }();
    std::uint64_t mix = g_cfg.seed ^ (e * 0x9e3779b97f4a7c15ULL);
    mix ^= tid_salt * 0xbf58476d1ce4e5b9ULL;
    s.rng = xoshiro256(mix);
    s.epoch = e;
  }
  return s;
}

// Environment activation for binaries that never call enable() themselves
// (the ctest suites under the schedule-fuzz CI job): SSQ_FUZZ=1 turns the
// points on at first use, SSQ_FUZZ_SEED overrides the seed.
[[maybe_unused]] const bool g_env_init = [] {
  const char *on = std::getenv("SSQ_FUZZ");
  if (on && *on && *on != '0') {
    config c;
    if (const char *s = std::getenv("SSQ_FUZZ_SEED"))
      c.seed = std::strtoull(s, nullptr, 10);
    enable(c);
  }
  return true;
}();

} // namespace

void enable(const config &c) noexcept {
  g_cfg = c;
  g_fired.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  detail::g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept {
  detail::g_enabled.store(false, std::memory_order_release);
}

bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_acquire);
}

std::uint64_t perturbations() noexcept {
  return g_fired.load(std::memory_order_relaxed);
}

namespace detail {

void perturb_slow(const char * /*label*/) noexcept {
  auto &s = stream();
  std::uint64_t roll = s.rng.below(1000);
  if (roll < g_cfg.sleep_permille) {
    g_fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(s.rng.below(g_cfg.max_sleep_us + 1)));
  } else if (roll < g_cfg.sleep_permille + g_cfg.yield_permille) {
    g_fired.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

} // namespace detail

} // namespace ssq::fuzz

#endif // SSQ_SCHEDULE_FUZZ

namespace ssq::fuzz {
// Anchor so this TU is never empty (keeps ar/ranlib quiet when the
// perturbation points are compiled out).
bool compiled_with_schedule_fuzz() noexcept {
#if defined(SSQ_SCHEDULE_FUZZ)
  return true;
#else
  return false;
#endif
}
} // namespace ssq::fuzz
