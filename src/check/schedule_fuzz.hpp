// Schedule-perturbation points for the correctness harness (ssq::check).
//
// Lincheck-style model checkers own the scheduler; we do not. What we can
// do is widen the race windows the scheduler rarely opens: at labeled
// interleaving points inside the cores (publication CAS, cancellation CAS,
// clean()/clean_me handoff, park/signal edges) a seeded per-thread RNG
// occasionally yields or sleeps, so that "the fulfiller ran between these
// two instructions" stops being a one-in-a-billion event and starts being a
// per-second event. Combined with the history oracle (check/oracle.hpp)
// this is the practical equivalent of schedule exploration for a 30-second
// stress run.
//
// Cost discipline: unless the build defines SSQ_SCHEDULE_FUZZ (CMake option
// of the same name), SSQ_INTERLEAVE(label) expands to ((void)0) -- zero
// code, zero data, zero branches; docs/testing.md carries the ablation
// note. When compiled in, each point is one relaxed load of the enabled
// flag plus (only when enabled) one RNG draw.
//
// Determinism caveat: the seed makes the *perturbation stream* per thread
// reproducible, not the whole schedule (the OS still interleaves). In
// practice re-running a failing seed reproduces quickly because the seed
// controls both the workload mix and the perturbation dice.
#pragma once

namespace ssq::fuzz {
// True when the library was built with the perturbation points compiled in
// (CMake -DSSQ_SCHEDULE_FUZZ=ON). Lets tools report which mode they run in.
bool compiled_with_schedule_fuzz() noexcept;
} // namespace ssq::fuzz

#if defined(SSQ_SCHEDULE_FUZZ)

#include <atomic>
#include <cstdint>

namespace ssq::fuzz {

struct config {
  std::uint64_t seed = 1;
  // Per-point probabilities in permille (out of 1000).
  std::uint32_t yield_permille = 20; // std::this_thread::yield()
  std::uint32_t sleep_permille = 2;  // sleep_for(random 0..max_sleep_us)
  std::uint32_t max_sleep_us = 50;
};

// Process-wide switch. enable() may be called again to re-seed between
// bounded runs; it must not race with threads inside perturbation points
// (call it while the workload threads are quiescent).
void enable(const config &c) noexcept;
void disable() noexcept;
bool enabled() noexcept;

// Diagnostics: how many points fired (yield or sleep) since enable().
std::uint64_t perturbations() noexcept;

// Internals -----------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
void perturb_slow(const char *label) noexcept;
} // namespace detail

inline void maybe_perturb(const char *label) noexcept {
  if (detail::g_enabled.load(std::memory_order_relaxed)) [[unlikely]]
    detail::perturb_slow(label);
}

} // namespace ssq::fuzz

#define SSQ_INTERLEAVE(label) ::ssq::fuzz::maybe_perturb(label)

#else // !SSQ_SCHEDULE_FUZZ

#define SSQ_INTERLEAVE(label) ((void)0)

#endif
