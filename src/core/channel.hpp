// channel<T>: a closeable CSP channel over the synchronous queue.
//
// The paper (§1) positions synchronous queues as "the central
// synchronization primitive of Hoare's CSP"; this adapter supplies the two
// affordances CSP programs expect on top of raw put/take vocabulary:
//
//   * send/recv naming with value semantics, and
//   * close(): after close, senders fail fast and every blocked party
//     drains out with "channel closed" rather than hanging forever.
//
// Close is implemented with a channel-wide interrupt token: blocked
// operations carry it and observe closure within one park quantum; arriving
// operations check the flag up front. In-flight pairings that have already
// matched complete normally (close is not an abort of completed handoffs).
#pragma once

#include <optional>
#include <utility>

#include "core/synchronous_queue.hpp"

namespace ssq {

template <typename T, bool Fair = true, core_kind Core = core_kind::linked>
class channel {
 public:
  static constexpr bool segmented_core = Core == core_kind::segmented;

  channel() = default;
  channel(const channel &) = delete;
  channel &operator=(const channel &) = delete;

  // Lane-count policy hook, forwarded to the fabric core (fabric.hpp).
  explicit channel(fabric_config cfg)
    requires(Core == core_kind::fabric)
      : q_(cfg) {}

  // Blocks until received or the channel closes. Returns false (with the
  // value conceptually discarded) iff the channel is/was closed.
  bool send(T v) {
    if (closed()) return false;
    return q_.try_put(std::move(v), deadline::unbounded(), &closer_);
  }

  // Blocks until a value arrives or the channel closes.
  std::optional<T> recv() {
    if (closed()) {
      // Even after close, drain anything a concurrent sender already
      // committed (it paired before observing closure).
      return q_.poll();
    }
    auto v = q_.try_take(deadline::unbounded(), &closer_);
    if (!v && closed()) return q_.poll();
    return v;
  }

  // Non-blocking / timed forms.
  bool try_send(T v, deadline dl = deadline::expired()) {
    if (closed()) return false;
    return q_.try_put(std::move(v), dl, &closer_);
  }

  std::optional<T> try_recv(deadline dl = deadline::expired()) {
    auto v = q_.try_take(dl, &closer_);
    if (!v && closed()) return q_.poll();
    return v;
  }

  // Wake every blocked sender and receiver; all subsequent sends fail and
  // receives return nullopt. Idempotent.
  void close() noexcept { closer_.interrupt(); }

  bool closed() const noexcept { return closer_.interrupted(); }

  bool is_idle() const noexcept { return q_.is_empty(); }

  auto &queue() noexcept { return q_; }

 private:
  synchronous_queue<T, Fair, mem::pooled_hp_reclaimer, Core> q_;
  sync::interrupt_token closer_;
};

// CSP over the segmented core: reservation-based select, 1/64th the
// reclaimer traffic (core/segment_queue.hpp).
template <typename T>
using segmented_channel = channel<T, true, core_kind::segmented>;

// CSP over the N-lane fabric: FIFO-per-lane ordering (the fabric's fair
// mode), select via the polling path (core/fabric.hpp, core/select.hpp).
template <typename T>
using fabric_channel = channel<T, true, core_kind::fabric>;

} // namespace ssq
