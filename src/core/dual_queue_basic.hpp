// dual_queue_basic: the synchronous dual queue exactly as printed in the
// paper's Listing 5 ("Spin-based enqueue; dequeue is symmetric except for
// the direction of data transfer"), plus the memory-reclamation scaffolding
// C++ requires (hazard slots where Java had GC).
//
// No timeout, no parking, no poll/offer: this is the pedagogical reference
// version used by the test suite to cross-check core/transfer_queue.hpp and
// by readers following the paper. Spinning includes a periodic yield so the
// reference version remains usable on a uniprocessor.
//
// Line-number comments refer to Listing 5.
//
// Memory-order discipline (docs/memory_model.md): the head/tail/next CASes
// and the snapshot validation re-reads stay seq_cst (they are Listing 5's
// linearization points). The data-word handoff relaxes as the labeled edge
// `node.data` -- release: the fulfilling CAS of the waiter's data word;
// acquire: the waiter's spin probe and final read -- and the annotated
// acquire snapshot loads. Weakened orders are spelled SSQ_MO(...) so
// -DSSQ_FORCE_SEQ_CST pins the file for differential runs.
#pragma once

#include <atomic>

#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class dual_queue_basic {
  using codec = item_codec<T>;

  struct node {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<node *> next{nullptr};
    std::atomic<item_token> data;
    mem::life_cycle life;
    const bool is_request;

    node(item_token d, bool req) noexcept : data(d), is_request(req) {}
  };

 public:
  dual_queue_basic() {
    node *dummy = rec_.template create<node>(empty_token, false);
    dummy->life.preset_released();
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
  }

  ~dual_queue_basic() {
    node *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      node *nx = n->next.load(std::memory_order_relaxed);
      item_token d = n->data.load(std::memory_order_relaxed);
      if (!n->is_request && d != empty_token) codec::dispose(d);
      rec_.destroy(n);
      n = nx;
    }
  }

  dual_queue_basic(const dual_queue_basic &) = delete;
  dual_queue_basic &operator=(const dual_queue_basic &) = delete;

  // Listing 5, enqueue().
  void enqueue(T v) {
    const item_token e = codec::encode(std::move(v));
    node *offer = nullptr; // lazily: `new Node(e, Data)` (line 03)
    typename Reclaimer::slot hz_t(rec_), hz_h(rec_), hz_n(rec_);

    for (;;) {                                   // line 05
      node *t = hz_t.protect(tail_.value);       // line 06
      node *h = hz_h.protect(head_.value);       // line 07
      if (h == t || !t->is_request) {            // line 08
        SSQ_MO_JUSTIFIED(
            "acquire: the seq_cst tail re-check on the next line validates "
            "the snapshot");
        node *n = t->next.load(SSQ_MO(acquire)); // line 09
        if (t == tail_.value.load(std::memory_order_seq_cst)) { // line 10
          if (n != nullptr) {                    // line 11
            cas_tail(t, n);                      // line 12
          } else {
            if (!offer) offer = rec_.template create<node>(e, false);
            if (t->next.compare_exchange_strong(
                    n, offer, std::memory_order_seq_cst)) { // line 13
              cas_tail(t, offer);                // line 14
              spin_while([&] {                   // lines 15-16
                SSQ_MO_ACQUIRE_EDGE("node.data");
                return offer->data.load(SSQ_MO(acquire)) == e;
              });
              h = hz_h.protect(head_.value);     // line 17
              SSQ_MO_JUSTIFIED(
                  "acquire: comparison-only read under a validated hazard");
              if (offer == h->next.load(SSQ_MO(acquire))) // line 18
                cas_head(h, offer);              // line 19
              if (offer->life.mark_released()) rec_.retire(offer);
              return;                            // line 20
            }
          }
        }
      } else {                                   // line 23: reservations
        SSQ_MO_JUSTIFIED(
            "acquire: snapshot; the seq_cst re-reads below validate it "
            "before n is trusted");
        node *n = h->next.load(SSQ_MO(acquire)); // line 24
        hz_n.set(n);
        if (t != tail_.value.load(std::memory_order_seq_cst) ||
            h != head_.value.load(std::memory_order_seq_cst) ||
            n != h->next.load(std::memory_order_seq_cst) ||
            n == nullptr)
          continue;                              // line 25-26: bad snapshot
        item_token expected = empty_token;
        // seq_cst: the data-word CAS is the fulfill linearization point;
        // the label documents the release side of the node.data edge.
        SSQ_MO_RELEASE_EDGE("node.data");
        bool success = n->data.compare_exchange_strong(
            expected, e, std::memory_order_seq_cst); // line 27
        cas_head(h, n);                          // line 28
        if (success) {                           // line 29
          // allocated on an earlier pass, never linked
          if (offer) rec_.destroy(offer);
          return;                                // line 30
        }
      }
    }
  }

  // Symmetric dequeue (direction of data transfer reversed).
  T dequeue() {
    node *req = nullptr;
    typename Reclaimer::slot hz_t(rec_), hz_h(rec_), hz_n(rec_);

    for (;;) {
      node *t = hz_t.protect(tail_.value);
      node *h = hz_h.protect(head_.value);
      if (h == t || t->is_request) { // empty or contains reservations
        SSQ_MO_JUSTIFIED(
            "acquire: the seq_cst tail re-check on the next line validates "
            "the snapshot");
        node *n = t->next.load(SSQ_MO(acquire));
        if (t == tail_.value.load(std::memory_order_seq_cst)) {
          if (n != nullptr) {
            cas_tail(t, n);
          } else {
            if (!req) req = rec_.template create<node>(empty_token, true);
            if (t->next.compare_exchange_strong(n, req,
                                                std::memory_order_seq_cst)) {
              cas_tail(t, req);
              spin_while([&] {
                SSQ_MO_ACQUIRE_EDGE("node.data");
                return req->data.load(SSQ_MO(acquire)) == empty_token;
              });
              h = hz_h.protect(head_.value);
              SSQ_MO_JUSTIFIED(
                  "acquire: comparison-only read under a validated hazard");
              if (req == h->next.load(SSQ_MO(acquire)))
                cas_head(h, req);
              SSQ_MO_ACQUIRE_EDGE("node.data");
              item_token got = req->data.load(SSQ_MO(acquire));
              if (req->life.mark_released()) rec_.retire(req);
              return codec::decode_consume(got);
            }
          }
        }
      } else { // queue contains data
        SSQ_MO_JUSTIFIED(
            "acquire: snapshot; the seq_cst re-reads below validate it "
            "before n is trusted");
        node *n = h->next.load(SSQ_MO(acquire));
        hz_n.set(n);
        if (t != tail_.value.load(std::memory_order_seq_cst) ||
            h != head_.value.load(std::memory_order_seq_cst) ||
            n != h->next.load(std::memory_order_seq_cst) ||
            n == nullptr)
          continue;
        item_token x = n->data.load(std::memory_order_seq_cst);
        bool success =
            x != empty_token &&
            n->data.compare_exchange_strong(x, empty_token,
                                            std::memory_order_seq_cst);
        cas_head(h, n);
        if (success) {
          if (req) rec_.destroy(req); // never linked
          return codec::decode_consume(x);
        }
      }
    }
  }

  // ssq-lint: suppress(hazard-coverage) -- racy observer by contract; the
  // dummy is only retired after head_ moves past it (stale answers OK).
  bool is_empty() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, documented approximate");
    node *h = head_.value.load(SSQ_MO(acquire));
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, documented approximate");
    return h->next.load(SSQ_MO(acquire)) == nullptr;
  }

 private:
  template <typename Pred>
  static void spin_while(Pred pred) noexcept {
    auto pol = sync::spin_policy::spin_only();
    for (int i = 0; pred(); ++i) pol.relax(i);
  }

  void cas_tail(node *t, node *nt) noexcept {
    tail_.value.compare_exchange_strong(t, nt, std::memory_order_seq_cst);
  }

  void cas_head(node *h, node *nh) {
    if (head_.value.compare_exchange_strong(h, nh,
                                            std::memory_order_seq_cst)) {
      if (h->life.mark_unlinked()) rec_.retire(h);
    }
  }

  Reclaimer rec_;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<node *> head_;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<node *> tail_;
};

} // namespace ssq
