// dual_stack_basic: the synchronous dual stack exactly as printed in the
// paper's Listing 6 ("Spin-based annihilating push; pop is symmetric"),
// plus the reclamation scaffolding C++ requires.
//
// Port note: Listing 6's `match` field is a node pointer; a satisfied waiter
// then reads `match.data` -- safe under GC, not here. We fold the value into
// the match word itself (a reservation's match receives the data token; a
// data node's match receives the fulfiller's address as a claim marker), so
// a waiter only ever reads its own node. The fulfiller reads the waiter's
// immutable data field under a validated hazard *before* the match CAS.
//
// Line-number comments refer to Listing 6.
//
// Memory-order discipline (docs/memory_model.md): the head CAS and the
// publish-and-revalidate reads stay seq_cst (Listing 6's linearization
// points). The match-word handoff relaxes as the labeled edge `node.match`
// -- release: the match CAS in match_word; acquire: the waiter's spin probe
// and follow-up read -- plus the annotated acquire snapshot loads.
// Weakened orders are spelled SSQ_MO(...) so -DSSQ_FORCE_SEQ_CST pins the
// file for differential runs.
#pragma once

#include <atomic>

#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class dual_stack_basic {
  using codec = item_codec<T>;
  enum : unsigned { req_mode = 0, data_mode = 1, fulfilling = 2 };

  struct node {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<node *> next{nullptr};
    std::atomic<item_token> match{empty_token};
    item_token data; // immutable after construction
    unsigned mode;   // mutated only while unpublished
    mem::life_cycle life;

    node(item_token d, unsigned m) noexcept : data(d), mode(m) {}
    bool is_data() const noexcept { return (mode & data_mode) != 0; }
    bool is_fulfilling() const noexcept { return (mode & fulfilling) != 0; }
  };

 public:
  dual_stack_basic() = default;

  ~dual_stack_basic() {
    node *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      node *nx = n->next.load(std::memory_order_relaxed);
      if (n->is_data() && n->data != empty_token &&
          n->match.load(std::memory_order_relaxed) == empty_token)
        codec::dispose(n->data);
      rec_.destroy(n);
      n = nx;
    }
  }

  dual_stack_basic(const dual_stack_basic &) = delete;
  dual_stack_basic &operator=(const dual_stack_basic &) = delete;

  // Listing 6, push().
  void push(T v) { (void)transfer(codec::encode(std::move(v)), data_mode); }

  // Symmetric pop (direction of data transfer reversed).
  T pop() { return codec::decode_consume(transfer(empty_token, req_mode)); }

  bool is_empty() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, no dereference follows");
    return head_.value.load(SSQ_MO(acquire)) == nullptr;
  }

 private:
  // Both operations share one body; `mode` distinguishes direction.
  item_token transfer(item_token e, unsigned mode) {
    node *d = nullptr;
    typename Reclaimer::slot hz_h(rec_), hz_n(rec_), hz_nn(rec_);

    for (;;) {                                    // line 05
      node *h = hz_h.protect(head_.value);        // line 06
      if (h == nullptr || h->mode == mode) {      // line 07 (and symmetric)
        if (!d) {
          d = rec_.template create<node>(e, mode); // line 03
        } else {
          d->mode = mode;
        }
        SSQ_MO_JUSTIFIED(
            "relaxed: pre-publication store; the seq_cst head CAS below "
            "releases the node");
        d->next.store(h, SSQ_MO(relaxed)); // line 08
        if (!head_.value.compare_exchange_strong(
                h, d, std::memory_order_seq_cst)) // line 09
          continue;                               // line 10
        spin_while([&] {                          // lines 11-12
          SSQ_MO_ACQUIRE_EDGE("node.match");
          return d->match.load(SSQ_MO(acquire)) == empty_token;
        });
        SSQ_MO_ACQUIRE_EDGE("node.match");
        item_token m = d->match.load(SSQ_MO(acquire));
        h = hz_h.protect(head_.value);            // line 13
        SSQ_MO_JUSTIFIED(
            "acquire: comparison-only read under a validated hazard on h");
        if (h != nullptr &&
            d == h->next.load(SSQ_MO(acquire))) { // line 14
          pop_two(h, read_next_of(d, hz_n));      // line 15
        }
        if (d->life.mark_released()) rec_.retire(d);
        return (mode == req_mode) ? m : e;        // line 16
      } else if (!h->is_fulfilling()) {           // line 17
        if (!d) {
          d = rec_.template create<node>(e, mode | fulfilling); // line 18
        } else {
          d->mode = mode | fulfilling;
        }
        SSQ_MO_JUSTIFIED(
            "relaxed: pre-publication store; the seq_cst head CAS below "
            "releases the node");
        d->next.store(h, SSQ_MO(relaxed));
        if (!head_.value.compare_exchange_strong(
                h, d, std::memory_order_seq_cst)) // line 19
          continue;                               // line 20
        // Listing 6 line 21 re-reads d->next here; that re-read is not
        // covered by any hazard (the lint's hazard-coverage check catches
        // it). `h` -- the displaced head d->next was stored from, still
        // covered by hz_h -- is the same node, and cannot be unlinked
        // before it is matched.
        item_token theirs = h->data;
        node *n = read_next_of(h, hz_n);          // line 22
        match_word(h, d);                         // line 23
        pop_two_from(d, n);                       // line 24
        if (d->life.mark_released()) rec_.retire(d);
        return (mode == req_mode) ? theirs : e;   // line 25
      } else {                                    // line 26: h is fulfilling
        node *n = read_next_of(h, hz_n);          // line 27
        if (h->life.is_unlinked()) continue;
        if (n == nullptr) {
          // The fulfiller's partner vanished -- only possible transiently
          // here (no cancellation in the basic variant); retry.
          continue;
        }
        node *nn = read_next_of(n, hz_nn);        // line 28
        if (n->life.is_unlinked()) continue;
        match_word(n, h);                         // line 29
        pop_two_from(h, nn);                      // line 30
      }
    }
  }

  // The value the waiter under fulfiller f must receive in its match word.
  static item_token match_value(node *waiter, node *f) noexcept {
    return waiter->is_data() ? reinterpret_cast<item_token>(f) : f->data;
  }

  // casMatch(null, f), folding the payload in (see port note).
  void match_word(node *waiter, node *f) noexcept {
    item_token expected = empty_token;
    // seq_cst: the match CAS is the annihilation linearization point; the
    // label documents the release side of the node.match edge.
    SSQ_MO_RELEASE_EDGE("node.match");
    waiter->match.compare_exchange_strong(expected, match_value(waiter, f),
                                          std::memory_order_seq_cst);
  }

  // Protected read of x->next (same validation argument as the full
  // implementation: a successor can only be retired after its predecessor
  // is unlinked or repointed).
  SSQ_ACQUIRES_HAZARD
  node *read_next_of(node *x, typename Reclaimer::slot &hz) noexcept {
    for (;;) {
      SSQ_MO_JUSTIFIED(
          "acquire: first half of publish-and-revalidate; the seq_cst "
          "re-read below is the ordering anchor");
      node *n = x->next.load(SSQ_MO(acquire));
      hz.set(n);
      if (x->life.is_unlinked()) return n; // caller rechecks
      if (x->next.load(std::memory_order_seq_cst) == n) return n;
    }
  }

  // Pop fulfiller `top` and its matched partner: head: top -> rest.
  // `partner` is only dereferenced after this thread wins the head CAS that
  // unlinks it; life_cycle arbitration then guarantees it cannot be retired
  // before our mark_unlinked resolves (no splicing in the basic variant).
  // ssq-lint: suppress(hazard-coverage) -- see the paragraph above.
  void pop_two_from(node *top, node *rest) {
    SSQ_MO_JUSTIFIED(
        "acquire: next is immutable once the pair is at the top (no "
        "cancellation in the basic variant); CAS success validates it");
    node *partner = top->next.load(SSQ_MO(acquire));
    node *expected = top;
    if (head_.value.compare_exchange_strong(expected, rest,
                                            std::memory_order_seq_cst)) {
      if (top->life.mark_unlinked()) rec_.retire(top);
      if (partner && partner->life.mark_unlinked()) rec_.retire(partner);
    }
  }

  // Identical, used from the waiter side where `top` is the fulfiller above
  // us and `rest` skips ourselves.
  void pop_two(node *top, node *rest) { pop_two_from(top, rest); }

  template <typename Pred>
  static void spin_while(Pred pred) noexcept {
    auto pol = sync::spin_policy::spin_only();
    for (int i = 0; pred(); ++i) pol.relax(i);
  }

  Reclaimer rec_;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<node *> head_;
};

} // namespace ssq
