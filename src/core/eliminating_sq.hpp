// eliminating_sq<T>: the unfair synchronous queue with an elimination-arena
// front end -- the extension the paper sketches and leaves to future work
// (§5): "the threads must eventually fall back ... to try the main
// location."
//
// Every operation first spends a short, bounded patience trying to pair up
// in the arena; only on failure does it fall back to the dual stack. The
// paper predicts ("In preliminary work, we have found elimination to be
// beneficial only in cases of artificially extreme contention") -- and
// bench/ablation_elimination measures -- that the arena detour costs
// latency at low contention and only pays off when the main head pointer is
// saturated.
#pragma once

#include <optional>
#include <utility>

#include "core/elimination_arena.hpp"
#include "core/transfer_stack.hpp"
#include "core/wait_kind.hpp"
#include "support/codec.hpp"

namespace ssq {

template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class eliminating_sq {
  using codec = item_codec<T>;

 public:
  static constexpr bool supports_timed = true;
  static constexpr bool is_fair = false;

  explicit eliminating_sq(
      nanoseconds arena_patience = std::chrono::microseconds(10),
      sync::spin_policy pol = sync::spin_policy::adaptive())
      : pol_(pol), patience_(arena_patience), core_(pol) {
    core_.set_token_disposer(&dispose_token);
  }

  void put(T v) {
    item_token t = codec::encode(std::move(v));
    if (arena_.try_eliminate(t, true, deadline::in(patience_), pol_) !=
        empty_token)
      return;
    core_.xfer(t, true, wait_kind::sync);
  }

  T take() {
    item_token r =
        arena_.try_eliminate(empty_token, false, deadline::in(patience_), pol_);
    if (r == empty_token) r = core_.xfer(empty_token, false, wait_kind::sync);
    return codec::decode_consume(r);
  }

  bool offer(T v, deadline dl = deadline::expired()) {
    item_token t = codec::encode(std::move(v));
    // Polling operations skip the arena: they must observe only *already
    // waiting* counterparts, and an arena visit could miss one parked in
    // the main structure.
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(t, true, wk, dl);
    if (r == empty_token) {
      codec::dispose(t);
      return false;
    }
    return true;
  }

  std::optional<T> poll(deadline dl = deadline::expired()) {
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(empty_token, false, wk, dl);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }

  sync::spin_policy pol_;
  nanoseconds patience_;
  elimination_arena<16> arena_;
  transfer_stack<Reclaimer> core_;
};

} // namespace ssq
