// eliminating_sq<T, Fair>: a synchronous queue with an elimination-arena
// front end -- the extension the paper sketches and leaves to future work
// (§5): "the threads must eventually fall back ... to try the main
// location."
//
// Every blocking operation first spends a short, bounded patience trying to
// pair up in the arena; only on failure does it fall back to the dual
// structure (stack when Fair = false, queue when Fair = true). The paper
// predicts ("In preliminary work, we have found elimination to be
// beneficial only in cases of artificially extreme contention") -- and
// bench/ablation_elimination measures -- that the arena detour costs
// latency at low contention and only pays off when the main head pointer is
// saturated.
//
// Ordering contract: elimination pairs opportunistically, so even over the
// FIFO dual queue the *global* order is relaxed -- an arena handoff can
// overtake older parked waiters. Operations are lane-attributed
// (core/lane.hpp): core pairings report lane 0, arena pairings report
// lane_elim, and the oracle checks FIFO per lane with arena pairs exempt
// (check/oracle.hpp P4').
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "core/elimination_arena.hpp"
#include "core/lane.hpp"
#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "core/wait_kind.hpp"
#include "support/codec.hpp"

namespace ssq {

template <typename T, bool Fair = false,
          typename Reclaimer = mem::pooled_hp_reclaimer>
class eliminating_sq {
  using codec = item_codec<T>;
  using core_t = std::conditional_t<Fair, transfer_queue<Reclaimer>,
                                    transfer_stack<Reclaimer>>;

 public:
  static constexpr bool supports_timed = true;
  static constexpr bool is_fair = Fair;
  // The checked-ops wrappers read ssq::tl_last_lane after each operation.
  static constexpr bool lane_attributed = true;

  explicit eliminating_sq(
      nanoseconds arena_patience = std::chrono::microseconds(10),
      sync::spin_policy pol = sync::spin_policy::adaptive())
      : pol_(pol), patience_(arena_patience), core_(pol) {
    core_.set_token_disposer(&dispose_token);
  }

  void put(T v) {
    tl_last_lane = lane_unattributed;
    item_token t = codec::encode(std::move(v));
    if (arena_.try_eliminate(t, true, deadline::in(patience_), pol_) !=
        empty_token) {
      tl_last_lane = lane_elim;
      return;
    }
    core_.xfer(t, true, wait_kind::sync);
    tl_last_lane = 0;
  }

  T take() {
    tl_last_lane = lane_unattributed;
    item_token r =
        arena_.try_eliminate(empty_token, false, deadline::in(patience_), pol_);
    if (r != empty_token) {
      tl_last_lane = lane_elim;
    } else {
      r = core_.xfer(empty_token, false, wait_kind::sync);
      tl_last_lane = 0;
    }
    return codec::decode_consume(r);
  }

  bool offer(T v, deadline dl = deadline::expired()) {
    tl_last_lane = lane_unattributed;
    item_token t = codec::encode(std::move(v));
    // Non-blocking ("now") operations skip the arena: they must observe
    // only *already waiting* counterparts, and an arena visit could miss
    // one parked in the main structure. Timed operations spend the smaller
    // of arena patience and their own deadline in the arena first, so the
    // elimination path stays covered by the timed checked workloads.
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    if (wk == wait_kind::timed &&
        arena_.try_eliminate(t, true, arena_deadline(dl), pol_) !=
            empty_token) {
      tl_last_lane = lane_elim;
      return true;
    }
    item_token r = core_.xfer(t, true, wk, dl);
    if (r == empty_token) {
      codec::dispose(t);
      return false;
    }
    tl_last_lane = 0;
    return true;
  }

  std::optional<T> poll(deadline dl = deadline::expired()) {
    tl_last_lane = lane_unattributed;
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    if (wk == wait_kind::timed) {
      item_token e =
          arena_.try_eliminate(empty_token, false, arena_deadline(dl), pol_);
      if (e != empty_token) {
        tl_last_lane = lane_elim;
        return codec::decode_consume(e);
      }
    }
    item_token r = core_.xfer(empty_token, false, wk, dl);
    if (r == empty_token) return std::nullopt;
    tl_last_lane = 0;
    return codec::decode_consume(r);
  }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }

  // Arena visit for a timed op: bounded by both the arena patience and the
  // caller's own deadline (patience must never be extended).
  deadline arena_deadline(deadline dl) const {
    deadline a = deadline::in(patience_);
    return (dl.when() < a.when()) ? dl : a;
  }

  sync::spin_policy pol_;
  nanoseconds patience_;
  elimination_arena<16> arena_;
  core_t core_;
};

// The fair flavor: elimination front end over the FIFO dual queue.
template <typename T, typename R = mem::pooled_hp_reclaimer>
using fair_eliminating_sq = eliminating_sq<T, true, R>;

} // namespace ssq
