// Typed elimination arena for synchronous handoff (paper §5).
//
// "Using elimination, multiple locations (comprising an arena) are employed
// as potential targets of the main atomic instructions ... If two threads
// meet in one of these lower-traffic areas, they cancel each other out."
//
// Unlike exchanger<T>, which pairs *any* two threads, a synchronous-queue
// arena must pair complementary operations only: a producer parked in a slot
// may be claimed only by a consumer and vice versa (two producers meeting
// must not swap). Each installed node therefore carries its mode, and a
// same-mode arrival treats the slot as a collision.
//
// Used by eliminating_sq (core/eliminating_sq.hpp); benchmarked by
// bench/ablation_elimination, which tests the paper's prediction that
// elimination pays off "only in cases of artificially extreme contention."
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>

#include "check/schedule_fuzz.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/rng.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <std::size_t ArenaSize = 16>
class elimination_arena {
  struct enode {
    item_token mine;                          // producer's token, or empty
    std::atomic<item_token> got{empty_token}; // counterpart result
    sync::park_slot slot;
    explicit enode(item_token m) noexcept : mine(m) {}
    item_token self_marker() const noexcept {
      return reinterpret_cast<item_token>(this);
    }
  };

  // Slot values carry the occupant's mode in the low pointer bit, so an
  // arrival can classify a peer WITHOUT dereferencing it -- the peer's node
  // lives on its stack and may be withdrawn (and the frame reused) at any
  // moment before we win the claim CAS.
  static enode *pack(enode *n, bool is_data) noexcept {
    return reinterpret_cast<enode *>(reinterpret_cast<std::uintptr_t>(n) |
                                     (is_data ? 1u : 0u));
  }
  static enode *unpack(enode *p) noexcept {
    return reinterpret_cast<enode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }
  static bool packed_is_data(enode *p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1) != 0;
  }

 public:
  elimination_arena() {
    for (auto &s : slots_) s.value.store(nullptr, std::memory_order_relaxed);
  }
  elimination_arena(const elimination_arena &) = delete;
  elimination_arena &operator=(const elimination_arena &) = delete;

  // Attempt a rendezvous within deadline `dl` (typically a few microseconds
  // of patience). For producers (is_data=true, e != empty): returns e on
  // success. For consumers: returns the received token. Returns empty_token
  // when no counterpart showed up -- caller falls back to the main
  // structure.
  item_token try_eliminate(item_token e, bool is_data, deadline dl,
                           sync::spin_policy pol) {
    thread_local xoshiro256 rng{0xA0761D6478BD642FULL ^
                                reinterpret_cast<std::uintptr_t>(&rng)};
    enode self{e};
    std::size_t idx = rng.below(live_slots());

    std::atomic<enode *> &slot = slots_[idx].value;
    enode *cur = slot.load(std::memory_order_acquire);

    if (cur != nullptr && packed_is_data(cur) != is_data) {
      // Complementary party parked here: claim it.
      //
      // Withdraw-vs-claim audit. The peer's enode lives on its stack and
      // the frame can be reused the instant the peer's withdrawal CAS
      // succeeds, so the lifetime argument is:
      //   1. Classification above used only the mode bit packed into the
      //      *pointer value* -- no dereference before the claim CAS.
      //   2. The claim CAS and the peer's withdraw CAS target the same
      //      slot word with seq_cst strong CAS, so exactly one wins. If we
      //      win, the peer's withdrawal fails and it enters its settle
      //      loop: the frame stays live until got is published *and* the
      //      park slot is signalled.
      //   3. got.store precedes slot.signal(), and the peer re-checks
      //      was_signalled() before returning, so signal() is provably the
      //      last touch (a futex wake takes only the address, never the
      //      node, into the kernel).
      SSQ_INTERLEAVE("arena.claim.pre");
      if (slot.compare_exchange_strong(cur, nullptr,
                                       std::memory_order_seq_cst)) {
        enode *peer = unpack(cur);
        item_token theirs = peer->mine; // empty for a consumer node
        SSQ_INTERLEAVE("arena.handoff");
        peer->got.store(is_data ? e : peer->self_marker(),
                        std::memory_order_seq_cst);
        peer->slot.signal(); // last touch of the counterpart's node
        return is_data ? e : theirs;
      }
      return empty_token; // collision; let the caller fall back
    }
    if (cur != nullptr) return empty_token; // same-mode occupant: collision

    // Empty slot: park here for the remaining patience.
    if (!slot.compare_exchange_strong(cur, pack(&self, is_data),
                                      std::memory_order_seq_cst))
      return empty_token;
    auto done = [&] {
      return self.got.load(std::memory_order_seq_cst) != empty_token;
    };
    auto r = sync::spin_then_park(self.slot, done, [] { return true; }, pol,
                                  dl, nullptr);
    if (r != sync::park_slot::wait_result::woken) {
      SSQ_INTERLEAVE("arena.withdraw");
      enode *expected = pack(&self, is_data);
      if (slot.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_seq_cst))
        return empty_token; // withdrew cleanly
      // A claimer won the race; its handoff completes imminently. The
      // settle spins are bounded-then-yield: the claimer may be preempted
      // between its CAS and got.store, and on a uniprocessor pure
      // cpu_relax would burn the rest of our quantum before it runs.
      settle([&] {
        return self.got.load(std::memory_order_seq_cst) != empty_token;
      });
    }
    // Do not let this frame die before the claimer's final touch.
    settle([&] { return self.slot.was_signalled(); });
    item_token g = self.got.load(std::memory_order_seq_cst);
    return is_data ? e : g;
  }

 private:
  // Wait out a claimer that already owns us: spin briefly, then yield so a
  // preempted claimer can reach its store/signal.
  template <typename Done>
  static void settle(Done done) {
    for (int spins = 0; !done(); ++spins) {
      if (spins < 64)
        cpu_relax();
      else
        std::this_thread::yield();
    }
  }

  std::size_t live_slots() const noexcept {
    // Scale the probed region with available parallelism; a uniprocessor
    // probes one slot.
    static const std::size_t n = [] {
      unsigned c = std::thread::hardware_concurrency();
      std::size_t want = c ? c : 1;
      return want < ArenaSize ? want : ArenaSize;
    }();
    return n;
  }

  std::array<padded_atomic<enode *>, ArenaSize> slots_;
};

} // namespace ssq
