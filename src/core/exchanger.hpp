// exchanger<T>: an elimination-based swapping channel (paper §5; Scherer,
// Lea & Scott, "A scalable elimination-based exchange channel", SCOOL 2005 --
// the algorithm behind java.util.concurrent.Exchanger).
//
// Two threads meet at an arena slot and swap values: the first to arrive
// installs a node holding its item and waits; the second removes the node,
// deposits its own item into it, and takes the first's. Under contention,
// threads probe outward into a multi-slot arena so that CAS traffic spreads
// across cache lines instead of piling onto one location.
//
// Node lifetime: a node lives on its owner's stack. The claimer's final
// touch is slot.signal(); the owner leaves only after observing it (the same
// settle discipline as baselines/java5_sq.hpp), so no reclamation domain is
// needed here.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/rng.hpp"
#include "sync/backoff.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <typename T, std::size_t ArenaSize = 32>
class exchanger {
  static_assert(ArenaSize >= 1);
  using codec = item_codec<T>;

  struct xnode {
    item_token mine;                          // my offering (immutable)
    std::atomic<item_token> got{empty_token}; // partner's offering
    sync::park_slot slot;
    explicit xnode(item_token m) noexcept : mine(m) {}
  };

 public:
  exchanger() : exchanger(sync::spin_policy::adaptive()) {}
  explicit exchanger(sync::spin_policy pol) : pol_(pol) {
    for (auto &s : arena_) s.value.store(nullptr, std::memory_order_relaxed);
  }

  exchanger(const exchanger &) = delete;
  exchanger &operator=(const exchanger &) = delete;

  // Swap `v` with another thread's offering. Blocks until a partner
  // arrives.
  T exchange(T v) {
    auto r = exchange_until(std::move(v), deadline::unbounded());
    return std::move(*r);
  }

  // Timed variant: nullopt on timeout (the caller keeps conceptual
  // ownership of v's value -- for boxed codecs it is disposed internally,
  // matching the synchronous-queue failure contract).
  std::optional<T> exchange_until(T v, deadline dl,
                                  sync::interrupt_token *tok = nullptr) {
    xnode self{codec::encode(std::move(v))};
    thread_local xoshiro256 rng{0x9E3779B97F4A7C15ULL ^
                                reinterpret_cast<std::uintptr_t>(&rng)};
    std::size_t bound = 1; // arena radius grows with observed contention
    sync::backoff bo{rng.next()};

    for (;;) {
      std::size_t idx = (bound == 1) ? 0 : rng.below(bound);
      std::atomic<xnode *> &slot = arena_[idx].value;
      xnode *cur = slot.load(std::memory_order_acquire);

      if (cur == nullptr) {
        // Try to be the first at this slot.
        if (!slot.compare_exchange_strong(cur, &self,
                                          std::memory_order_seq_cst)) {
          grow(bound);
          bo.pause();
          continue;
        }
        if (wait_for_partner(self, dl, tok)) return take(self);
        // Timed out / interrupted: withdraw. If the withdrawal CAS fails, a
        // partner is mid-claim and will complete imminently.
        xnode *expected = &self;
        if (!slot.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_seq_cst)) {
          settle_and_wait(self);
          return take(self);
        }
        codec::dispose(self.mine);
        return std::nullopt;
      }

      // Partner present: claim it.
      if (!slot.compare_exchange_strong(cur, nullptr,
                                        std::memory_order_seq_cst)) {
        grow(bound);
        bo.pause();
        continue;
      }
      // cur is ours alone now (it cannot be withdrawn: the owner's CAS on
      // the slot already failed or will fail).
      // Ownership of self.mine transfers to the partner; we take theirs.
      item_token theirs = cur->mine;
      cur->got.store(self.mine, std::memory_order_seq_cst);
      cur->slot.signal(); // owner's node: last touch
      return codec::decode_consume(theirs);
    }
  }

 private:
  void grow(std::size_t &bound) noexcept {
    if (bound < ArenaSize) bound *= 2;
    if (bound > ArenaSize) bound = ArenaSize;
  }

  bool wait_for_partner(xnode &self, deadline dl,
                        sync::interrupt_token *tok) {
    auto done = [&] {
      return self.got.load(std::memory_order_seq_cst) != empty_token;
    };
    auto r = sync::spin_then_park(self.slot, done, [] { return true; }, pol_,
                                  dl, tok);
    return r == sync::park_slot::wait_result::woken;
  }

  static void settle_and_wait(xnode &self) noexcept {
    while (self.got.load(std::memory_order_seq_cst) == empty_token)
      cpu_relax();
    while (!self.slot.was_signalled()) cpu_relax();
  }

  static T take(xnode &self) {
    while (!self.slot.was_signalled()) cpu_relax(); // settle (see header)
    return codec::decode_consume(self.got.load(std::memory_order_seq_cst));
  }

  sync::spin_policy pol_;
  std::array<padded_atomic<xnode *>, ArenaSize> arena_;
};

} // namespace ssq
