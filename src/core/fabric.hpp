// fabric<Q>: an N-lane sharded handoff fabric over any synchronous core.
//
// Every core in this library funnels all producers and consumers through a
// single pair of index/head words -- the paper's own scalability ceiling
// (§5 reaches for elimination precisely because of it). The fabric shards
// the rendezvous point into N independent lanes (each a full core Q,
// default segment_queue) and makes cross-lane coordination the rare case:
//
//   * d-choice lane selection (unfair mode): probe two random lanes for a
//     camped counterpart (per-lane waiting counters, one cache line each);
//     at <= 8 lanes the probe degenerates to a full sweep, since a few
//     padded loads are cheaper than the camp quantum a d=2 miss costs.
//     On a hit, rendezvous there with a non-blocking xfer. On a miss, camp
//     on a per-thread *home lane* -- threads with the same home meet with
//     no cross-lane traffic at all.
//   * elimination between colliding lanes (unfair mode): a prober that saw
//     a counterpart but lost the race detours through the shared
//     elimination_arena for a few microseconds before camping -- two
//     crossing threads cancel out without touching any lane's index words.
//   * bulk waiter detachment (async producers): an async put that finds no
//     camped consumer pushes its token onto the lane's spill stack with one
//     CAS -- no cell traffic, no park/unpark. A consumer detaches the
//     *entire* run with one exchange, drains it thread-locally (keeping the
//     oldest), and publishes the remainder to a FIFO-ised stash that later
//     consumers pop item-wise. One rendezvous's worth of coordination moves
//     k items.
//   * fair mode: per-lane FIFO plus round-robin pairing. The i-th producer
//     and i-th consumer camp on lane i mod N (side-local FAA counters), so
//     pairing is round-robin and each lane preserves its own FIFO order;
//     elimination and the d-choice shortcut are disabled (both would
//     reorder). Global FIFO is deliberately given up -- the relaxed
//     multi-lane spec (per-lane FIFO, global exchange symmetry, no lost
//     pairings) is pinned by the oracle's fifo_lanes rule, not implied.
//
// Liveness without a global rendezvous word: every blocking operation camps
// in bounded quanta (exponential 200us -> 3.2ms, jittered to break phase
// lock between two parties circling each other), and from the second round
// on the probe scans *all* lanes. Two parties camped in different lanes
// therefore find each other within one quantum; a spilled async item is
// found by the first consumer round that checks the bulk stash (every round
// does, before camping). Cancellation (deadline/interrupt) is checked at
// every round boundary, and the underlying lane op itself honours the
// caller's deadline when it is tighter than the camp quantum.
//
// Lane attribution: every completed transfer records its pairing lane in
// ssq::tl_last_lane (core/lane.hpp) -- elimination and bulk deliveries
// record the FIFO-exempt sentinels -- which is what lets the oracle check
// the relaxed spec instead of trusting it.
//
// Memory-order edges in this file (docs/memory_model.md):
//   fab.spill   spill-push CAS releases the pushed node's item/next words;
//               acquired by the consumer's detach exchange.
//   fab.stash   stash-prepend CAS releases the re-linked run; the acquire
//               end is the popper's hazard protect on the stash head
//               (memory/reclaim.hpp -- seq_cst by protocol), so the label
//               is release-only in this file.
// The stash pop CAS stays seq_cst: it is the unlink side of the
// protect-validate Dekker with the hazard scan, same as every structure
// CAS in the tree. ABA on the stash is structurally impossible: a node
// enters the stash exactly once (from a detached spill run), is retired on
// pop, and the popper's continuous hazard from protect to CAS blocks the
// free that any address reuse would require.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "check/schedule_fuzz.hpp"
#include "core/elimination_arena.hpp"
#include "core/lane.hpp"
#include "core/segment_queue.hpp"
#include "core/wait_kind.hpp"
#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"
#include "sync/interrupt.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

// Lane-count policy, exposed through the facade (synchronous_queue /
// channel constructors taking a fabric_config).
struct fabric_config {
  // 0 = auto: min(hardware_concurrency, 8), at least 1.
  std::size_t lanes = 0;
  // Fair: per-lane FIFO + round-robin pairing (no elimination, no d-choice
  // shortcut). Unfair: d-choice + home-lane camping + elimination.
  bool fair = false;
};

template <typename Q = segment_queue<>,
          typename Reclaimer = mem::pooled_hp_reclaimer>
class fabric {
 public:
  static constexpr bool lane_attributed = true;

  explicit fabric(sync::spin_policy pol = sync::spin_policy::adaptive(),
                  Reclaimer rec = Reclaimer{})
      : fabric(fabric_config{}, pol, std::move(rec)) {}

  explicit fabric(fabric_config cfg,
                  sync::spin_policy pol = sync::spin_policy::adaptive(),
                  Reclaimer rec = Reclaimer{})
      : rec_(std::move(rec)), pol_(pol), fair_(cfg.fair),
        nlanes_(resolve_lanes(cfg.lanes)),
        lane_mask_((nlanes_ & (nlanes_ - 1)) == 0
                       ? static_cast<std::uint32_t>(nlanes_ - 1)
                       : no_lane) {
    lanes_.reserve(nlanes_);
    for (std::size_t i = 0; i < nlanes_; ++i)
      lanes_.push_back(std::make_unique<lane_t>(pol_, rec_));
  }

  ~fabric() {
    // Single-threaded teardown: unconsumed spilled tokens go to the
    // disposer, exactly like a lane queue's own leftover async cells.
    for (auto &lp : lanes_) {
      drain_list(lp->spill.value.load(std::memory_order_relaxed));
      drain_list(lp->detached.value.load(std::memory_order_relaxed));
    }
  }

  fabric(const fabric &) = delete;
  fabric &operator=(const fabric &) = delete;

  void set_token_disposer(void (*d)(item_token)) noexcept {
    disposer_ = d;
    for (auto &lp : lanes_) lp->q.set_token_disposer(d);
  }

  // The unified transfer operation; contract identical to
  // segment_queue::xfer (the facade drives all cores through it).
  item_token xfer(item_token e, bool is_data, wait_kind wk,
                  deadline dl = deadline::unbounded(),
                  sync::interrupt_token *tok = nullptr) {
    SSQ_ASSERT(is_data == (e != empty_token), "token/mode mismatch");
    SSQ_ASSERT(is_data || wk != wait_kind::async, "async take is meaningless");
    tl_last_lane = lane_unattributed;
    if (wk == wait_kind::async) return xfer_async(e);
    if (wk == wait_kind::now) return xfer_now(e, is_data);
    return xfer_blocking(e, is_data, wk, dl, tok);
  }

  // ---------------------------------------------------------- observers
  // Racy snapshots by contract (facade docs), exact at quiescence.

  bool is_empty() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: racy observer by contract");
    if (spilled_.value.load(SSQ_MO(relaxed)) > 0) return false;
    for (auto &lp : lanes_)
      if (!lp->q.is_empty()) return false;
    return true;
  }

  std::size_t unsafe_length() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: racy observer by contract");
    std::int64_t n = spilled_.value.load(SSQ_MO(relaxed));
    std::size_t total = n > 0 ? static_cast<std::size_t>(n) : 0;
    for (auto &lp : lanes_) total += lp->q.unsafe_length();
    return total;
  }

  std::size_t lane_count() const noexcept { return nlanes_; }
  bool fair() const noexcept { return fair_; }
  Reclaimer &reclaimer() noexcept { return rec_; }
  Q &lane_queue(std::size_t i) noexcept { return lanes_[i]->q; }

 private:
  // Spill/stash list node. Trivially destructible so it can recycle through
  // the pooled-alloc seam (memory/node_pool.hpp).
  struct fab_node {
    std::atomic<fab_node *> next{nullptr};
    item_token item{empty_token};
  };
  static_assert(std::is_trivially_destructible_v<fab_node>);

  struct lane_t {
    lane_t(sync::spin_policy pol, Reclaimer rec) : q(pol, std::move(rec)) {}
    Q q;
    // Async producers' overflow (Treiber; newest first).
    padded_atomic<fab_node *> spill;
    // Bulk-detached spill runs, FIFO-ised; popped item-wise under hazard.
    SSQ_GUARDED_BY_HAZARD(rec_)
    padded_atomic<fab_node *> detached;
    // Camped-waiter counts, one per side: the d-choice probe's only read.
    padded_atomic<std::uint32_t> wait_prod;
    padded_atomic<std::uint32_t> wait_cons;
  };

  static constexpr std::uint32_t no_lane = 0xFFFFFFFFu;
  // Probe width at or below which a round-0 probe sweeps every lane
  // instead of sampling two (see probe()).
  static constexpr std::size_t full_scan_lanes = 8;
  static constexpr nanoseconds camp_quantum_min = std::chrono::microseconds(50);
  static constexpr nanoseconds camp_quantum_max =
      std::chrono::microseconds(3200);
  static constexpr nanoseconds elim_patience = std::chrono::microseconds(5);

  static std::size_t resolve_lanes(std::size_t requested) noexcept {
    if (requested > 0) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    std::size_t want = hw ? hw : 1;
    return want < 8 ? want : 8;
  }

  // Home lane: a process-wide thread ordinal (FAA'd once per thread) taken
  // mod the lane count, so distinct threads spread across lanes and a
  // thread keeps returning to the same lane (warm cache, instant pairing
  // with same-home counterparts).
  std::uint32_t home_lane() const noexcept {
    static std::atomic<std::uint64_t> next_ordinal{0};
    SSQ_MO_JUSTIFIED("relaxed: the ordinal only needs uniqueness, which the "
                     "RMW's atomicity alone provides");
    thread_local const std::uint64_t ordinal =
        next_ordinal.fetch_add(1, SSQ_MO(relaxed));
    return lane_index(ordinal);
  }

  // i mod nlanes_ without a division when the lane count is a power of two
  // (home_lane and the fair round-robin rank sit on every op's hot path).
  std::uint32_t lane_index(std::uint64_t i) const noexcept {
    if (lane_mask_ != no_lane)
      return static_cast<std::uint32_t>(i) & lane_mask_;
    return static_cast<std::uint32_t>(i % nlanes_);
  }

  // h + k with both already < nlanes_: conditional subtract, not a div.
  std::size_t wrap(std::size_t i) const noexcept {
    return i >= nlanes_ ? i - nlanes_ : i;
  }

  static xoshiro256 &tl_rng() noexcept {
    thread_local xoshiro256 rng{0x9e3779b97f4a7c15ULL ^
                                reinterpret_cast<std::uintptr_t>(&rng)};
    return rng;
  }

  bool counterpart_camped(std::size_t i, bool is_data) const noexcept {
    auto &L = *lanes_[i];
    // seq_cst: the camp counters form a store-load Dekker with the probe
    // ("I am camped" vs "is anyone camped?"), same shape as the segment
    // queue's counterpart_waiting counters.
    return (is_data ? L.wait_cons : L.wait_prod)
               .value.load(std::memory_order_seq_cst) > 0;
  }

  // ------------------------------------------------------------- async
  // Async put: deliver to a camped consumer if one is visible (d-choice
  // probe over home + one random lane), else spill -- one CAS, no cell.
  item_token xfer_async(item_token e) {
    const std::uint32_t h = home_lane();
    if (lanes_[h]->q.xfer(e, true, wait_kind::now) != empty_token) {
      tl_last_lane = h;
      return e;
    }
    if (nlanes_ > 1) {
      auto &rng = tl_rng();
      const std::uint32_t p = static_cast<std::uint32_t>(
          wrap(h + 1 + rng.below(nlanes_ - 1)));
      if (counterpart_camped(p, true) &&
          lanes_[p]->q.xfer(e, true, wait_kind::now) != empty_token) {
        tl_last_lane = p;
        return e;
      }
    }
    spill_push(*lanes_[h], e);
    tl_last_lane = lane_bulk;
    return e;
  }

  // --------------------------------------------------------------- now
  // A now-op must observe any already-waiting counterpart regardless of
  // lane, so it scans all lanes (from home, for same-home fast hits).
  // Consumers check the bulk stash first: spilled items are "already
  // waiting" in the strongest sense.
  item_token xfer_now(item_token e, bool is_data) {
    const std::uint32_t h = home_lane();
    if (!is_data) {
      for (std::size_t k = 0; k < nlanes_; ++k) {
        item_token b = bulk_pop(*lanes_[wrap(h + k)]);
        if (b != empty_token) return b; // tl_last_lane = lane_bulk
      }
    }
    for (std::size_t k = 0; k < nlanes_; ++k) {
      const std::size_t i = wrap(h + k);
      item_token r = lanes_[i]->q.xfer(e, is_data, wait_kind::now);
      if (r != empty_token) {
        tl_last_lane = static_cast<std::uint32_t>(i);
        return r;
      }
    }
    return empty_token;
  }

  // ---------------------------------------------------------- blocking
  item_token xfer_blocking(item_token e, bool is_data, wait_kind wk,
                           deadline dl, sync::interrupt_token *tok) {
    auto &rng = tl_rng();
    nanoseconds quantum = camp_quantum_min;
    for (unsigned round = 0;; ++round) {
      if (tok && tok->interrupted()) return empty_token;
      if (wk == wait_kind::timed && dl.expired_now()) return empty_token;

      // Consumers sweep the bulk stash before anything else: a spilled
      // item pairs with zero coordination. Round 0 checks the home lane
      // only; later rounds sweep all lanes (liveness for skewed homes).
      if (!is_data) {
        const std::uint32_t h = home_lane();
        const std::size_t span = round == 0 ? 1 : nlanes_;
        for (std::size_t k = 0; k < span; ++k) {
          item_token b = bulk_pop(*lanes_[wrap(h + k)]);
          if (b != empty_token) return b;
        }
      }

      // Probe for a camped counterpart; rendezvous there without waiting.
      const std::uint32_t hit = probe(is_data, round, rng);
      if (hit != no_lane) {
        SSQ_INTERLEAVE("fab.probe.hit");
        item_token r = lanes_[hit]->q.xfer(e, is_data, wait_kind::now);
        if (r != empty_token) {
          tl_last_lane = hit;
          return r;
        }
        // Saw a counterpart but lost it to a faster thread: classic
        // crossing collision -- the elimination arena's home turf. Fair
        // mode skips it (an eliminated pair would jump the lane FIFO).
        // The detour's patience follows the spin policy: under a no-spin
        // policy (the paper's uniprocessor rule) a camped arena slot can
        // only be claimed after a context switch -- the very cost
        // elimination is meant to avoid -- so the visit degrades to a
        // claim-or-leave pass with zero lingering.
        if (!fair_) {
          const deadline e_dl = pol_.front_spins != 0
                                    ? deadline::in(elim_patience)
                                    : deadline::in(nanoseconds{0});
          r = arena_.try_eliminate(e, is_data, e_dl, pol_);
          if (r != empty_token) {
            tl_last_lane = lane_elim;
            return r;
          }
        }
      }

      // Camp: become a visible waiter on one lane for a bounded quantum.
      const std::uint32_t c = camp_lane(is_data, round, rng);
      lane_t &L = *lanes_[c];
      auto &ctr = (is_data ? L.wait_prod : L.wait_cons).value;
      // seq_cst: probe-side Dekker (see counterpart_camped).
      ctr.fetch_add(1, std::memory_order_seq_cst);
      SSQ_INTERLEAVE("fab.camp");
      deadline q_dl = camp_deadline(quantum, dl, wk, rng);
      item_token r = L.q.xfer(e, is_data, wait_kind::timed, q_dl, tok);
      ctr.fetch_sub(1, std::memory_order_seq_cst);
      if (r != empty_token) {
        tl_last_lane = c;
        return r;
      }
      if (quantum < camp_quantum_max) quantum *= 2;
    }
  }

  // One probe round. Unfair round 0 on a wide fabric is the two-random-lane
  // d-choice; at <= full_scan_lanes lanes the probe degenerates to a full
  // sweep -- a handful of padded-counter loads costs nanoseconds, while a
  // d=2 miss against a validly camped counterpart costs a whole camp
  // quantum (a miss is 1-(1-1/N)^2 likely even with one camper, ruinous at
  // small N). Fair mode and every later round also scan all lanes, so two
  // parties camped in different lanes cannot miss each other twice.
  std::uint32_t probe(bool is_data, unsigned round, xoshiro256 &rng) const {
    if (nlanes_ == 1)
      return counterpart_camped(0, is_data) ? 0 : no_lane;
    if (!fair_ && round == 0 && nlanes_ > full_scan_lanes) {
      // Two lane picks from one rng draw via multiply-shift (no division;
      // the bias at 32-bit range over <=2^32 lanes is immaterial here).
      const std::uint64_t r = rng.next();
      const std::uint32_t a = static_cast<std::uint32_t>(
          ((r & 0xffffffffu) * nlanes_) >> 32);
      const std::uint32_t b =
          static_cast<std::uint32_t>(((r >> 32) * nlanes_) >> 32);
      if (counterpart_camped(a, is_data)) return a;
      if (b != a && counterpart_camped(b, is_data)) return b;
      return no_lane;
    }
    const std::uint32_t start =
        round == 0 ? home_lane()
                   : static_cast<std::uint32_t>(rng.below(nlanes_));
    for (std::size_t k = 0; k < nlanes_; ++k) {
      const std::uint32_t i = static_cast<std::uint32_t>(wrap(start + k));
      if (counterpart_camped(i, is_data)) return i;
    }
    return no_lane;
  }

  // Where to camp this round. Fair mode: side-local round-robin FAA --
  // the i-th producer and i-th consumer meet on lane i mod N. A fresh
  // rank per round (rather than a sticky assignment) plus the full-scan
  // probe is what breaks the misalignment a cancelled op leaves behind.
  // Unfair mode: home first, random later rounds.
  std::uint32_t camp_lane(bool is_data, unsigned round, xoshiro256 &rng) {
    if (nlanes_ == 1) return 0;
    if (fair_) {
      auto &rr = (is_data ? rr_prod_ : rr_cons_).value;
      SSQ_MO_JUSTIFIED("relaxed: the rank only picks a lane; pairing order "
                       "within the lane is the lane queue's FIFO ticket");
      return lane_index(rr.fetch_add(1, SSQ_MO(relaxed)));
    }
    if (round == 0) return home_lane();
    return static_cast<std::uint32_t>(rng.below(nlanes_));
  }

  // Bounded, jittered camp quantum, clamped to the caller's own deadline.
  // The +/-25% jitter keeps two parties' re-probe schedules from locking
  // into the same phase and circling each other forever.
  deadline camp_deadline(nanoseconds quantum, deadline dl, wait_kind wk,
                         xoshiro256 &rng) const {
    const std::int64_t q = quantum.count();
    const nanoseconds jittered{q - q / 4 +
                               static_cast<std::int64_t>(
                                   rng.below(static_cast<std::uint64_t>(
                                       q / 2 > 0 ? q / 2 : 1)))};
    deadline q_dl = deadline::in(jittered);
    if (wk == wait_kind::timed && dl.when() < q_dl.when()) return dl;
    return q_dl;
  }

  // --------------------------------------------------- spill / detach
  void spill_push(lane_t &L, item_token e) {
    fab_node *n = rec_.template create<fab_node>();
    n->item = e;
    SSQ_MO_JUSTIFIED("relaxed: first read of the head; the CAS below "
                     "re-reads with acquire on failure");
    fab_node *old = L.spill.value.load(SSQ_MO(relaxed));
    for (;;) {
      SSQ_MO_JUSTIFIED("relaxed: published by the fab.spill release CAS");
      n->next.store(old, SSQ_MO(relaxed));
      SSQ_INTERLEAVE("fab.spill.push");
      SSQ_MO_RELEASE_EDGE("fab.spill");
      if (L.spill.value.compare_exchange_weak(old, n, SSQ_MO(acq_rel)))
        break;
    }
    SSQ_MO_JUSTIFIED("relaxed: live-count feeds racy observers only");
    spilled_.value.fetch_add(1, SSQ_MO(relaxed));
  }

  // Take one bulk item from lane L, if any: stash first (item-wise hazard
  // pop), then detach the whole spill run in one exchange. Sets
  // tl_last_lane = lane_bulk on success.
  item_token bulk_pop(lane_t &L) {
    item_token it = stash_pop(L);
    if (it != empty_token) return it;

    // seq_cst empty check (Dekker with spill_push, as above): the consumer
    // camp loop calls this every round, and an unconditional exchange would
    // put an RMW on the shared spill line in the common no-spill case.
    if (L.spill.value.load(std::memory_order_seq_cst) == nullptr)
      return empty_token;
    SSQ_MO_ACQUIRE_EDGE("fab.spill");
    fab_node *run = L.spill.value.exchange(nullptr, SSQ_MO(acq_rel));
    if (run == nullptr) return empty_token;
    SSQ_INTERLEAVE("fab.detach");
    // The run is exclusively ours now. Reverse it (spill is LIFO, the
    // stash is FIFO: oldest must come out first), keep the oldest,
    // publish the rest.
    fab_node *rev = nullptr;
    while (run != nullptr) {
      SSQ_MO_JUSTIFIED("relaxed: the detach exchange above acquired the "
                       "whole run; no concurrent writer remains");
      fab_node *nx = run->next.load(SSQ_MO(relaxed));
      SSQ_MO_JUSTIFIED("relaxed: re-published by the fab.stash release CAS");
      run->next.store(rev, SSQ_MO(relaxed));
      rev = run;
      run = nx;
    }
    it = rev->item;
    SSQ_MO_JUSTIFIED("relaxed: rev was just relinked by this thread");
    fab_node *rest = rev->next.load(SSQ_MO(relaxed));
    // The head never reached the stash: no other thread can hold a
    // reference, so destroy (not retire) is safe.
    rec_.destroy(rev);
    if (rest != nullptr) stash_prepend(L, rest);
    SSQ_MO_JUSTIFIED("relaxed: live-count feeds racy observers only");
    spilled_.value.fetch_sub(1, SSQ_MO(relaxed));
    tl_last_lane = lane_bulk;
    return it;
  }

  void stash_prepend(lane_t &L, fab_node *first) {
    fab_node *tail = first;
    SSQ_MO_JUSTIFIED("relaxed: still exclusively owned (see bulk_pop)");
    while (fab_node *nx = tail->next.load(SSQ_MO(relaxed))) tail = nx;
    SSQ_MO_JUSTIFIED("relaxed: first read of the head; the CAS below "
                     "re-reads with acquire on failure");
    fab_node *d = L.detached.value.load(SSQ_MO(relaxed));
    for (;;) {
      SSQ_MO_JUSTIFIED("relaxed: published by the fab.stash release CAS");
      tail->next.store(d, SSQ_MO(relaxed));
      SSQ_INTERLEAVE("fab.stash.prepend");
      SSQ_MO_RELEASE_EDGE("fab.stash");
      if (L.detached.value.compare_exchange_weak(d, first, SSQ_MO(acq_rel)))
        break;
    }
  }

  item_token stash_pop(lane_t &L) {
    // seq_cst empty check: keeps the "already waiting" store-load Dekker
    // with stash_prepend while skipping the hazard-slot acquisition (a
    // domain-slot scan) in the common empty case. A non-null head is
    // re-read under the protect below before any deref.
    if (L.detached.value.load(std::memory_order_seq_cst) == nullptr)
      return empty_token;
    typename Reclaimer::slot hz(rec_);
    for (;;) {
      fab_node *h = hz.protect(L.detached.value);
      if (h == nullptr) return empty_token;
      SSQ_INTERLEAVE("fab.stash.pop");
      SSQ_MO_JUSTIFIED("acquire: the protect on the stash head acquired "
                       "the fab.stash release CAS that published h; "
                       "acquire here orders a concurrent prepend's link");
      fab_node *nx = h->next.load(SSQ_MO(acquire));
      // seq_cst: the unlink side of the protect-validate Dekker with the
      // hazard scan (same argument as every structure CAS in the tree).
      if (L.detached.value.compare_exchange_strong(
              h, nx, std::memory_order_seq_cst)) {
        item_token it = h->item;
        rec_.retire(h);
        SSQ_MO_JUSTIFIED("relaxed: live-count feeds racy observers only");
        spilled_.value.fetch_sub(1, SSQ_MO(relaxed));
        tl_last_lane = lane_bulk;
        return it;
      }
      // Lost the pop race; h may be gone -- re-protect from the head.
    }
  }

  void drain_list(fab_node *n) {
    while (n != nullptr) {
      SSQ_MO_JUSTIFIED("relaxed: single-threaded teardown (destructor)");
      fab_node *nx = n->next.load(SSQ_MO(relaxed));
      if (disposer_ && n->item != empty_token) disposer_(n->item);
      rec_.destroy(n);
      n = nx;
    }
  }

  Reclaimer rec_;
  sync::spin_policy pol_;
  void (*disposer_)(item_token) = nullptr;
  const bool fair_;
  const std::size_t nlanes_;
  // nlanes_-1 when nlanes_ is a power of two, else no_lane (see lane_index).
  const std::uint32_t lane_mask_;
  std::vector<std::unique_ptr<lane_t>> lanes_;
  elimination_arena<16> arena_;
  // Fair-mode round-robin ranks, one per side.
  padded_atomic<std::uint64_t> rr_prod_;
  padded_atomic<std::uint64_t> rr_cons_;
  // Spilled-but-unconsumed item count; observers only.
  padded_atomic<std::int64_t> spilled_;
};

} // namespace ssq
