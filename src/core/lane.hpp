// Lane attribution for sharded (multi-lane) structures.
//
// The linearizability oracle (check/oracle.hpp) checks FIFO *per lane* for
// fabric-style cores: global FIFO is deliberately given up when the
// rendezvous point is sharded, and the relaxed spec needs to know which
// lane paired each operation. Cores that know their pairing lane publish it
// here, thread-locally, immediately before returning from xfer(); the
// checked-ops wrappers (check/driver.hpp) read it into the history event.
//
// Two pairing mechanisms bypass lanes entirely and are exempt from the
// per-lane FIFO check (they are still covered by exact-pairing and exchange
// symmetry): elimination-arena handoffs and bulk-detached spill items.
#pragma once

#include <cstdint>

namespace ssq {

// No lane recorded (single-lane cores, or an op that missed/cancelled).
inline constexpr std::uint32_t lane_unattributed = 0xFFFFFFFFu;
// Paired through an elimination arena, not a lane queue (FIFO-exempt).
inline constexpr std::uint32_t lane_elim = 0xFFFFFFFEu;
// Delivered via the bulk spill/detach path (FIFO-exempt).
inline constexpr std::uint32_t lane_bulk = 0xFFFFFFFDu;

// Smallest sentinel: real lane indices must stay below this.
inline constexpr std::uint32_t lane_sentinel_min = lane_bulk;

// Set by lane-attributed cores on every completed transfer; consumed by the
// checked-ops wrappers. Plain thread-local (no synchronization needed: it is
// written and read by the same thread within one operation).
inline thread_local std::uint32_t tl_last_lane = lane_unattributed;

} // namespace ssq
