// linked_transfer_queue<T>: the TransferQueue extension described in the
// paper's conclusion (§5): "TransferQueues permit producers to enqueue data
// either synchronously or asynchronously ... The base synchronous support in
// TransferQueues mirrors our fair synchronous queue. The asynchronous
// additions differ only by releasing producers before items are taken."
//
// Implementation: the synchronous dual queue already represents pending data
// and pending requests in one list; asynchronous put is literally the same
// append with the producer declining to wait (wait_kind::async).
#pragma once

#include <optional>
#include <utility>

#include "core/transfer_queue.hpp"
#include "core/wait_kind.hpp"
#include "support/codec.hpp"

namespace ssq {

template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class linked_transfer_queue {
  using codec = item_codec<T>;

 public:
  linked_transfer_queue() : linked_transfer_queue(sync::spin_policy::adaptive()) {}
  explicit linked_transfer_queue(sync::spin_policy pol) : core_(pol) {
    core_.set_token_disposer(&dispose_token);
  }

  // Asynchronous enqueue: never blocks; the item is buffered until a
  // consumer arrives (this is the only operation that distinguishes this
  // class from the fair synchronous queue).
  void put(T v) {
    item_token t = codec::encode(std::move(v));
    core_.xfer(t, true, wait_kind::async);
  }

  // Synchronous enqueue: block until a consumer receives the item.
  void transfer(T v) {
    item_token t = codec::encode(std::move(v));
    item_token r = core_.xfer(t, true, wait_kind::sync);
    SSQ_ASSERT(r != empty_token, "untimed transfer cannot fail");
  }

  // Hand off only if a consumer is already waiting.
  bool try_transfer(T v) { return try_transfer(std::move(v), deadline::expired()); }

  bool try_transfer(T v, deadline dl, sync::interrupt_token *tok = nullptr) {
    item_token t = codec::encode(std::move(v));
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(t, true, wk, dl, tok);
    if (r == empty_token) {
      codec::dispose(t);
      return false;
    }
    return true;
  }

  // Executor hook (HandoffChannel): an asynchronous put cannot fail, so
  // this buffers and reports success regardless of deadline.
  bool try_put_ref(T &v, deadline /*dl*/ = deadline::expired(),
                   sync::interrupt_token * /*tok*/ = nullptr) {
    put(std::move(v));
    return true;
  }

  T take() {
    item_token r = core_.xfer(empty_token, false, wait_kind::sync);
    return codec::decode_consume(r);
  }

  std::optional<T> poll() { return poll(deadline::expired()); }

  std::optional<T> poll(deadline dl, sync::interrupt_token *tok = nullptr) {
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(empty_token, false, wk, dl, tok);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  // True when a consumer is currently blocked waiting (JDK hasWaitingConsumer).
  bool has_waiting_consumer() const noexcept {
    return !core_.is_empty() && !core_.head_is_data();
  }

  bool is_empty() const noexcept { return core_.is_empty(); }
  std::size_t unsafe_length() const noexcept { return core_.unsafe_length(); }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }

  transfer_queue<Reclaimer> core_;
};

} // namespace ssq
