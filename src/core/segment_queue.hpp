// The segmented synchronous-queue core -- the paper's FAIR dual queue
// rebuilt over CQS-style waiter-cell segments (Koval et al., PAPERS.md)
// instead of per-node linked handoff.
//
// Structure: a singly linked chain of 64-cell cache-contiguous segments.
// Two monotonic index words dispatch arrivals: the i-th sender and the
// i-th receiver share cell i (segment i/64, slot i%64). Whoever arrives
// first installs itself in the cell and waits; the second party commits
// the rendezvous with one CAS of the cell's state word. This keeps the
// linked cores' strict-FIFO fairness (indices are FAA order) while cutting
// allocator and hazard traffic to 1/64th per transfer: segments, not
// nodes, are the unit of allocation and of retirement.
//
// Per-cell state machine (ssq-lint audits every edge; see
// support/annotations.hpp SSQ_CELL_TRANSITION):
//
//   EMPTY ---> WAITER ----> MATCHED        (partner commits, signals)
//     |          `--------> POISONED       (owner timeout/interrupt, or a
//     |---> ASYNC ---> MATCHED              losing selector: owner retries)
//     |---> RESERVED -> CLAIMED -> {MATCHED, POISONED}   (select protocol)
//     `---> POISONED                        (now-op found nobody; the
//                                            already-indexed peer retries)
//
// Exactly one of {match, poison} wins the state CAS, which is the
// cancellation linearization point -- O(1), no unlinking, no cleaning
// passes. A party that finds its cell POISONED re-FAAs for a fresh index.
//
// Segment retirement: each cell owes two contributions, one per party,
// made strictly after that party's last access to the cell. When a
// segment's 128th contribution lands and it has a successor, the head is
// advanced past it and the whole segment is retired through the reclaimer
// seam -- one retire call per 64 transfers (ablation_segment measures the
// ratio). head_id_ is a monotonic watermark: a traverser that published a
// hazard on a next-pointer revalidates `head_id_ <= id(s)+1` before
// trusting it, which is the M&S-style protect-validate step rebuilt for
// chains whose unlink never touches the unlinked node. Bounded memory
// (Aksenov et al., PAPERS.md; docs/memory_reclamation.md §8): live
// segments are those holding at least one unfinalized cell, plus at most
// one fully-done trailing segment, so resident bytes are O(live waiters).
//
// Memory-order discipline (docs/memory_model.md; ssq-lint --check=mo-pairing
// audits the edge table). Orders are spelled SSQ_MO(...) so that
// -DSSQ_FORCE_SEQ_CST pins every site back to seq_cst for differential
// testing. Labeled release/acquire edges in this file:
//
//   cell.publish  install CAS (EMPTY -> WAITER/ASYNC/RESERVED) publishes the
//                 cell's item and, for reservations, the selector's wait
//                 record; acquired by the partner's first state read and by
//                 the claim CAS.
//   cell.claim    RESERVED -> CLAIMED CAS; acquired by the selector's
//                 finalize spin (it must observe the partner's claim before
//                 trusting the final state).
//   cell.commit   the final-state CAS/store (MATCHED or POISONED) publishes
//                 the matcher's item deposit; acquired by the woken waiter
//                 and the finalizing selector before they read `item`.
//   seg.link      next-pointer install CAS publishes the fresh segment's
//                 construction; acquired by every next-pointer traversal.
//   seg.retire    a party's `done` contribution releases its last cell
//                 accesses; reap_head's `done` read acquires all 128 before
//                 the segment is handed to the reclaimer.
//   seg.cursor    cursor-advance CAS releases the traversal that found the
//                 segment; the acquire side is the hazard-slot protect()
//                 (memory/hazard.hpp), which is seq_cst by protocol.
//
// Deliberately still seq_cst (the oracle's FIFO-pairing proof and the
// reclamation protocol need a single total order over these):
//   * senders_/receivers_ FAA and the counterpart_waiting pre-check -- the
//     now-path's counter Dekker collapses under weaker orders;
//   * head_seg_ CAS, head_id_ watermark, and hazard publish/validate;
//   * select arbiter winner CAS and pin counters (cross-queue agreement).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "check/schedule_fuzz.hpp"
#include "core/wait_kind.hpp"
#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/config.hpp"
#include "support/diagnostics.hpp"
#include "sync/interrupt.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

// State-word values. Aligned pointers (> cell_state_max) are RESERVED
// states: the word holds the installing selector's seg_select_wait*.
inline constexpr std::uintptr_t cell_empty = 0;
inline constexpr std::uintptr_t cell_waiter = 1;
inline constexpr std::uintptr_t cell_async = 2;
inline constexpr std::uintptr_t cell_matched = 3;
inline constexpr std::uintptr_t cell_poisoned = 4;
inline constexpr std::uintptr_t cell_claimed = 5;
inline constexpr std::uintptr_t cell_state_max = 7;

struct alignas(cacheline_size) seg_cell {
  SSQ_CELL_STATE_FIELD
  std::atomic<std::uintptr_t> state{cell_empty};
  // Sender-side cells carry the token from before the WAITER install;
  // receiver-side cells have it deposited by the matching sender.
  std::atomic<item_token> item{empty_token};
  sync::park_slot slot;
};

// Non-template so select records can point at segments across reclaimer
// instantiations. Trivially destructible by design: segments recycle
// through the same pooled-alloc seam as qnodes (a dedicated large-block
// size class; node_pool.cpp).
struct seg_segment {
  static constexpr std::size_t cells_per_seg = 64;
  static constexpr unsigned contributions = 2 * cells_per_seg;

  const std::uint64_t id;
  SSQ_GUARDED_BY_HAZARD(rec_)
  std::atomic<seg_segment *> next{nullptr};
  std::atomic<unsigned> done{0};
  seg_cell cells[cells_per_seg];

  explicit seg_segment(std::uint64_t id_) noexcept : id(id_) {}
};
static_assert(std::is_trivially_destructible_v<seg_segment>);

// ---------------------------------------------------------------------------
// Select-registration records (core/select.hpp). One arbiter per select
// round, one wait record per registered queue; all records live on the
// selecting thread's stack. A partner that claims a reservation pins the
// arbiter (pins) around every access so the selector cannot pop its frame
// mid-signal: the selector spins pins==0 before returning from a round.
// ---------------------------------------------------------------------------

struct seg_select_arbiter {
  sync::park_slot slot;
  // First committer wins: a seg_select_wait*, or the cancel sentinel
  // installed by the selector's own timeout path.
  std::atomic<void *> winner{nullptr};
  std::atomic<int> pins{0};

  static void *cancel_sentinel() noexcept {
    return reinterpret_cast<void *>(std::uintptr_t{1});
  }
};

struct seg_select_wait {
  seg_select_arbiter *arb = nullptr;
  seg_segment *seg = nullptr;
  seg_cell *cl = nullptr;
  bool is_data = false;
  // Set by a losing partner that poisoned this reservation: the selector
  // must re-run its round (the rendezvous it was offered went elsewhere).
  std::atomic<bool> poisoned{false};
  item_token result = empty_token;
};

enum class seg_reg_status { installed, completed, lost, retry };

// ---------------------------------------------------------------------------

template <typename Reclaimer = mem::pooled_hp_reclaimer>
class segment_queue {
 public:
  using segment = seg_segment;
  static constexpr std::size_t seg_cells = seg_segment::cells_per_seg;
  static constexpr unsigned seg_contribs = seg_segment::contributions;

  explicit segment_queue(sync::spin_policy pol = sync::spin_policy::adaptive(),
                         Reclaimer rec = Reclaimer{})
      : rec_(std::move(rec)), pol_(pol) {
    seg_segment *s0 = rec_.template create<seg_segment>(0);
    diag::bump(diag::id::seg_alloc);
    head_seg_.value.store(s0, std::memory_order_relaxed);
    enq_cursor_.value.store(s0, std::memory_order_relaxed);
    deq_cursor_.value.store(s0, std::memory_order_relaxed);
    head_id_.value.store(0, std::memory_order_relaxed);
    // Cursors are external hazard roots: a protect() on them is valid even
    // though they lag head_seg_ (same pattern as transfer_queue::clean_me_).
    rec_.register_root(&enq_cursor_.value);
    rec_.register_root(&deq_cursor_.value);
  }

  ~segment_queue() {
    rec_.unregister_root(&enq_cursor_.value);
    rec_.unregister_root(&deq_cursor_.value);
    // Single-threaded teardown: free the still-linked suffix. Unconsumed
    // sender tokens (async producers') go to the disposer; receiver-side
    // waiter cells hold empty_token and are skipped by the same test.
    seg_segment *s = head_seg_.value.load(std::memory_order_relaxed);
    while (s) {
      seg_segment *nx = s->next.load(std::memory_order_relaxed);
      if (disposer_) {
        for (std::size_t i = 0; i < seg_cells; ++i) {
          std::uintptr_t st = s->cells[i].state.load(std::memory_order_relaxed);
          item_token it = s->cells[i].item.load(std::memory_order_relaxed);
          if ((st == cell_waiter || st == cell_async) && it != empty_token)
            disposer_(it);
        }
      }
      rec_.destroy(s);
      s = nx;
    }
  }

  segment_queue(const segment_queue &) = delete;
  segment_queue &operator=(const segment_queue &) = delete;

  void set_token_disposer(void (*d)(item_token)) noexcept { disposer_ = d; }

  // The unified transfer operation; contract identical to
  // transfer_queue::xfer (same facade drives both cores).
  item_token xfer(item_token e, bool is_data, wait_kind wk,
                  deadline dl = deadline::unbounded(),
                  sync::interrupt_token *tok = nullptr) {
    SSQ_ASSERT(is_data == (e != empty_token), "token/mode mismatch");
    SSQ_ASSERT(is_data || wk != wait_kind::async, "async take is meaningless");
    typename Reclaimer::slot hz(rec_);
    for (;;) {
      if (wk == wait_kind::now && !counterpart_waiting(is_data))
        return empty_token;
      const std::uint64_t idx = next_index(is_data);
      seg_segment *s = find_segment(idx / seg_cells, is_data, hz);
      seg_cell &c = s->cells[idx % seg_cells];
      item_token out = empty_token;
      switch (run_cell(s, c, idx, e, is_data, wk, dl, tok, out)) {
        case cell_outcome::transferred:
          return out;
        case cell_outcome::cancelled:
          return empty_token;
        case cell_outcome::retry:
          break; // poisoned cell or now-miss race: fresh index / recheck
      }
    }
  }

  // ------------------------------------------------------------ select
  // Registering select support (core/select.hpp). A reservation is the
  // selector's seg_select_wait* installed as the cell state; the partner
  // that would have matched a WAITER instead claims the record and races
  // for its arbiter.

  seg_reg_status select_register(seg_select_wait &w, item_token e,
                                 bool is_data, deadline dl,
                                 sync::interrupt_token *tok) {
    typename Reclaimer::slot hz(rec_);
    for (;;) {
      // seq_cst: the winner word is the select round's decision point and
      // is raced from other queues' partners; keep it totally ordered.
      if (w.arb->winner.load(std::memory_order_seq_cst) != nullptr)
        return seg_reg_status::lost;
      const std::uint64_t idx = next_index(is_data);
      seg_segment *s = find_segment(idx / seg_cells, is_data, hz);
      seg_cell &c = s->cells[idx % seg_cells];
      seg_reg_status r = register_cell(s, c, w, e, is_data, dl, tok);
      if (r != seg_reg_status::retry) return r;
    }
  }

  // Resolve an *installed* registration once arbitration is decided
  // (winner set, or the cancel sentinel installed). Returns true iff this
  // registration's cell carried the match; w.result then holds the token
  // for take-side registrations.
  bool select_finalize(seg_select_wait &w) {
    seg_cell &c = *w.cl;
    SSQ_MO_ACQUIRE_EDGE("cell.commit");
    std::uintptr_t st = c.state.load(SSQ_MO(acquire));
    if (st == reinterpret_cast<std::uintptr_t>(&w)) {
      SSQ_CELL_TRANSITION(cell_resv, cell_poisoned, "cell.commit");
      SSQ_MO_RELEASE_EDGE("cell.commit");
      if (c.state.compare_exchange_strong(st, cell_poisoned,
                                          SSQ_MO(acq_rel))) {
        diag::bump(diag::id::cell_poison);
        SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
        live_.value.fetch_sub(1, SSQ_MO(relaxed));
        contribute(w.seg, 1);
        return false;
      }
    }
    for (int i = 0; st == cell_claimed; ++i) {
      // A partner is between claim and commit -- a handful of instructions.
      pol_.relax(i);
      SSQ_MO_ACQUIRE_EDGE("cell.claim");
      st = c.state.load(SSQ_MO(acquire));
    }
    const bool matched = st == cell_matched;
    if (matched && !w.is_data) {
      SSQ_MO_JUSTIFIED("relaxed: the cell.commit acquire above ordered the "
                       "partner's item deposit before this read");
      w.result = c.item.load(SSQ_MO(relaxed));
    }
    contribute(w.seg, 1);
    return matched;
  }

  // ---------------------------------------------------------- observers
  // Racy snapshots by contract (facade docs), exact at quiescence.

  bool is_empty() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: racy observer by contract");
    return live_.value.load(SSQ_MO(relaxed)) <= 0;
  }

  std::size_t unsafe_length() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: racy observer by contract");
    std::int64_t n = live_.value.load(SSQ_MO(relaxed));
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }

  Reclaimer &reclaimer() noexcept { return rec_; }

 private:
  enum class cell_outcome { transferred, cancelled, retry };

  std::uint64_t next_index(bool is_data) noexcept {
    // seq_cst: the index FAAs and the counterpart_waiting counter reads
    // form the now-path's Dekker; the FIFO-pairing oracle argument orders
    // all four words in one total order (docs/memory_model.md).
    return (is_data ? senders_ : receivers_)
        .value.fetch_add(1, std::memory_order_seq_cst);
  }

  bool counterpart_waiting(bool is_data) const noexcept {
    const std::uint64_t peers =
        (is_data ? receivers_ : senders_).value.load(std::memory_order_seq_cst);
    const std::uint64_t mine =
        (is_data ? senders_ : receivers_).value.load(std::memory_order_seq_cst);
    return peers > mine;
  }

  // Walk (extending as needed) to the segment holding cell-index block
  // `id`, leaving it covered by hz. The caller owes its cell a
  // contribution, which pins head_id_ <= id throughout.
  SSQ_ACQUIRES_HAZARD
  seg_segment *find_segment(std::uint64_t id, bool is_data,
                            typename Reclaimer::slot &hz) {
    auto &cursor = is_data ? enq_cursor_ : deq_cursor_;
    seg_segment *s = static_cast<seg_segment *>(hz.protect(cursor.value));
    for (;;) {
      if (s->id > id) {
        // The cursor overshot our block (it lags arbitrary other threads);
        // the head cannot have, since our contribution is still owed.
        s = hz.protect(head_seg_.value);
        continue;
      }
      if (s->id == id) break;
      const std::uint64_t sid = s->id;
      SSQ_MO_ACQUIRE_EDGE("seg.link");
      seg_segment *n = s->next.load(SSQ_MO(acquire));
      if (n == nullptr) {
        seg_segment *fresh = rec_.template create<seg_segment>(sid + 1);
        SSQ_MO_RELEASE_EDGE("seg.link");
        if (s->next.compare_exchange_strong(n, fresh, SSQ_MO(acq_rel))) {
          diag::bump(diag::id::seg_alloc);
          n = fresh;
        } else {
          rec_.destroy(fresh); // lost the install race; n holds the winner
        }
      }
      hz.set(n);
      SSQ_INTERLEAVE("sq.walk");
      // Protect-validate: n (= segment sid+1) can only have been unlinked
      // if the head watermark passed it, i.e. moved beyond sid+1. The
      // watermark is bumped before the old head is retired, so a stale
      // reading here implies our hazard published before any scan freed n.
      // seq_cst: this load must order against the hazard publish in
      // hz.set and the reaper's watermark bump (store-load Dekker).
      if (head_id_.value.load(std::memory_order_seq_cst) > sid + 1) {
        s = hz.protect(head_seg_.value);
        continue;
      }
      s = n;
    }
    advance_cursor(cursor, s);
    return s;
  }

  void advance_cursor(padded_atomic<void *> &cursor, seg_segment *s) {
    // s stays covered by the caller's slot; cur needs its own so the
    // id-read and the pointer CAS act on a pinned segment (no ABA: a
    // segment cannot be retired while it is the cursor's current value).
    typename Reclaimer::slot hz(rec_);
    for (;;) {
      seg_segment *cur = static_cast<seg_segment *>(hz.protect(cursor.value));
      if (cur->id >= s->id) return;
      void *expected = static_cast<void *>(cur);
      SSQ_MO_RELEASE_EDGE("seg.cursor");
      if (cursor.value.compare_exchange_strong(expected,
                                               static_cast<void *>(s),
                                               SSQ_MO(release)))
        return;
    }
  }

  // One party's share of a cell's retirement accounting. Must be this
  // party's last access to the cell/segment.
  void contribute(seg_segment *s, unsigned n) {
    SSQ_MO_RELEASE_EDGE("seg.retire");
    if (s->done.fetch_add(n, SSQ_MO(release)) + n == seg_contribs)
      reap_head();
  }

  void reap_head() {
    typename Reclaimer::slot hz(rec_);
    for (;;) {
      seg_segment *h = hz.protect(head_seg_.value);
      SSQ_MO_ACQUIRE_EDGE("seg.retire");
      if (h->done.load(SSQ_MO(acquire)) != seg_contribs) return;
      SSQ_MO_ACQUIRE_EDGE("seg.link");
      seg_segment *n = h->next.load(SSQ_MO(acquire));
      if (n == nullptr) return; // never unlink the only segment
      seg_segment *expected = h;
      SSQ_INTERLEAVE("sq.reap");
      // seq_cst: the head swing orders against concurrent protect-validate
      // (hazard publish / watermark read) in find_segment.
      if (head_seg_.value.compare_exchange_strong(expected, n,
                                                  std::memory_order_seq_cst)) {
        bump_head_id(h->id + 1);
        retire_seg(h);
      }
      // Loop: either way the head moved; consecutive done segments are
      // swept in one pass.
    }
  }

  void bump_head_id(std::uint64_t id) noexcept {
    // seq_cst: the watermark is the retire side of the protect-validate
    // Dekker in find_segment; it must be totally ordered with the hazard
    // publish and the validation load.
    std::uint64_t cur = head_id_.value.load(std::memory_order_seq_cst);
    while (cur < id && !head_id_.value.compare_exchange_weak(
                           cur, id, std::memory_order_seq_cst)) {
    }
  }

  void retire_seg(seg_segment *s) {
    rec_.retire_segment(s);
    diag::bump(diag::id::node_free); // freed (possibly deferred)
  }

  // Play out one cell. `retry` means the index was burned (poisoned cell
  // or now-race) and the caller should start over.
  cell_outcome run_cell(seg_segment *s, seg_cell &c, std::uint64_t idx,
                        item_token e, bool is_data, wait_kind wk, deadline dl,
                        sync::interrupt_token *tok, item_token &out) {
    SSQ_MO_ACQUIRE_EDGE("cell.publish");
    std::uintptr_t st = c.state.load(SSQ_MO(acquire));
    for (;;) {
      if (st == cell_empty) {
        if (wk == wait_kind::now) {
          // The counter pre-check proved our counterpart already took this
          // index; it just has not arrived. A now-op cannot wait: kill the
          // cell (the counterpart will re-FAA) and re-check the counters.
          SSQ_INTERLEAVE("sq.now.poison");
          SSQ_CELL_TRANSITION(cell_empty, cell_poisoned, "cell.commit");
          SSQ_MO_RELEASE_EDGE("cell.commit");
          if (c.state.compare_exchange_strong(st, cell_poisoned,
                                              SSQ_MO(acq_rel))) {
            diag::bump(diag::id::cell_poison);
            contribute(s, 1);
            return cell_outcome::retry;
          }
          continue; // counterpart arrived after all; st reloaded
        }
        if (is_data) {
          SSQ_MO_JUSTIFIED("relaxed: published by the cell.publish CAS below");
          c.item.store(e, SSQ_MO(relaxed));
        }
        SSQ_INTERLEAVE("sq.install");
        if (wk == wait_kind::async) {
          SSQ_CELL_TRANSITION(cell_empty, cell_async, "cell.publish");
          SSQ_MO_RELEASE_EDGE("cell.publish");
          if (c.state.compare_exchange_strong(st, cell_async,
                                              SSQ_MO(acq_rel))) {
            SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
            live_.value.fetch_add(1, SSQ_MO(relaxed));
            out = e; // the matcher contributes both shares for async cells
            return cell_outcome::transferred;
          }
          continue;
        }
        SSQ_CELL_TRANSITION(cell_empty, cell_waiter, "cell.publish");
        SSQ_MO_RELEASE_EDGE("cell.publish");
        if (c.state.compare_exchange_strong(st, cell_waiter,
                                            SSQ_MO(acq_rel))) {
          SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
          live_.value.fetch_add(1, SSQ_MO(relaxed));
          return await_match(s, c, idx, e, is_data, dl, tok, out);
        }
        continue;
      }
      if (st == cell_poisoned) {
        contribute(s, 1);
        return cell_outcome::retry;
      }
      if (st == cell_waiter || st == cell_async) {
        item_token got = e;
        if (is_data) {
          SSQ_MO_JUSTIFIED("relaxed: the cell.commit CAS below releases it");
          c.item.store(e, SSQ_MO(relaxed));
        } else {
          SSQ_MO_JUSTIFIED("relaxed: ordered by the cell.publish acquire "
                           "that read WAITER/ASYNC");
          got = c.item.load(SSQ_MO(relaxed));
        }
        std::uintptr_t ex = st;
        SSQ_INTERLEAVE("sq.match.cas");
        SSQ_CELL_TRANSITION(cell_waiter, cell_matched, "cell.commit");
        SSQ_CELL_TRANSITION(cell_async, cell_matched, "cell.commit");
        SSQ_MO_RELEASE_EDGE("cell.commit");
        if (c.state.compare_exchange_strong(ex, cell_matched,
                                            SSQ_MO(acq_rel))) {
          SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
          live_.value.fetch_sub(1, SSQ_MO(relaxed));
          if (st == cell_async) {
            contribute(s, 2); // the absent owner's share is ours
          } else {
            c.slot.signal();
            contribute(s, 1);
          }
          out = got;
          return cell_outcome::transferred;
        }
        st = ex; // waiter cancelled (or a losing selector poisoned it)
        continue;
      }
      if (st == cell_claimed) {
        // A cell's only parties are its two index-holders; CLAIMED is
        // written by a partner claiming a reservation, and we are the
        // partner. Unreachable.
        SSQ_ASSERT(false, "segment_queue: partner observed CLAIMED");
        return cell_outcome::retry;
      }
      // RESERVED: the counterpart is a registered selector.
      return claim_reservation(s, c, st, e, is_data, out);
    }
  }

  // Commit or refuse a rendezvous against a reservation found in our cell.
  cell_outcome claim_reservation(seg_segment *s, seg_cell &c,
                                 std::uintptr_t st, item_token e, bool is_data,
                                 item_token &out) {
    auto *w = reinterpret_cast<seg_select_wait *>(st);
    std::uintptr_t ex = st;
    SSQ_INTERLEAVE("sq.resv.claim");
    SSQ_CELL_TRANSITION(cell_resv, cell_claimed, "cell.claim");
    SSQ_MO_RELEASE_EDGE("cell.claim");
    SSQ_MO_ACQUIRE_EDGE("cell.publish");
    if (!c.state.compare_exchange_strong(ex, cell_claimed, SSQ_MO(acq_rel))) {
      // The selector resolved the reservation first (poisoned it).
      contribute(s, 1);
      return cell_outcome::retry;
    }
    // From CLAIMED until our final-state store the selector spins in
    // select_finalize, and from pins++ until pins-- it cannot pop the
    // record's frame: both ends of the access window are covered.
    seg_select_arbiter *arb = w->arb;
    arb->pins.fetch_add(1, std::memory_order_seq_cst);
    void *expect_w = nullptr;
    if (arb->winner.compare_exchange_strong(expect_w, w,
                                            std::memory_order_seq_cst)) {
      item_token got = e;
      if (is_data) {
        SSQ_MO_JUSTIFIED("relaxed: the cell.commit store below releases it");
        c.item.store(e, SSQ_MO(relaxed));
      } else {
        SSQ_MO_JUSTIFIED("relaxed: the cell.claim CAS above acquired the "
                         "reservation's deposit");
        got = c.item.load(SSQ_MO(relaxed));
      }
      SSQ_CELL_TRANSITION(cell_claimed, cell_matched, "cell.commit");
      SSQ_MO_RELEASE_EDGE("cell.commit");
      c.state.store(cell_matched, SSQ_MO(release));
      SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
      live_.value.fetch_sub(1, SSQ_MO(relaxed));
      arb->slot.signal();
      arb->pins.fetch_sub(1, std::memory_order_seq_cst);
      contribute(s, 1);
      out = got;
      return cell_outcome::transferred;
    }
    // The select committed elsewhere: kill the cell and nudge the selector
    // awake so it can re-run its round.
    SSQ_CELL_TRANSITION(cell_claimed, cell_poisoned, "cell.commit");
    SSQ_MO_RELEASE_EDGE("cell.commit");
    c.state.store(cell_poisoned, SSQ_MO(release));
    diag::bump(diag::id::cell_poison);
    SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
    live_.value.fetch_sub(1, SSQ_MO(relaxed));
    w->poisoned.store(true, std::memory_order_seq_cst);
    arb->slot.signal();
    arb->pins.fetch_sub(1, std::memory_order_seq_cst);
    contribute(s, 1);
    return cell_outcome::retry;
  }

  // Installed-waiter wait loop: park until the partner commits, our
  // deadline/interrupt cancels, or a losing selector poisons us.
  cell_outcome await_match(seg_segment *s, seg_cell &c, std::uint64_t idx,
                           item_token e, bool is_data, deadline dl,
                           sync::interrupt_token *tok, item_token &out) {
    auto done = [&c] {
      SSQ_MO_ACQUIRE_EDGE("cell.commit");
      return c.state.load(SSQ_MO(acquire)) != cell_waiter;
    };
    auto &peer_ctr = is_data ? receivers_ : senders_;
    auto at_front = [&peer_ctr, idx] {
      SSQ_MO_JUSTIFIED(
          "relaxed: spin-depth heuristic only; a stale value merely changes "
          "how long we spin before parking");
      return peer_ctr.value.load(SSQ_MO(relaxed)) > idx;
    };
    auto r = sync::spin_then_park(c.slot, done, at_front, pol_, dl, tok);
    if (r != sync::park_slot::wait_result::woken) {
      SSQ_INTERLEAVE("sq.cancel.cas");
      std::uintptr_t ex = cell_waiter;
      SSQ_CELL_TRANSITION(cell_waiter, cell_poisoned, "cell.commit");
      SSQ_MO_RELEASE_EDGE("cell.commit");
      if (c.state.compare_exchange_strong(ex, cell_poisoned,
                                          SSQ_MO(acq_rel))) {
        diag::bump(diag::id::cell_poison);
        SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
        live_.value.fetch_sub(1, SSQ_MO(relaxed));
        contribute(s, 1);
        out = empty_token;
        return cell_outcome::cancelled;
      }
      // Lost the race to a concurrent finalizer; fall through to read it.
    }
    SSQ_MO_ACQUIRE_EDGE("cell.commit");
    std::uintptr_t st = c.state.load(SSQ_MO(acquire));
    if (st == cell_poisoned) {
      // Foreign poison (a selector whose select went elsewhere): our claim
      // on a rendezvous is still open, retry at a fresh index.
      contribute(s, 1);
      return cell_outcome::retry;
    }
    SSQ_ASSERT(st == cell_matched, "waiter woke to a non-final cell state");
    SSQ_MO_JUSTIFIED("relaxed: the cell.commit acquire above ordered the "
                     "partner's item deposit before this read");
    out = is_data ? e : c.item.load(SSQ_MO(relaxed));
    contribute(s, 1);
    return cell_outcome::transferred;
  }

  // One registration attempt at one cell; see select_register.
  seg_reg_status register_cell(seg_segment *s, seg_cell &c, seg_select_wait &w,
                               item_token e, bool is_data, deadline dl,
                               sync::interrupt_token *tok) {
    SSQ_MO_ACQUIRE_EDGE("cell.publish");
    std::uintptr_t st = c.state.load(SSQ_MO(acquire));
    for (;;) {
      if (st == cell_empty) {
        if (is_data) {
          SSQ_MO_JUSTIFIED("relaxed: published by the cell.publish CAS below");
          c.item.store(e, SSQ_MO(relaxed));
        }
        w.seg = s;
        w.cl = &c;
        w.is_data = is_data;
        SSQ_INTERLEAVE("sq.resv.install");
        SSQ_CELL_TRANSITION(cell_empty, cell_resv, "cell.publish");
        SSQ_MO_RELEASE_EDGE("cell.publish");
        if (c.state.compare_exchange_strong(
                st, reinterpret_cast<std::uintptr_t>(&w), SSQ_MO(acq_rel))) {
          SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
          live_.value.fetch_add(1, SSQ_MO(relaxed));
          return seg_reg_status::installed;
        }
        continue;
      }
      if (st == cell_poisoned) {
        contribute(s, 1);
        return seg_reg_status::retry;
      }
      if (st == cell_waiter || st == cell_async)
        return arbitrate_waiter(s, c, st, w, e, is_data, dl, tok);
      if (st == cell_claimed) {
        SSQ_ASSERT(false, "segment_queue: selector observed CLAIMED");
        return seg_reg_status::retry;
      }
      return arbitrate_peer_select(s, c, st, w, e, is_data, dl, tok);
    }
  }

  // A plain waiter already owns our cell: win our arbiter, then commit.
  seg_reg_status arbitrate_waiter(seg_segment *s, seg_cell &c,
                                  std::uintptr_t st, seg_select_wait &w,
                                  item_token e, bool is_data, deadline dl,
                                  sync::interrupt_token *tok) {
    void *expect_w = nullptr;
    if (!w.arb->winner.compare_exchange_strong(expect_w, &w,
                                               std::memory_order_seq_cst)) {
      resolve_lost_peer(s, c, st);
      return seg_reg_status::lost;
    }
    item_token got = e;
    if (is_data) {
      SSQ_MO_JUSTIFIED("relaxed: the cell.commit CAS below releases it");
      c.item.store(e, SSQ_MO(relaxed));
    } else {
      SSQ_MO_JUSTIFIED("relaxed: ordered by the cell.publish acquire that "
                       "read WAITER/ASYNC");
      got = c.item.load(SSQ_MO(relaxed));
    }
    std::uintptr_t ex = st;
    SSQ_CELL_TRANSITION(cell_waiter, cell_matched, "cell.commit");
    SSQ_CELL_TRANSITION(cell_async, cell_matched, "cell.commit");
    SSQ_MO_RELEASE_EDGE("cell.commit");
    if (c.state.compare_exchange_strong(ex, cell_matched, SSQ_MO(acq_rel))) {
      SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
      live_.value.fetch_sub(1, SSQ_MO(relaxed));
      if (st == cell_async) {
        contribute(s, 2);
      } else {
        c.slot.signal();
        contribute(s, 1);
      }
      w.result = got;
      return seg_reg_status::completed;
    }
    // The waiter cancelled between arbitration and commit. The select is
    // already decided in our favor, so finish directly on this queue.
    contribute(s, 1);
    w.result = xfer(e, is_data,
                    dl.is_unbounded() ? wait_kind::sync : wait_kind::timed, dl,
                    tok);
    return seg_reg_status::completed;
  }

  // Our select lost arbitration but this cell still owes its waiter a
  // resolution (our index is burned either way).
  void resolve_lost_peer(seg_segment *s, seg_cell &c, std::uintptr_t st) {
    if (st == cell_async) {
      // An async producer's token cannot be dropped: take the cell over
      // and hand the token back to the queue under a fresh index
      // (FIFO-relaxed for that token; docs/algorithms.md).
      SSQ_MO_JUSTIFIED("relaxed: ordered by the caller's cell.publish "
                       "acquire that read ASYNC");
      item_token got = c.item.load(SSQ_MO(relaxed));
      std::uintptr_t ex = st;
      SSQ_CELL_TRANSITION(cell_async, cell_matched, "cell.commit");
      SSQ_MO_RELEASE_EDGE("cell.commit");
      if (c.state.compare_exchange_strong(ex, cell_matched,
                                          SSQ_MO(acq_rel))) {
        SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
        live_.value.fetch_sub(1, SSQ_MO(relaxed));
        contribute(s, 2);
        xfer(got, true, wait_kind::async);
      } else {
        contribute(s, 1); // async cells never cancel; defensive only
      }
      return;
    }
    std::uintptr_t ex = st;
    SSQ_CELL_TRANSITION(cell_waiter, cell_poisoned, "cell.commit");
    SSQ_MO_RELEASE_EDGE("cell.commit");
    if (c.state.compare_exchange_strong(ex, cell_poisoned, SSQ_MO(acq_rel))) {
      diag::bump(diag::id::cell_poison);
      SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
      live_.value.fetch_sub(1, SSQ_MO(relaxed));
      c.slot.signal(); // the waiter re-checks state and retries elsewhere
    }
    contribute(s, 1);
  }

  // Both parties of this cell are selects: claim the peer's record, then
  // race the two arbiters -- ours first (it decides whether we may commit
  // at all), then theirs.
  seg_reg_status arbitrate_peer_select(seg_segment *s, seg_cell &c,
                                       std::uintptr_t st, seg_select_wait &w,
                                       item_token e, bool is_data, deadline dl,
                                       sync::interrupt_token *tok) {
    auto *peer = reinterpret_cast<seg_select_wait *>(st);
    std::uintptr_t ex = st;
    SSQ_CELL_TRANSITION(cell_resv, cell_claimed, "cell.claim");
    SSQ_MO_RELEASE_EDGE("cell.claim");
    SSQ_MO_ACQUIRE_EDGE("cell.publish");
    if (!c.state.compare_exchange_strong(ex, cell_claimed, SSQ_MO(acq_rel))) {
      contribute(s, 1); // peer resolved it first (poisoned)
      return seg_reg_status::retry;
    }
    seg_select_arbiter *parb = peer->arb;
    parb->pins.fetch_add(1, std::memory_order_seq_cst);
    void *mine_expect = nullptr;
    if (!w.arb->winner.compare_exchange_strong(mine_expect, &w,
                                               std::memory_order_seq_cst)) {
      // Our select committed elsewhere: release the peer poisoned and wake
      // it to re-run its round.
      poison_claimed_peer(s, c, peer, parb);
      return seg_reg_status::lost;
    }
    void *peer_expect = nullptr;
    if (parb->winner.compare_exchange_strong(peer_expect, peer,
                                             std::memory_order_seq_cst)) {
      item_token got = e;
      if (is_data) {
        SSQ_MO_JUSTIFIED("relaxed: the cell.commit store below releases it");
        c.item.store(e, SSQ_MO(relaxed));
      } else {
        SSQ_MO_JUSTIFIED("relaxed: the cell.claim CAS above acquired the "
                         "reservation's deposit");
        got = c.item.load(SSQ_MO(relaxed));
      }
      SSQ_CELL_TRANSITION(cell_claimed, cell_matched, "cell.commit");
      SSQ_MO_RELEASE_EDGE("cell.commit");
      c.state.store(cell_matched, SSQ_MO(release));
      SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
      live_.value.fetch_sub(1, SSQ_MO(relaxed));
      parb->slot.signal();
      parb->pins.fetch_sub(1, std::memory_order_seq_cst);
      contribute(s, 1);
      w.result = got;
      return seg_reg_status::completed;
    }
    // The peer's select also committed elsewhere; kill the cell and finish
    // our (already won) select directly on this queue.
    poison_claimed_peer(s, c, peer, parb);
    w.result = xfer(e, is_data,
                    dl.is_unbounded() ? wait_kind::sync : wait_kind::timed, dl,
                    tok);
    return seg_reg_status::completed;
  }

  void poison_claimed_peer(seg_segment *s, seg_cell &c, seg_select_wait *peer,
                           seg_select_arbiter *parb) {
    SSQ_CELL_TRANSITION(cell_claimed, cell_poisoned, "cell.commit");
    SSQ_MO_RELEASE_EDGE("cell.commit");
    c.state.store(cell_poisoned, SSQ_MO(release));
    diag::bump(diag::id::cell_poison);
    SSQ_MO_JUSTIFIED("relaxed: live_ feeds racy observers only");
    live_.value.fetch_sub(1, SSQ_MO(relaxed));
    peer->poisoned.store(true, std::memory_order_seq_cst);
    parb->slot.signal();
    parb->pins.fetch_sub(1, std::memory_order_seq_cst);
    contribute(s, 1);
  }

  Reclaimer rec_;
  sync::spin_policy pol_;
  void (*disposer_)(item_token) = nullptr;

  SSQ_GUARDED_BY_HAZARD(rec_) padded_atomic<seg_segment *> head_seg_;
  // Monotonic watermark of the oldest still-linked segment id; bumped
  // before the displaced head is retired (see find_segment's validation).
  padded_atomic<std::uint64_t> head_id_;
  // Lagging traversal-start hints, registered as external hazard roots.
  SSQ_GUARDED_BY_HAZARD(rec_) padded_atomic<void *> enq_cursor_;
  SSQ_GUARDED_BY_HAZARD(rec_) padded_atomic<void *> deq_cursor_;
  padded_atomic<std::uint64_t> senders_;
  padded_atomic<std::uint64_t> receivers_;
  // Installed-and-unfinalized cells; observers only.
  padded_atomic<std::int64_t> live_;
};

} // namespace ssq
