// select: wait on several synchronous channels at once (CSP's alternation,
// Go's select). Completes the CSP story the paper opens with (§1:
// synchronous queues "constitute the central synchronization primitive of
// Hoare's CSP").
//
// Semantics: try each alternative's non-blocking form (poll/offer) in a
// randomized order; if none is ready, briefly camp on one alternative with
// a bounded timed wait, then re-scan. The randomized start index prevents
// starvation of later alternatives; the camping quantum bounds the latency
// of discovering readiness on the others.
//
// This is a *polling* alternation, not a registering one: a take-select and
// a put-select that meet only through their non-blocking probes rendezvous
// within one camping quantum rather than instantly. The registering design
// (install cancellable reservations in every queue, arbitrate multi-way
// matches) is what JCSP/Go runtimes do with channel locks; on top of
// lock-free dual structures it would require a two-phase reservation
// protocol that the underlying algorithms do not provide. The bounded-camp
// approach keeps the strong per-queue guarantees and adds at most one
// quantum of latency.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <utility>

#include "support/rng.hpp"
#include "support/time.hpp"

namespace ssq {

// Must be exactly `nanoseconds` so the convenience overloads match the
// (deadline, nanoseconds, Qs&...) signature rather than packing the quantum
// into the queue parameter pack.
inline constexpr nanoseconds select_default_quantum =
    std::chrono::microseconds(200);

// Constraint for the convenience overloads: everything in the pack must be
// a channel, so a stray duration argument cannot be swallowed by the pack.
template <typename Q>
concept selectable_channel = requires(Q &q) { q.poll(); };

// ---------------------------------------------------------------------------
// select_take: receive from whichever of N queues produces first.
// Queues need poll() -> optional<T> and try_take(deadline) -> optional<T>.
// Returns {index, value}, or nullopt on deadline expiry.
// ---------------------------------------------------------------------------
template <typename T, typename... Qs>
std::optional<std::pair<std::size_t, T>> select_take(
    deadline dl, nanoseconds quantum, Qs &...queues) {
  constexpr std::size_t n = sizeof...(Qs);
  static_assert(n >= 1);
  thread_local xoshiro256 rng{0x6a09e667f3bcc908ULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};

  // Type-erased probes over the heterogeneous queue pack.
  struct probe_t {
    void *q;
    std::optional<T> (*poll_now)(void *);
    std::optional<T> (*poll_until)(void *, deadline);
  };
  std::array<probe_t, n> probes = {probe_t{
      static_cast<void *>(&queues),
      [](void *q) { return static_cast<Qs *>(q)->poll(); },
      [](void *q, deadline d) {
        return static_cast<Qs *>(q)->try_take(d);
      }}...};

  for (;;) {
    // Fast scan: randomized rotation for fairness among alternatives.
    std::size_t start = static_cast<std::size_t>(rng.below(n));
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t i = (start + k) % n;
      if (auto v = probes[i].poll_now(probes[i].q))
        return std::make_pair(i, std::move(*v));
    }
    if (dl.expired_now()) return std::nullopt;
    // Camp on one alternative for a bounded quantum.
    std::size_t camp = static_cast<std::size_t>(rng.below(n));
    deadline q_dl = deadline::in(quantum);
    if (q_dl.when() > dl.when()) q_dl = dl;
    if (auto v = probes[camp].poll_until(probes[camp].q, q_dl))
      return std::make_pair(camp, std::move(*v));
  }
}

template <typename T, typename... Qs>
  requires(selectable_channel<Qs> && ...)
std::optional<std::pair<std::size_t, T>> select_take(deadline dl,
                                                     Qs &...queues) {
  return select_take<T>(dl, select_default_quantum, queues...);
}

// ---------------------------------------------------------------------------
// select_put: hand `v` to whichever of N queues accepts first. Queues need
// offer(T) -> bool and try_put_ref(T&, deadline) -> bool. Returns the index
// served, or nullopt on expiry (the value is handed back via `v`).
// ---------------------------------------------------------------------------
template <typename T, typename... Qs>
std::optional<std::size_t> select_put(T &v, deadline dl, nanoseconds quantum,
                                      Qs &...queues) {
  constexpr std::size_t n = sizeof...(Qs);
  static_assert(n >= 1);
  thread_local xoshiro256 rng{0xbb67ae8584caa73bULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};

  struct probe_t {
    void *q;
    bool (*offer_now)(void *, T &);
    bool (*offer_until)(void *, T &, deadline);
  };
  std::array<probe_t, n> probes = {probe_t{
      static_cast<void *>(&queues),
      [](void *q, T &val) {
        return static_cast<Qs *>(q)->try_put_ref(val, deadline::expired());
      },
      [](void *q, T &val, deadline d) {
        return static_cast<Qs *>(q)->try_put_ref(val, d);
      }}...};

  for (;;) {
    std::size_t start = static_cast<std::size_t>(rng.below(n));
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t i = (start + k) % n;
      if (probes[i].offer_now(probes[i].q, v)) return i;
    }
    if (dl.expired_now()) return std::nullopt;
    std::size_t camp = static_cast<std::size_t>(rng.below(n));
    deadline q_dl = deadline::in(quantum);
    if (q_dl.when() > dl.when()) q_dl = dl;
    if (probes[camp].offer_until(probes[camp].q, v, q_dl)) return camp;
  }
}

template <typename T, typename... Qs>
  requires(selectable_channel<Qs> && ...)
std::optional<std::size_t> select_put(T &v, deadline dl, Qs &...queues) {
  return select_put(v, dl, select_default_quantum, queues...);
}

} // namespace ssq
