// select: wait on several synchronous channels at once (CSP's alternation,
// Go's select). Completes the CSP story the paper opens with (§1:
// synchronous queues "constitute the central synchronization primitive of
// Hoare's CSP").
//
// Semantics: try each alternative's non-blocking form (poll/offer) in a
// randomized order; if none is ready, briefly camp on one alternative with
// a bounded timed wait, then re-scan. The randomized start index prevents
// starvation of later alternatives; the camping quantum bounds the latency
// of discovering readiness on the others.
//
// Two alternation strategies, picked per pack at compile time:
//
//   * Linked cores get *polling* alternation: try each alternative's
//     non-blocking form in randomized order, then camp on one with a
//     bounded timed wait and re-scan. Two selects that meet only through
//     their probes rendezvous within one camping quantum. A registering
//     design over the linked dual structures would need a two-phase
//     reservation protocol those algorithms do not provide.
//
//   * Segmented cores (core_kind::segmented) *do* provide that protocol
//     (RESERVED/CLAIMED cell states), so packs made entirely of segmented
//     queues use *registering* alternation: install a cancellable
//     reservation in every queue, park on one arbiter, and poison the
//     losers on the way out. Rendezvous is immediate -- no quantum -- and
//     a select that times out leaves only O(1)-poisoned cells behind.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "core/segment_queue.hpp"
#include "support/codec.hpp"
#include "support/relax.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"
#include "sync/park_slot.hpp"

namespace ssq {

// Must be exactly `nanoseconds` so the convenience overloads match the
// (deadline, nanoseconds, Qs&...) signature rather than packing the quantum
// into the queue parameter pack.
inline constexpr nanoseconds select_default_quantum =
    std::chrono::microseconds(200);

// Constraint for the convenience overloads: everything in the pack must be
// a channel, so a stray duration argument cannot be swallowed by the pack.
template <typename Q>
concept selectable_channel = requires(Q &q) { q.poll(); };

// True for queues whose core supports reservation install (the segmented
// core); such packs take the registering path below.
template <typename Q>
concept registering_channel = requires { requires Q::segmented_core; };

// ---------------------------------------------------------------------------
// Registering alternation over segmented cores. One seg_select_arbiter per
// round and one seg_select_wait per queue live on this stack frame; the
// core's pins protocol guarantees no partner is still inside the frame when
// a round ends (segment_queue.hpp).
// ---------------------------------------------------------------------------
namespace detail {

// One registration round: install a reservation in every queue (the token
// decides the side: empty = take, non-empty = put), wait for a winner,
// resolve everything. A round can also end with nothing matched because a
// partner's select poisoned us -- the caller loops and re-registers.
struct seg_round_ops {
  void *q;
  seg_reg_status (*reg)(void *, seg_select_wait &, item_token, deadline);
  bool (*fin)(void *, seg_select_wait &);
};

struct seg_round_result {
  bool matched = false;
  bool direct = false; // completed inside select_register (even if failed)
  std::size_t index = 0;
  item_token token = empty_token;
};

template <std::size_t n>
seg_round_result seg_select_round(const std::array<seg_round_ops, n> &ops,
                                  std::size_t start, item_token e,
                                  deadline dl) {
  seg_select_arbiter arb;
  std::array<seg_select_wait, n> regs;
  std::array<std::size_t, n> installed{};
  std::size_t n_installed = 0;
  seg_round_result out;
  bool completed = false;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t i = (start + k) % n;
    regs[i].arb = &arb;
    seg_reg_status st = ops[i].reg(ops[i].q, regs[i], e, dl);
    if (st == seg_reg_status::installed) {
      installed[n_installed++] = i;
      continue;
    }
    if (st == seg_reg_status::completed) {
      completed = true;
      out.matched = regs[i].result != empty_token;
      out.direct = true;
      out.index = i;
      out.token = regs[i].result;
    }
    // completed or lost: arbitration is decided, stop registering.
    break;
  }

  if (!completed && arb.winner.load(std::memory_order_seq_cst) == nullptr &&
      n_installed > 0) {
    auto done = [&] {
      if (arb.winner.load(std::memory_order_seq_cst) != nullptr) return true;
      for (std::size_t j = 0; j < n_installed; ++j)
        if (regs[installed[j]].poisoned.load(std::memory_order_seq_cst))
          return true;
      return false;
    };
    auto at_front = [] { return true; };
    (void)sync::spin_then_park(arb.slot, done, at_front,
                               sync::spin_policy::adaptive(), dl, nullptr);
    // Whether we woke or timed out, close the round: the sentinel makes
    // any not-yet-committed partner treat us as committed-elsewhere.
    void *expect = nullptr;
    arb.winner.compare_exchange_strong(expect,
                                       seg_select_arbiter::cancel_sentinel(),
                                       std::memory_order_seq_cst);
  }

  for (std::size_t j = 0; j < n_installed; ++j) {
    std::size_t i = installed[j];
    if (ops[i].fin(ops[i].q, regs[i]) && !completed) {
      out.matched = true;
      out.index = i;
      out.token = regs[i].result;
    }
  }
  // No partner may still be dereferencing this frame's records.
  while (arb.pins.load(std::memory_order_seq_cst) != 0) cpu_relax();
  return out;
}

template <typename... Qs>
std::array<seg_round_ops, sizeof...(Qs)> make_seg_ops(Qs &...queues) {
  return {seg_round_ops{
      static_cast<void *>(&queues),
      [](void *q, seg_select_wait &w, item_token e, deadline d) {
        return static_cast<Qs *>(q)->core().select_register(
            w, e, e != empty_token, d, nullptr);
      },
      [](void *q, seg_select_wait &w) {
        return static_cast<Qs *>(q)->core().select_finalize(w);
      }}...};
}

template <typename T, typename... Qs>
std::optional<std::pair<std::size_t, T>> select_take_registered(
    deadline dl, Qs &...queues) {
  using codec = item_codec<T>;
  constexpr std::size_t n = sizeof...(Qs);
  thread_local xoshiro256 rng{0x3c6ef372fe94f82bULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};
  auto ops = make_seg_ops(queues...);
  for (;;) {
    auto r = seg_select_round<n>(ops, static_cast<std::size_t>(rng.below(n)),
                                 empty_token, dl);
    if (r.matched)
      return std::make_pair(r.index, codec::decode_consume(r.token));
    if (r.direct || dl.expired_now()) return std::nullopt;
    // Poisoned round: our rendezvous went to another select. Go again.
  }
}

template <typename T, typename... Qs>
std::optional<std::size_t> select_put_registered(T &v, deadline dl,
                                                 Qs &...queues) {
  using codec = item_codec<T>;
  constexpr std::size_t n = sizeof...(Qs);
  thread_local xoshiro256 rng{0xa54ff53a5f1d36f1ULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};
  // Encoded once for all rounds; at most one reservation's match consumes
  // it (losing cells are poisoned, their stale token copies never read).
  item_token e = codec::encode(std::move(v));
  auto ops = make_seg_ops(queues...);
  for (;;) {
    auto r = seg_select_round<n>(ops, static_cast<std::size_t>(rng.below(n)),
                                 e, dl);
    if (r.matched) return r.index; // token consumed by the matched partner
    if (r.direct || dl.expired_now()) {
      v = codec::decode_consume(e); // hand the value back
      return std::nullopt;
    }
  }
}

} // namespace detail

// ---------------------------------------------------------------------------
// select_take: receive from whichever of N queues produces first.
// Queues need poll() -> optional<T> and try_take(deadline) -> optional<T>.
// Returns {index, value}, or nullopt on deadline expiry.
// ---------------------------------------------------------------------------
template <typename T, typename... Qs>
std::optional<std::pair<std::size_t, T>> select_take(
    deadline dl, nanoseconds quantum, Qs &...queues) {
  constexpr std::size_t n = sizeof...(Qs);
  static_assert(n >= 1);
  if constexpr ((registering_channel<Qs> && ...)) {
    (void)quantum; // reservations rendezvous instantly; no camping
    return detail::select_take_registered<T>(dl, queues...);
  } else {
  thread_local xoshiro256 rng{0x6a09e667f3bcc908ULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};

  // Type-erased probes over the heterogeneous queue pack.
  struct probe_t {
    void *q;
    std::optional<T> (*poll_now)(void *);
    std::optional<T> (*poll_until)(void *, deadline);
  };
  std::array<probe_t, n> probes = {probe_t{
      static_cast<void *>(&queues),
      [](void *q) { return static_cast<Qs *>(q)->poll(); },
      [](void *q, deadline d) {
        return static_cast<Qs *>(q)->try_take(d);
      }}...};

  for (;;) {
    // Fast scan: randomized rotation for fairness among alternatives.
    std::size_t start = static_cast<std::size_t>(rng.below(n));
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t i = (start + k) % n;
      if (auto v = probes[i].poll_now(probes[i].q))
        return std::make_pair(i, std::move(*v));
    }
    if (dl.expired_now()) return std::nullopt;
    // Camp on one alternative for a bounded quantum.
    std::size_t camp = static_cast<std::size_t>(rng.below(n));
    deadline q_dl = deadline::in(quantum);
    if (q_dl.when() > dl.when()) q_dl = dl;
    if (auto v = probes[camp].poll_until(probes[camp].q, q_dl))
      return std::make_pair(camp, std::move(*v));
  }
  }
}

template <typename T, typename... Qs>
  requires(selectable_channel<Qs> && ...)
std::optional<std::pair<std::size_t, T>> select_take(deadline dl,
                                                     Qs &...queues) {
  return select_take<T>(dl, select_default_quantum, queues...);
}

// ---------------------------------------------------------------------------
// select_put: hand `v` to whichever of N queues accepts first. Queues need
// offer(T) -> bool and try_put_ref(T&, deadline) -> bool. Returns the index
// served, or nullopt on expiry (the value is handed back via `v`).
// ---------------------------------------------------------------------------
template <typename T, typename... Qs>
std::optional<std::size_t> select_put(T &v, deadline dl, nanoseconds quantum,
                                      Qs &...queues) {
  constexpr std::size_t n = sizeof...(Qs);
  static_assert(n >= 1);
  if constexpr ((registering_channel<Qs> && ...)) {
    (void)quantum;
    return detail::select_put_registered(v, dl, queues...);
  } else {
  thread_local xoshiro256 rng{0xbb67ae8584caa73bULL ^
                              reinterpret_cast<std::uintptr_t>(&rng)};

  struct probe_t {
    void *q;
    bool (*offer_now)(void *, T &);
    bool (*offer_until)(void *, T &, deadline);
  };
  std::array<probe_t, n> probes = {probe_t{
      static_cast<void *>(&queues),
      [](void *q, T &val) {
        return static_cast<Qs *>(q)->try_put_ref(val, deadline::expired());
      },
      [](void *q, T &val, deadline d) {
        return static_cast<Qs *>(q)->try_put_ref(val, d);
      }}...};

  for (;;) {
    std::size_t start = static_cast<std::size_t>(rng.below(n));
    for (std::size_t k = 0; k < n; ++k) {
      std::size_t i = (start + k) % n;
      if (probes[i].offer_now(probes[i].q, v)) return i;
    }
    if (dl.expired_now()) return std::nullopt;
    std::size_t camp = static_cast<std::size_t>(rng.below(n));
    deadline q_dl = deadline::in(quantum);
    if (q_dl.when() > dl.when()) q_dl = dl;
    if (probes[camp].offer_until(probes[camp].q, v, q_dl)) return camp;
  }
  }
}

template <typename T, typename... Qs>
  requires(selectable_channel<Qs> && ...)
std::optional<std::size_t> select_put(T &v, deadline dl, Qs &...queues) {
  return select_put(v, dl, select_default_quantum, queues...);
}

} // namespace ssq
