// synchronous_queue<T, Fair>: the library's primary public type -- the
// paper's contribution behind a typed, RAII-friendly interface.
//
//   * Fair = true  -> synchronous dual queue (strict FIFO pairing)
//   * Fair = false -> synchronous dual stack (LIFO pairing; better locality,
//                     the paper's "unfair" mode)
//
// A third template knob picks the *core* carrying the protocol:
//
//   * core_kind::linked    -> the paper's linked dual structures (default)
//   * core_kind::segmented -> the CQS-style waiter-cell segment core
//                             (core/segment_queue.hpp; Fair only -- cell
//                             indices are FIFO by construction)
//   * core_kind::fabric    -> the N-lane sharded fabric over segmented lane
//                             queues (core/fabric.hpp). Fair keeps
//                             FIFO-per-lane + round-robin pairing; unfair
//                             adds d-choice probing and elimination. Lane
//                             count is set via the fabric_config ctor.
//
// Operations (all thread-safe, lock-free, contention-free in the paper's
// sense):
//
//   put(v)                 block until a consumer takes v
//   take()                 block until a producer hands over a value
//   offer(v)               hand v over only if a consumer is already waiting
//   poll()                 take a value only if a producer is already waiting
//   try_put(v, d[, tok])   put with patience d; false on timeout/interrupt
//   try_take(d[, tok])     take with patience d; nullopt on timeout/interrupt
//
// On a failed try_put the value is returned to the caller via the optional
// out-parameter-free contract: the T is moved back out of the internal token
// (boxed codecs) or was never moved at all (inline codecs).
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "core/fabric.hpp"
#include "core/segment_queue.hpp"
#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "core/wait_kind.hpp"
#include "support/codec.hpp"

namespace ssq {

enum class core_kind { linked, segmented, fabric };

template <typename T, bool Fair = false,
          typename Reclaimer = mem::pooled_hp_reclaimer,
          core_kind Core = core_kind::linked>
class synchronous_queue {
  static_assert(Core != core_kind::segmented || Fair,
                "the segmented core pairs by FIFO cell index; instantiate it "
                "with Fair = true");
  using linked_t = std::conditional_t<Fair, transfer_queue<Reclaimer>,
                                      transfer_stack<Reclaimer>>;
  using core_t = std::conditional_t<
      Core == core_kind::segmented, segment_queue<Reclaimer>,
      std::conditional_t<Core == core_kind::fabric,
                         fabric<segment_queue<Reclaimer>, Reclaimer>,
                         linked_t>>;
  using codec = item_codec<T>;

 public:
  static constexpr bool supports_timed = true;
  static constexpr bool is_fair = Fair;
  // select dispatches on this: segmented cores take reservation installs
  // instead of the polling quantum loop (core/select.hpp). The fabric is
  // *not* registering -- its lanes are, but a cross-lane reservation
  // protocol is future work -- so it takes the polling path.
  static constexpr bool segmented_core = Core == core_kind::segmented;
  // The checked-ops wrappers read ssq::tl_last_lane after each operation
  // when this is set (check/driver.hpp; core/lane.hpp).
  static constexpr bool lane_attributed = Core == core_kind::fabric;

  synchronous_queue() : synchronous_queue(sync::spin_policy::adaptive()) {}

  explicit synchronous_queue(sync::spin_policy pol)
      : core_(make_core(pol, Reclaimer{})) {
    core_.set_token_disposer(&dispose_token);
  }

  synchronous_queue(sync::spin_policy pol, Reclaimer rec)
      : core_(make_core(pol, std::move(rec))) {
    core_.set_token_disposer(&dispose_token);
  }

  // Lane-count policy hook (fabric cores only): cfg.lanes picks the shard
  // count (0 = auto); cfg.fair is overridden by the Fair template argument
  // so the facade's fairness contract cannot be contradicted.
  explicit synchronous_queue(fabric_config cfg,
                             sync::spin_policy pol =
                                 sync::spin_policy::adaptive(),
                             Reclaimer rec = Reclaimer{})
    requires(Core == core_kind::fabric)
      : core_(make_core(cfg, pol, std::move(rec))) {
    core_.set_token_disposer(&dispose_token);
  }

  // Block until a consumer accepts the value.
  void put(T v) {
    item_token t = codec::encode(std::move(v));
    item_token r = core_.xfer(t, true, wait_kind::sync);
    SSQ_ASSERT(r != empty_token, "untimed put cannot fail");
  }

  // Block until a producer supplies a value.
  T take() {
    item_token r = core_.xfer(empty_token, false, wait_kind::sync);
    SSQ_ASSERT(r != empty_token, "untimed take cannot fail");
    return codec::decode_consume(r);
  }

  // Fire-and-forget handoff (fabric cores only): deliver to a probed
  // waiting consumer if one exists, otherwise buffer the item in the
  // producer's home-lane spill for bulk detachment. Never blocks, never
  // fails; the synchrony contract is relaxed to "the item cannot be taken
  // before it was offered" (check/oracle.hpp P3's async exemption).
  void put_async(T v)
    requires(Core == core_kind::fabric)
  {
    item_token t = codec::encode(std::move(v));
    item_token r = core_.xfer(t, true, wait_kind::async);
    SSQ_ASSERT(r != empty_token, "async put cannot fail");
  }

  // Non-blocking handoff: succeeds only if a consumer is already waiting.
  bool offer(T v) { return try_put(std::move(v), deadline::expired()); }

  // Non-blocking receive: succeeds only if a producer is already waiting.
  std::optional<T> poll() { return try_take(deadline::expired()); }

  // Timed/interruptible handoff.
  bool try_put(T v, deadline dl, sync::interrupt_token *tok = nullptr) {
    item_token t = codec::encode(std::move(v));
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(t, true, wk, dl, tok);
    if (r == empty_token) {
      codec::dispose(t); // ownership stayed with us
      return false;
    }
    return true;
  }

  template <typename Rep, typename Period>
  bool try_put(T v, std::chrono::duration<Rep, Period> d,
               sync::interrupt_token *tok = nullptr) {
    return try_put(std::move(v), deadline::in(d), tok);
  }

  // Like try_put, but on failure the value is handed back through `v`
  // instead of being destroyed -- what an executor needs to reroute an
  // unaccepted task to a freshly spawned worker.
  bool try_put_ref(T &v, deadline dl, sync::interrupt_token *tok = nullptr) {
    item_token t = codec::encode(std::move(v));
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(t, true, wk, dl, tok);
    if (r == empty_token) {
      v = codec::decode_consume(t); // move it back out
      return false;
    }
    return true;
  }

  // Timed/interruptible receive.
  std::optional<T> try_take(deadline dl, sync::interrupt_token *tok = nullptr) {
    wait_kind wk =
        (dl == deadline::expired()) ? wait_kind::now : wait_kind::timed;
    item_token r = core_.xfer(empty_token, false, wk, dl, tok);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  template <typename Rep, typename Period>
  std::optional<T> try_take(std::chrono::duration<Rep, Period> d,
                            sync::interrupt_token *tok = nullptr) {
    return try_take(deadline::in(d), tok);
  }

  // Adapter aliases used by the cross-implementation battery/benches.
  bool offer(T v, deadline dl, sync::interrupt_token *tok = nullptr) {
    return try_put(std::move(v), dl, tok);
  }
  std::optional<T> poll(deadline dl, sync::interrupt_token *tok = nullptr) {
    return try_take(dl, tok);
  }

  // ------------------------------------------------------------------
  // JDK SynchronousQueue conformance surface: a synchronous queue "does
  // not have any internal capacity, not even a capacity of one", so the
  // Collection-view methods are constants by specification.
  // ------------------------------------------------------------------

  // Always zero (the queue never *contains* elements; waiting nodes are
  // not contents).
  static constexpr std::size_t size() noexcept { return 0; }
  static constexpr std::size_t remaining_capacity() noexcept { return 0; }
  // Always empty in the Collection sense (contrast is_empty(), which
  // reports whether *waiters* are present).
  static constexpr bool empty() noexcept { return true; }
  // Peek is specified to return nothing: an element only ever exists in
  // the instant of a transfer.
  static constexpr std::optional<T> peek() noexcept { return std::nullopt; }

  // Move up to `max` items from already-waiting producers into `out`
  // (JDK drainTo: "transfers elements ... only if a producer is waiting").
  template <typename OutIt>
  std::size_t drain_to(OutIt out, std::size_t max = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max) {
      auto v = poll();
      if (!v) break;
      *out++ = std::move(*v);
      ++n;
    }
    return n;
  }

  // Diagnostics (racy; see core docs).
  bool is_empty() const noexcept { return core_.is_empty(); }
  std::size_t unsafe_length() const noexcept { return core_.unsafe_length(); }

  core_t &core() noexcept { return core_; }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }

  static core_t make_core(sync::spin_policy pol, Reclaimer rec) {
    if constexpr (Core == core_kind::fabric) {
      return make_core(fabric_config{}, pol, std::move(rec));
    } else {
      return core_t(pol, std::move(rec));
    }
  }

  static core_t make_core(fabric_config cfg, sync::spin_policy pol,
                          Reclaimer rec)
    requires(Core == core_kind::fabric)
  {
    cfg.fair = Fair;
    return core_t(cfg, pol, std::move(rec));
  }

  core_t core_;
};

// Convenience aliases matching the paper's naming.
template <typename T, typename R = mem::pooled_hp_reclaimer>
using fair_synchronous_queue = synchronous_queue<T, true, R>;

template <typename T, typename R = mem::pooled_hp_reclaimer>
using unfair_synchronous_queue = synchronous_queue<T, false, R>;

template <typename T, typename R = mem::pooled_hp_reclaimer>
using segmented_synchronous_queue =
    synchronous_queue<T, true, R, core_kind::segmented>;

template <typename T, typename R = mem::pooled_hp_reclaimer>
using fabric_synchronous_queue =
    synchronous_queue<T, false, R, core_kind::fabric>;

template <typename T, typename R = mem::pooled_hp_reclaimer>
using fair_fabric_synchronous_queue =
    synchronous_queue<T, true, R, core_kind::fabric>;

} // namespace ssq
