// The synchronous dual queue -- the paper's FAIR algorithm (§3.3, "The
// synchronous dual queue"), extended with timeout, poll/offer, async
// (TransferQueue) modes, and the deferred cancelled-node cleaning strategy
// from the conference version's Pragmatics section.
//
// Structure: a singly linked list with head and tail pointers, derived from
// the M&S queue. The list holds either data nodes or request (reservation)
// nodes, never both: the queue is "empty" exactly when head == tail (only
// the dummy remains). An arriving thread whose mode matches the tail's mode
// appends and waits; one whose mode complements the head's fulfills the
// oldest waiter with a single CAS of that waiter's item word -- strict FIFO
// service, which is the fairness guarantee.
//
// Linearization points (paper §3.3):
//   * same-mode path: the successful t->next CAS that links our node
//     (request), and the observation that our item word changed (follow-up);
//   * complementary path: the successful CAS of the head waiter's item word.
//
// Item-word protocol per node (see support/codec.hpp for token encoding):
//   data node:    item starts at the producer's token; consumer claims it by
//                 CASing token -> empty;
//   request node: item starts empty; producer fulfills by CASing
//                 empty -> token;
//   cancellation: the waiter CASes its *expected* value -> the node's own
//                 address. Exactly one of {fulfill, cancel} wins the CAS.
//
// Memory reclamation (the part Java's GC does implicitly):
//   * every shared-node dereference is covered by a Reclaimer slot (hazard
//     pointer by default);
//   * a node is retired by whichever of {owner-release, unlink} happens
//     second (mem::life_cycle), so a waiter can keep reading its own node
//     after a fulfiller unlinks it;
//   * the clean_me pointer is registered as an external hazard root, so a
//     node it references can never be freed out from under a cleaner.
//
// Memory-order discipline (docs/memory_model.md): the head/tail/next/item
// CASes are the algorithm's linearization points and stay seq_cst -- the
// oracle's FIFO-pairing proof quantifies over one total order of them.
// What relaxes are the item-word *reads* on the waiter side, paired as the
// labeled edge `qnode.item` (release: the fulfill/cancel cas_item; acquire:
// is_cancelled, the wait loop's done probe, and the final read), plus the
// already-annotated acquire snapshot loads. Every weakened order is spelled
// SSQ_MO(...) so -DSSQ_FORCE_SEQ_CST pins the file for differential runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>

#include "check/schedule_fuzz.hpp"
#include "core/wait_kind.hpp"
#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"
#include "sync/interrupt.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

// How cancelled nodes are removed (paper Pragmatics / ablation_cleaning):
//   deferred_splice -- the real strategy: interior nodes are spliced out
//                      immediately, a cancelled tail is deferred through
//                      clean_me and spliced by the next cleaner;
//   abandon         -- the strawman the paper warns about: mark the node
//                      cancelled and leave it for head traffic to shed.
enum class cleaning_policy { deferred_splice, abandon };

template <typename Reclaimer = mem::pooled_hp_reclaimer>
class transfer_queue {
 public:
  explicit transfer_queue(sync::spin_policy pol = sync::spin_policy::adaptive(),
                          Reclaimer rec = Reclaimer{},
                          cleaning_policy cp = cleaning_policy::deferred_splice)
      : rec_(std::move(rec)), pol_(pol), cleaning_(cp) {
    qnode *dummy = rec_.template create<qnode>(empty_token, /*is_data=*/false);
    dummy->life.preset_released();
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
    clean_me_.value.store(nullptr, std::memory_order_relaxed);
    rec_.register_root(&clean_me_.value);
  }

  ~transfer_queue() {
    rec_.unregister_root(&clean_me_.value);
    // Single-threaded teardown: free every node still linked. Unconsumed
    // data tokens (async producers') are handed to the disposer.
    qnode *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      qnode *next = strip(n->next.load(std::memory_order_relaxed));
      item_token it = n->item.load(std::memory_order_relaxed);
      if (n->is_data && disposer_ && it != empty_token && it != n->self_token())
        disposer_(it);
      rec_.destroy(n);
      n = next;
    }
  }

  transfer_queue(const transfer_queue &) = delete;
  transfer_queue &operator=(const transfer_queue &) = delete;

  // How the destructor should drop data tokens still in the queue (only
  // relevant for boxed codecs; the typed facades install this).
  void set_token_disposer(void (*d)(item_token)) noexcept { disposer_ = d; }

  // The unified transfer operation (JDK Transferer::transfer analogue).
  //
  //   is_data=true : `e` is a non-empty token being handed off (put family).
  //                  Returns `e` on success, empty_token on timeout/now-miss/
  //                  interrupt. On failure ownership of `e` stays with the
  //                  caller.
  //   is_data=false: `e` must be empty_token (take family). Returns the
  //                  claimed token, or empty_token on failure.
  item_token xfer(item_token e, bool is_data, wait_kind wk,
                  deadline dl = deadline::unbounded(),
                  sync::interrupt_token *tok = nullptr) {
    SSQ_ASSERT(is_data == (e != empty_token), "token/mode mismatch");
    SSQ_ASSERT(!(wk == wait_kind::async && !is_data),
               "async mode is producers-only");

    qnode *s = nullptr; // the node we append, lazily created
    typename Reclaimer::slot hz_t(rec_), hz_h(rec_), hz_m(rec_);

    for (;;) {
      qnode *t = hz_t.protect(tail_.value);
      qnode *h = hz_h.protect(head_.value);

      if (h == t || t->is_data == is_data) {
        // ------------------------------------------------ same-mode: wait
        SSQ_MO_JUSTIFIED(
            "acquire: the seq_cst tail re-check on the next line is the "
            "snapshot validation; this read only needs the node contents");
        qnode *n = t->next.load(SSQ_MO(acquire));
        if (t != tail_.value.load(std::memory_order_seq_cst)) continue;
        if (n != nullptr) { // tail lagging (or t dying): help
          advance_tail(t, strip(n));
          continue;
        }
        if (wk == wait_kind::now ||
            (wk == wait_kind::timed && dl.expired_now())) {
          if (s) rec_.destroy(s); // never linked: back through the policy
          return empty_token;
        }
        if (s == nullptr) {
          s = rec_.template create<qnode>(is_data ? e : empty_token, is_data);
          if (wk == wait_kind::async) s->life.preset_released();
        }
        SSQ_INTERLEAVE("tq.link");
        if (!t->cas_next(nullptr, s)) {
          diag::bump(diag::id::cas_fail);
          continue;
        }
        SSQ_INTERLEAVE("tq.linked");
        advance_tail(t, s); // request linearizes at the cas_next above
        if (wk == wait_kind::async) return e;

        item_token x = await_fulfill(s, e, dl, tok);
        if (x == s->self_token()) { // we cancelled
          SSQ_INTERLEAVE("tq.cancelled");
          clean(t, s);
          if (s->life.mark_released()) retire_node(s);
          return empty_token;
        }
        // Fulfilled. Help dequeue ourselves: if still linked, swing head
        // from our predecessor onto us (we become the dummy).
        if (!s->life.is_unlinked()) advance_head(t, s);
        if (s->life.mark_released()) retire_node(s);
        return is_data ? e : x;
      } else {
        // ----------------------------------------- complementary: fulfill
        SSQ_MO_JUSTIFIED(
            "acquire: initial snapshot; the seq_cst head/next re-reads below "
            "validate it before any dereference of m");
        qnode *mr = h->next.load(SSQ_MO(acquire));
        qnode *m = strip(mr);
        hz_m.set(m);
        // Validate the snapshot: head unmoved and successor word unchanged
        // (raw compare: a tag appearing means h began dying). Passing both
        // proves m was live when the hazard was published.
        if (t != tail_.value.load(std::memory_order_seq_cst) ||
            m == nullptr || h != head_.value.load(std::memory_order_seq_cst) ||
            mr != h->next.load(std::memory_order_seq_cst))
          continue;

        item_token x = m->item.load(std::memory_order_seq_cst);
        if (is_data == (x != empty_token) // m already fulfilled
            || x == m->self_token()       // m cancelled
            || !m->cas_item(x, e)) {      // lost the race to fulfill
          advance_head(h, m);             // pop past the dead node and retry
          continue;
        }
        // Fulfilled m: request + follow-up linearize at the cas_item.
        SSQ_INTERLEAVE("tq.fulfilled");
        advance_head(h, m);
        SSQ_INTERLEAVE("tq.fulfill.presignal");
        m->slot.signal();
        if (s) rec_.destroy(s); // allocated earlier, never linked
        return is_data ? e : x;
      }
    }
  }

  // ------------------------------------------------------------ observers

  // ssq-lint: suppress(hazard-coverage) -- racy observer by contract; the
  // dummy is only retired after head_ moves past it (stale answers OK).
  bool is_empty() const noexcept {
    // Racy observer (tests/examples): true when only the dummy remains.
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, documented approximate");
    qnode *h = head_.value.load(SSQ_MO(acquire));
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, documented approximate");
    return strip(h->next.load(SSQ_MO(acquire))) == nullptr;
  }

  // Number of linked nodes (excluding the dummy), counting cancelled ones:
  // the metric the cancelled-node-buildup tests bound. Racy; single-threaded
  // use only.
  // ssq-lint: suppress(hazard-coverage) -- racy observer by contract (the
  // `unsafe_` prefix is the documentation); callers must quiesce first.
  std::size_t unsafe_length() const noexcept {
    std::size_t n = 0;
    SSQ_MO_JUSTIFIED("acquire: racy traversal, documented unsafe");
    qnode *p = head_.value.load(SSQ_MO(acquire));
    SSQ_MO_JUSTIFIED("acquire: racy traversal, documented unsafe");
    for (p = strip(p->next.load(SSQ_MO(acquire))); p;
         p = strip(p->next.load(SSQ_MO(acquire))))
      ++n;
    return n;
  }

  // True when the next waiting node (if any) is a data node. Racy.
  // ssq-lint: suppress(hazard-coverage) -- racy test-only probe of the
  // immutable is_data field.
  bool head_is_data() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: racy snapshot probe");
    qnode *h = head_.value.load(SSQ_MO(acquire));
    SSQ_MO_JUSTIFIED("acquire: racy snapshot probe");
    qnode *n = strip(h->next.load(SSQ_MO(acquire)));
    return n && n->is_data;
  }

  Reclaimer &reclaimer() noexcept { return rec_; }

  // Diagnostic: dump the linked chain (addresses, modes, item-word class).
  // Racy like the other observers; intended for tests and debugging.
  // ssq-lint: suppress(hazard-coverage) -- debug-only racy traversal; only
  // invoked from tests while the structure is quiescent.
  void debug_dump(FILE *f) const {
    SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
    qnode *p = head_.value.load(SSQ_MO(acquire));
    SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
    std::fprintf(f, "  tq head=%p tail=%p clean_me=%p\n",
                 static_cast<void *>(p),
                 static_cast<void *>(tail_.value.load(SSQ_MO(acquire))),
                 clean_me_.value.load(SSQ_MO(acquire)));
    int i = 0;
    for (; p && i < 32; ++i) {
      SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
      qnode *raw = p->next.load(SSQ_MO(acquire));
      SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
      item_token it = p->item.load(SSQ_MO(acquire));
      const char *cls = it == empty_token                ? "empty"
                        : it == p->self_token()          ? "CANCELLED"
                                                         : "value";
      std::fprintf(f, "  [%d] %p is_data=%d item=%s next=%p%s\n", i,
                   static_cast<void *>(p), p->is_data ? 1 : 0, cls,
                   static_cast<void *>(strip(raw)), tagged(raw) ? " TAGGED" : "");
      p = strip(raw);
    }
  }

 private:
  // -----------------------------------------------------------------
  // Unlink safety (the GC-free part, refined after an ASan-caught race):
  // a cancelled node's predecessor reference in clean() can be *stale* --
  // the predecessor may itself have been unlinked -- and a successful
  // pred->next CAS through a dead predecessor would "retire" a node still
  // reachable from the live chain. Java shrugs (casNext on a dead node is
  // harmless under GC); a native port must make that CAS *fail*.
  //
  // Solution (Harris, DISC 2001 style): before any node is physically
  // unlinked, its own next pointer is frozen by setting a tag bit. Every
  // physical-unlink CAS expects an untagged value, so it can only succeed
  // through a predecessor that has not begun dying. Readers strip the tag.
  // -----------------------------------------------------------------
  struct qnode;

  static qnode *strip(qnode *p) noexcept {
    return reinterpret_cast<qnode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }
  static bool tagged(qnode *p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1) != 0;
  }
  static qnode *with_tag(qnode *p) noexcept {
    return reinterpret_cast<qnode *>(reinterpret_cast<std::uintptr_t>(p) | 1);
  }

  struct qnode {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<qnode *> next{nullptr};
    std::atomic<item_token> item;
    sync::park_slot slot;
    mem::life_cycle life;
    const bool is_data;

    qnode(item_token it, bool data) noexcept : item(it), is_data(data) {}

    item_token self_token() const noexcept {
      return reinterpret_cast<item_token>(this);
    }
    bool is_cancelled() const noexcept {
      SSQ_MO_ACQUIRE_EDGE("qnode.item");
      return item.load(SSQ_MO(acquire)) == self_token();
    }
    bool cas_item(item_token expected, item_token desired) noexcept {
      // seq_cst: the item-word CAS is the fulfill/cancel linearization
      // point (paper §3.3) and must stay in the single total order the
      // oracle's FIFO-pairing proof quantifies over. The label documents
      // the release side of the qnode.item edge its acquire ends pair with.
      SSQ_MO_RELEASE_EDGE("qnode.item");
      return item.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst);
    }
    bool cas_next(qnode *expected, qnode *desired) noexcept {
      return next.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst);
    }
  };

  // Freeze n's next pointer (idempotent) and return the stripped successor.
  // A null next is NOT frozen (tagging the append point would wedge the
  // queue); returns nullptr and the caller must re-evaluate.
  SSQ_RETURNS_UNPROTECTED
  static qnode *freeze_next(qnode *n) noexcept {
    for (;;) {
      qnode *raw = n->next.load(std::memory_order_seq_cst);
      if (raw == nullptr) return nullptr;
      if (tagged(raw)) return strip(raw);
      if (n->next.compare_exchange_weak(raw, with_tag(raw),
                                        std::memory_order_seq_cst))
        return raw;
    }
  }

  // Wait until our item word changes (fulfilled) or patience runs out, in
  // which case cancel by CASing in our self-token. Returns the final item
  // value: self-token means cancelled.
  item_token await_fulfill(qnode *s, item_token e, deadline dl,
                           sync::interrupt_token *tok) {
    auto done = [&] {
      SSQ_MO_ACQUIRE_EDGE("qnode.item");
      return s->item.load(SSQ_MO(acquire)) != e;
    };
    auto at_front = [&] {
      typename Reclaimer::slot hz(rec_);
      qnode *h = hz.protect(head_.value);
      SSQ_MO_JUSTIFIED("acquire: comparison-only spin heuristic read");
      return strip(h->next.load(SSQ_MO(acquire))) == s;
    };
    auto r = sync::spin_then_park(s->slot, done, at_front, pol_, dl, tok);
    if (r != sync::park_slot::wait_result::woken) {
      // Timeout or interrupt: try to cancel. A concurrent fulfiller may
      // beat us, in which case the transfer happened and we honor it.
      SSQ_INTERLEAVE("tq.cancel.cas");
      s->cas_item(e, s->self_token());
    }
    SSQ_MO_ACQUIRE_EDGE("qnode.item");
    return s->item.load(SSQ_MO(acquire));
  }

  void advance_tail(qnode *t, qnode *nt) noexcept {
    // No retirement here: the old tail stays linked.
    tail_.value.compare_exchange_strong(t, nt, std::memory_order_seq_cst);
  }

  // Pop h (the current or a former dummy), installing `expected_next` --
  // the successor the caller *validated as dead or fulfilled* -- as the new
  // dummy. Freezing first makes h's next immutable; if the frozen value is
  // not the validated successor (a cancelled-node splice raced us), the pop
  // is ABORTED rather than skipping an unvalidated -- possibly live --
  // node. An aborted pop leaves a frozen live dummy, which is benign: reads
  // strip the tag, splices through it fail (they would be unsafe anyway),
  // and the next correctly-validated advance_head pops it.
  void advance_head(qnode *h, qnode *expected_next) {
    SSQ_INTERLEAVE("tq.pop");
    qnode *nh = freeze_next(h);
    if (nh == nullptr || nh != expected_next) return;
    qnode *expected = h;
    if (head_.value.compare_exchange_strong(expected, nh,
                                            std::memory_order_seq_cst)) {
      if (h->life.mark_unlinked()) retire_node(h);
    }
  }

  void retire_node(qnode *n) {
    // Hygiene: drop a clean_me registration that points at the dying node's
    // record (the external-root scan makes any transient staleness safe;
    // this just stops pinning it).
    SSQ_MO_JUSTIFIED(
        "acquire: hygiene-only read; staleness is safe because the "
        "external-root scan pins whatever clean_me_ holds");
    void *cm = clean_me_.value.load(SSQ_MO(acquire));
    if (cm == static_cast<void *>(n))
      clean_me_.value.compare_exchange_strong(cm, nullptr,
                                              std::memory_order_seq_cst);
    rec_.retire(n);
    diag::bump(diag::id::node_free); // freed (possibly deferred)
  }

  // Unlink the cancelled node s whose predecessor (at insertion time) was
  // pred. Faithful port of the JDK/conference-paper strategy: a cancelled
  // *interior* node is spliced out immediately; a cancelled *tail* node
  // cannot be (its predecessor's next pointer is the queue's append point),
  // so its predecessor is parked in clean_me_ and the splice is performed by
  // whoever next finds clean_me_ occupied.
  void clean(qnode *pred, qnode *s) {
    diag::bump(diag::id::clean_call);
    if (cleaning_ == cleaning_policy::abandon) return; // strawman mode
    clean_inner(pred, s);
    // Port deviation from the JDK (which can "splice" through dead
    // predecessors because GC makes the stray casNext harmless): a node
    // whose predecessor died before the splice cannot be unlinked in place
    // here, only shed when the head marches past it. To keep cancelled
    // garbage bounded without relying on unrelated traffic, every clean
    // finishes by draining the cancelled prefix at the head.
    scavenge_cancelled_prefix();
  }

  void clean_inner(qnode *pred, qnode *s) {
    typename Reclaimer::slot hz_h(rec_), hz_x(rec_), hz_t(rec_), hz_d(rec_),
        hz_e(rec_);

    // Loop until s is out of the queue. Each iteration makes progress by
    // popping a cancelled head, splicing s, or finishing a deferred splice;
    // with a dead (frozen) predecessor the splice can never succeed, and
    // the owner keeps shedding cancelled heads until the march of the head
    // pointer removes s itself -- the JDK loop's behaviour, which the
    // cancellation-storm workloads depend on for bounded garbage.
    while (!s->life.is_unlinked() &&
           strip(pred->next.load(std::memory_order_seq_cst)) == s) {
      qnode *h = hz_h.protect(head_.value);
      SSQ_MO_JUSTIFIED(
          "acquire: snapshot; the seq_cst head/next re-reads below validate "
          "it before hn is trusted");
      qnode *hnr = h->next.load(SSQ_MO(acquire));
      qnode *hn = strip(hnr);
      hz_x.set(hn);
      // Revalidation: while h is still the head, its successor word being
      // unchanged proves hn was not unlinked when the hazard was published
      // (untagged: an unlink would have changed or tagged the word; tagged:
      // the word is frozen and its referent can only be unlinked by popping
      // h itself, which would move the head).
      if (h != head_.value.load(std::memory_order_seq_cst) ||
          hnr != h->next.load(std::memory_order_seq_cst))
        continue;
      if (hn != nullptr && hn->is_cancelled()) {
        advance_head(h, hn);
        continue;
      }
      qnode *t = hz_t.protect(tail_.value);
      if (t == h) return; // queue empty: s is no longer linked
      SSQ_MO_JUSTIFIED(
          "acquire: the seq_cst tail re-check on the next line validates "
          "the snapshot; tn itself is never dereferenced");
      qnode *tn = t->next.load(SSQ_MO(acquire));
      if (t != tail_.value.load(std::memory_order_seq_cst)) continue;
      if (tn != nullptr) {
        advance_tail(t, strip(tn));
        continue;
      }
      if (s != t) {
        // Interior: splice it out now. Freeze s first (its successor value
        // becomes immutable), then unlink through pred -- the CAS expects
        // an untagged value, so it cannot succeed through a pred that has
        // itself begun dying (whose own next is tagged). On failure, fall
        // through to the deferred-cleaning block and loop (JDK behaviour):
        // the next iterations shed cancelled heads until s is gone.
        SSQ_INTERLEAVE("tq.clean.splice");
        qnode *sn = freeze_next(s);
        if (sn != nullptr && pred->cas_next(s, sn)) {
          if (s->life.mark_unlinked()) retire_node(s);
          diag::bump(diag::id::clean_unlink);
          return;
        }
      }
      // s is the tail (or the splice failed): defer through clean_me_.
      SSQ_INTERLEAVE("tq.clean.defer");
      qnode *dp = protect_clean_me(hz_d);
      if (dp != nullptr) {
        // Try to finish the previously deferred splice first. dp is pinned
        // via the hazard + external root; its successor d is validated the
        // same way as hn above: an untagged, unchanged dp->next proves dp
        // has not begun dying, hence d (unlinkable only after dp dies or
        // dp->next moves) was live when its hazard was published.
        SSQ_MO_JUSTIFIED(
            "acquire: snapshot; the seq_cst dp->next re-read below "
            "validates it before d is trusted");
        qnode *dr = dp->next.load(SSQ_MO(acquire));
        qnode *d = strip(dr);
        hz_e.set(d);
        bool resolved = false;
        if (tagged(dr) || dp->life.is_unlinked()) {
          resolved = true; // dp is dying/dead; registration is stale
        } else if (dp->next.load(std::memory_order_seq_cst) != dr) {
          continue; // splice finished by someone else; re-examine
        } else if (d == nullptr || !d->is_cancelled()) {
          resolved = true; // nothing (cancelled) left to splice
        } else if (d != tail_.value.load(std::memory_order_seq_cst)) {
          qnode *dn = freeze_next(d);
          if (dn != nullptr && dp->cas_next(d, dn)) {
            if (d->life.mark_unlinked()) retire_node(d);
            diag::bump(diag::id::clean_unlink);
            resolved = true;
          }
        }
        if (resolved) cas_clean_me(dp, nullptr);
        if (dp == pred) return; // our s is (already) the deferred one
      } else if (cas_clean_me(nullptr, pred)) {
        return; // deferred: someone will splice s out later
      }
    }
  }

  // Pop cancelled nodes off the head until a live one (or emptiness) is
  // exposed. All pops are head-anchored and validated (advance_head aborts
  // if the frozen successor is not the one checked here), hence safe
  // regardless of how the corpses' predecessors died.
  void scavenge_cancelled_prefix() {
    typename Reclaimer::slot hz_h(rec_), hz_x(rec_);
    for (;;) {
      qnode *h = hz_h.protect(head_.value);
      SSQ_MO_JUSTIFIED(
          "acquire: snapshot; the seq_cst head/next re-reads below validate "
          "it before hn is trusted");
      qnode *hnr = h->next.load(SSQ_MO(acquire));
      qnode *hn = strip(hnr);
      hz_x.set(hn);
      // Same validation argument as in clean_inner above.
      if (h != head_.value.load(std::memory_order_seq_cst) ||
          hnr != h->next.load(std::memory_order_seq_cst))
        continue;
      if (hn == nullptr || !hn->is_cancelled()) return; // front is live
      qnode *before = head_.value.load(std::memory_order_seq_cst);
      advance_head(h, hn);
      if (head_.value.load(std::memory_order_seq_cst) == before &&
          before == h)
        return; // aborted pop (raced splice): let others finish
    }
  }

  SSQ_ACQUIRES_HAZARD
  qnode *protect_clean_me(typename Reclaimer::slot &hz) noexcept {
    for (;;) {
      SSQ_MO_JUSTIFIED(
          "acquire: first half of the publish-and-revalidate protect loop; "
          "the seq_cst re-read below is the ordering anchor");
      void *p = clean_me_.value.load(SSQ_MO(acquire));
      hz.set(static_cast<qnode *>(p));
      if (clean_me_.value.load(std::memory_order_seq_cst) == p)
        return static_cast<qnode *>(p);
    }
  }

  bool cas_clean_me(qnode *expected, qnode *desired) noexcept {
    void *e = expected;
    return clean_me_.value.compare_exchange_strong(
        e, desired, std::memory_order_seq_cst);
  }

  Reclaimer rec_;
  sync::spin_policy pol_;
  cleaning_policy cleaning_;
  void (*disposer_)(item_token) = nullptr;

  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<qnode *> head_;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<qnode *> tail_;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<void *> clean_me_;
};

} // namespace ssq
