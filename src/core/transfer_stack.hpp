// The synchronous dual stack -- the paper's UNFAIR algorithm (§3.3, "The
// synchronous dual stack"), extended with timeout and poll/offer modes.
//
// Structure: a singly linked list with a head pointer, derived from the
// Treiber stack. It holds either data or reservations, plus (transiently) a
// single *fulfilling* node of the opposite type at the top. A fulfiller
// pushes its fulfilling node above a waiting reservation; from that moment
// every other thread must help complete the annihilation of the top two
// nodes before doing its own work (lock-freedom via helping).
//
// Linearization points (paper §3.3):
//   * same-mode path: the head CAS that pushes our node (request), and the
//     observation that our match word changed (follow-up);
//   * fulfilling path: the head CAS that pushes the fulfilling node; the
//     follow-up linearizes immediately after.
//
// Port notes (C++ vs. Java -- what GC was hiding):
//
//  1. Result handoff. The JDK lets a waiter read `match.item` and a
//     fulfiller read `m.item` *after* the nodes are popped, relying on GC to
//     keep the counterpart's node alive. Here each node owns a write-once
//     transfer word (`xword`); the unique winner of the match CAS copies
//     the counterpart's token into each party's own node, so nobody ever
//     dereferences a node it does not own or hold a hazard on:
//
//       waiter node m:  xword: empty -> self-token          (cancelled)
//                              empty -> data token          (m is a request)
//                              empty -> fulfiller address   (m is data)
//       fulfilling s:   xword: empty -> m's data token      (s is a request)
//                              empty -> m's address         (s is data)
//
//  2. Unlink safety. A splice of a cancelled node through a *stale* (already
//     popped) predecessor would retire a node still reachable from the live
//     chain -- harmless in Java, fatal here. As in transfer_queue: before a
//     node is physically unlinked its own next pointer is frozen (tag bit),
//     and every next-pointer splice expects an untagged value, so it cannot
//     succeed through a predecessor that has begun dying. Head pops freeze
//     the victim(s) before the head CAS for the same reason, which also
//     pins the post-pop successor value the CAS installs.
//
// Memory-order discipline (docs/memory_model.md): the head/next/xword
// CASes, the helping protocol's reads in the fulfillment loop, and the
// freeze/pop validation reads stay seq_cst -- the annihilation argument
// ("a frozen fulfilling node always implies its xword is set") and the
// oracle's pairing proof lean on one total order over them. The waiter
// side relaxes as the labeled edge `snode.xword` (release: the match CAS
// and the report store in try_match; acquire: is_cancelled, the wait
// loop's done probe, and the final read), plus the annotated acquire
// snapshot loads. Weakened orders are spelled SSQ_MO(...) so
// -DSSQ_FORCE_SEQ_CST pins the file for differential runs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdint>

#include "check/schedule_fuzz.hpp"
#include "core/wait_kind.hpp"
#include "memory/reclaim.hpp"
#include "support/annotations.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"
#include "sync/interrupt.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

namespace ssq {

template <typename Reclaimer = mem::pooled_hp_reclaimer>
class transfer_stack {
  enum : unsigned { req_mode = 0, data_mode = 1, fulfilling = 2 };

 public:
  explicit transfer_stack(sync::spin_policy pol = sync::spin_policy::adaptive(),
                          Reclaimer rec = Reclaimer{})
      : rec_(std::move(rec)), pol_(pol) {
    head_.value.store(nullptr, std::memory_order_relaxed);
  }

  ~transfer_stack() {
    snode *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      snode *next = strip(n->next.load(std::memory_order_relaxed));
      if ((n->mode & data_mode) && disposer_ && n->item != empty_token &&
          n->xword.load(std::memory_order_relaxed) == empty_token)
        disposer_(n->item); // unconsumed data (async producer leftovers)
      rec_.destroy(n);
      n = next;
    }
  }

  transfer_stack(const transfer_stack &) = delete;
  transfer_stack &operator=(const transfer_stack &) = delete;

  void set_token_disposer(void (*d)(item_token)) noexcept { disposer_ = d; }

  // See transfer_queue::xfer for the contract; identical here except that
  // service order is LIFO.
  item_token xfer(item_token e, bool is_data, wait_kind wk,
                  deadline dl = deadline::unbounded(),
                  sync::interrupt_token *tok = nullptr) {
    SSQ_ASSERT(is_data == (e != empty_token), "token/mode mismatch");
    SSQ_ASSERT(!(wk == wait_kind::async && !is_data),
               "async mode is producers-only");
    const unsigned mode = is_data ? data_mode : req_mode;

    snode *s = nullptr;
    typename Reclaimer::slot hz_h(rec_), hz_m(rec_), hz_n(rec_);

    for (;;) {
      snode *h = hz_h.protect(head_.value);
      if (h == nullptr || h->mode == mode) {
        // ---------------------------------------- empty or same-mode: wait
        if (wk == wait_kind::now ||
            (wk == wait_kind::timed && dl.expired_now())) {
          if (h != nullptr && h->is_cancelled()) {
            pop_head(h); // shed garbage, then retry the whole decision
            continue;
          }
          if (s) rec_.destroy(s); // never linked: back through the policy
          return empty_token;
        }
        if (s == nullptr) {
          s = rec_.template create<snode>(e, mode);
          if (wk == wait_kind::async) s->life.preset_released();
        } else {
          s->mode = mode; // may carry a fulfilling bit from a failed attempt
        }
        SSQ_MO_JUSTIFIED(
            "relaxed: pre-publication store; the seq_cst head CAS below "
            "releases the node");
        s->next.store(h, SSQ_MO(relaxed));
        SSQ_INTERLEAVE("ts.push");
        if (!head_.value.compare_exchange_strong(h, s,
                                                 std::memory_order_seq_cst)) {
          diag::bump(diag::id::cas_fail);
          continue;
        }
        // Request linearizes at the push above.
        if (wk == wait_kind::async) return e;

        item_token x = await_fulfill(s, dl, tok);
        if (x == s->self_token()) { // cancelled
          SSQ_INTERLEAVE("ts.cancelled");
          clean(s);
          if (s->life.mark_released()) rec_retire(s);
          return empty_token;
        }
        // Fulfilled: help the fulfiller pop the pair, then leave.
        help_unlink_self(s, hz_h);
        if (s->life.mark_released()) rec_retire(s);
        return is_data ? e : x;
      } else if (!(h->mode & fulfilling)) {
        // --------------------------------------- complementary: fulfill
        if (h->is_cancelled()) { // shed a cancelled top node
          pop_head(h);
          continue;
        }
        if (s == nullptr) {
          s = rec_.template create<snode>(e, mode | fulfilling);
        } else {
          s->mode = mode | fulfilling;
        }
        SSQ_MO_JUSTIFIED(
            "relaxed: pre-publication store; the seq_cst head CAS below "
            "releases the node");
        s->next.store(h, SSQ_MO(relaxed));
        SSQ_INTERLEAVE("ts.fulfill.push");
        if (!head_.value.compare_exchange_strong(h, s,
                                                 std::memory_order_seq_cst)) {
          diag::bump(diag::id::cas_fail);
          continue;
        }
        // Fulfillment loop: annihilate s with the node beneath it. Other
        // threads may help; completion is signalled through s->xword.
        for (;;) {
          item_token got = s->xword.load(std::memory_order_seq_cst);
          if (got != empty_token) { // a helper finished the match for us
            if (!s->life.is_unlinked()) pop_pair(s);
            if (s->life.mark_released()) rec_retire(s);
            return is_data ? e : got;
          }
          if (s->life.is_unlinked()) {
            // s left the stack with xword still empty at our read above.
            // Either a match+pop raced between the two reads (xword is set
            // now and final), or a helper retracted us from an empty stack
            // (m == nullptr path) and we must start over.
            got = s->xword.load(std::memory_order_seq_cst);
            if (got != empty_token) {
              if (s->life.mark_released()) rec_retire(s);
              return is_data ? e : got;
            }
            if (s->life.mark_released()) rec_retire(s);
            s = nullptr;
            break; // outer loop; fresh node next time
          }
          auto [m, s_dying] = read_next(s, hz_m);
          if (s_dying)
            continue; // a match+pop is in flight; xword is set (try_match
                      // stores it before any pop can freeze s)
          if (m == nullptr) {
            // All waiters vanished (timed out): retract the fulfilling
            // node and start over.
            snode *expected = s;
            if (head_.value.compare_exchange_strong(
                    expected, nullptr, std::memory_order_seq_cst)) {
              snode *dead = s;
              s = nullptr;
              if (dead->life.mark_unlinked()) rec_retire(dead);
              if (dead->life.mark_released()) rec_retire(dead);
              break; // outer loop; fresh node next time
            }
            continue;
          }
          if (try_match(m, s)) {
            pop_pair(s);
            item_token r = s->xword.load(std::memory_order_seq_cst);
            if (s->life.mark_released()) rec_retire(s);
            return is_data ? e : r;
          }
          // m was cancelled: freeze and splice it out, try its successor.
          snode *mn = freeze_next(m);
          if (s->cas_next(m, mn)) {
            if (m->life.mark_unlinked()) rec_retire(m);
            diag::bump(diag::id::clean_unlink);
          }
        }
      } else {
        // ------------------------------ top is someone else's fulfiller:
        // help complete the annihilation, then retry our own operation.
        help(h, hz_m, hz_n);
      }
    }
  }

  // ------------------------------------------------------------ observers

  bool is_empty() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: racy snapshot, no dereference follows");
    return head_.value.load(SSQ_MO(acquire)) == nullptr;
  }

  // ssq-lint: suppress(hazard-coverage) -- racy observer by contract (the
  // `unsafe_` prefix is the documentation); callers must quiesce first.
  std::size_t unsafe_length() const noexcept {
    std::size_t n = 0;
    SSQ_MO_JUSTIFIED("acquire: racy traversal, documented unsafe");
    for (snode *p = head_.value.load(SSQ_MO(acquire)); p;
         p = strip(p->next.load(SSQ_MO(acquire))))
      ++n;
    return n;
  }

  // ssq-lint: suppress(hazard-coverage) -- single racy probe of the top
  // node's immutable mode field; used by tests only.
  bool head_is_data() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: racy snapshot probe");
    snode *h = head_.value.load(SSQ_MO(acquire));
    return h && (h->mode & data_mode);
  }

  Reclaimer &reclaimer() noexcept { return rec_; }

  // Diagnostic: dump the chain from head. Racy; for tests and debugging.
  // ssq-lint: suppress(hazard-coverage) -- debug-only racy traversal; only
  // invoked from tests while the structure is quiescent.
  void debug_dump(FILE *f) const {
    SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
    snode *p = head_.value.load(SSQ_MO(acquire));
    std::fprintf(f, "  ts head=%p\n", static_cast<void *>(p));
    int i = 0;
    for (; p && i < 32; ++i) {
      SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
      snode *raw = p->next.load(SSQ_MO(acquire));
      SSQ_MO_JUSTIFIED("acquire: debug-only racy traversal");
      item_token xw = p->xword.load(SSQ_MO(acquire));
      const char *cls = xw == empty_token       ? "waiting"
                        : xw == p->self_token() ? "CANCELLED"
                                                : "matched";
      std::fprintf(f, "  [%d] %p mode=%u xword=%s next=%p%s\n", i,
                   static_cast<void *>(p), p->mode, cls,
                   static_cast<void *>(strip(raw)), tagged(raw) ? " TAGGED" : "");
      p = strip(raw);
    }
  }

 private:
  struct snode;

  static snode *strip(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }
  static bool tagged(snode *p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1) != 0;
  }
  static snode *with_tag(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) | 1);
  }

  struct snode {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<snode *> next{nullptr};
    std::atomic<item_token> xword{empty_token}; // see file comment
    item_token item;                            // immutable after creation
    unsigned mode;                              // mutated only pre-publish
    sync::park_slot slot;
    mem::life_cycle life;

    snode(item_token it, unsigned md) noexcept : item(it), mode(md) {}

    item_token self_token() const noexcept {
      return reinterpret_cast<item_token>(this);
    }
    bool is_cancelled() const noexcept {
      SSQ_MO_ACQUIRE_EDGE("snode.xword");
      return xword.load(SSQ_MO(acquire)) == self_token();
    }
    bool cas_next(snode *expected, snode *desired) noexcept {
      return next.compare_exchange_strong(expected, desired,
                                          std::memory_order_seq_cst);
    }
  };

  // Freeze n's next pointer (idempotent); returns the stripped successor.
  // Null is terminal for a stack node's next (nothing is ever inserted
  // below an existing node), so it needs no tag.
  SSQ_RETURNS_UNPROTECTED
  static snode *freeze_next(snode *n) noexcept {
    for (;;) {
      snode *raw = n->next.load(std::memory_order_seq_cst);
      if (raw == nullptr) return nullptr;
      if (tagged(raw)) return strip(raw);
      if (n->next.compare_exchange_weak(raw, with_tag(raw),
                                        std::memory_order_seq_cst))
        return raw;
    }
  }

  void rec_retire(snode *n) {
    rec_.retire(n);
    diag::bump(diag::id::node_free);
  }

  // Protected read of x->next. On return:
  //   * x_dying == false: `node` was live when its hazard was published
  //     (x's next was untagged and unchanged across the publication);
  //   * x_dying == true: x has begun dying; `node` is the frozen successor
  //     VALUE -- usable as a pointer (e.g. as a head-CAS target) but not
  //     dereferenceable unless protected by other means.
  struct next_read {
    snode *node;
    bool x_dying;
  };
  SSQ_ACQUIRES_HAZARD
  next_read read_next(snode *x, typename Reclaimer::slot &hz) noexcept {
    for (;;) {
      snode *raw = x->next.load(std::memory_order_seq_cst);
      hz.set(strip(raw));
      if (tagged(raw)) return {strip(raw), true};
      if (x->next.load(std::memory_order_seq_cst) == raw) return {raw, false};
    }
  }

  // The match linearization (JDK SNode::tryMatch). Returns true when m is
  // matched to s (by us or by an earlier helper with the same pair).
  // Precondition: caller holds a hazard on m that was published while m was
  // provably live, and on s (or owns it).
  //
  // Completion is IDEMPOTENT by design: the match is two writes -- the
  // winner's CAS on m->xword, then the report into s->xword -- and a
  // different helper can observe the first while the winner is stalled
  // before the second. Since callers pop the pair on `true`, every thread
  // that recognizes the existing match must finish the s->xword write
  // itself (the value is a pure function of the pair, so duplicate stores
  // agree). Otherwise s's owner could find itself unlinked with xword
  // still empty, misread that as "retracted from an empty stack", and
  // restart -- delivering its item a second time (a real double-delivery
  // the linearizability harness caught as a use-after-free of the
  // value box under TSan).
  bool try_match(snode *m, snode *s) noexcept {
    // Value written into the waiter: a reservation receives the fulfiller's
    // data token; a data node receives the fulfiller's address as a pure
    // "claimed" marker.
    const item_token v = (s->mode & data_mode)
                             ? s->item
                             : reinterpret_cast<item_token>(s);
    const item_token back = (s->mode & data_mode)
                                ? reinterpret_cast<item_token>(m)
                                : m->item;
    item_token expected = empty_token;
    // seq_cst: the xword CAS is the match linearization point; the label
    // documents the release side of the snode.xword edge.
    SSQ_MO_RELEASE_EDGE("snode.xword");
    if (m->xword.compare_exchange_strong(expected, v,
                                         std::memory_order_seq_cst)) {
      // Unique winner: report the counterpart into the fulfilling node,
      // then wake the waiter. (Order matters: xword before any pop, so a
      // frozen fulfilling node always implies its xword is set.)
      SSQ_INTERLEAVE("ts.match.mid");
      SSQ_MO_RELEASE_EDGE("snode.xword");
      s->xword.store(back, std::memory_order_seq_cst);
      m->slot.signal();
      return true;
    }
    if (expected != v) return false; // m cancelled / claimed by another pair
    // m is matched to this same s, but the winner may still be between its
    // two stores: complete the fulfiller's side (and the wake) on its
    // behalf before reporting the pair poppable.
    if (s->xword.load(std::memory_order_seq_cst) == empty_token)
      s->xword.store(back, std::memory_order_seq_cst);
    m->slot.signal();
    return true;
  }

  // Pop the fulfilling node `top` and its matched partner together.
  // Freezes both victims' next pointers before the head CAS: stale
  // splicers through them then fail, and the installed successor value is
  // immutable (and provably live until the pop, since it could only become
  // head through this very pop).
  //
  // The partner is NOT generally covered by a caller hazard (the
  // helper-finished-our-match path reaches here with none), and a
  // concurrent thread completing the same pop retires it -- so it must be
  // protected before it is dereferenced. Validation: `head == top` read
  // after publishing the hazard proves the partner was not yet retired at
  // that point (retiring it requires first CASing `top` off the head,
  // both seq_cst), and the freeze CAS in the same iteration pins the
  // protected value against concurrent cancelled-partner splices. Nothing
  // is ever pushed above a fulfilling node, so `head != top` can only mean
  // the pop (or retraction) already completed elsewhere.
  void pop_pair(snode *top) {
    SSQ_INTERLEAVE("ts.pop_pair");
    typename Reclaimer::slot hz(rec_);
    snode *m;
    for (;;) {
      snode *raw = top->next.load(std::memory_order_seq_cst);
      m = strip(raw);
      hz.set(m);
      if (head_.value.load(std::memory_order_seq_cst) != top)
        return; // popped or retracted elsewhere; that thread retires
      if (raw == nullptr) break; // terminal: nothing is inserted below
      if (tagged(raw)) break;    // already frozen: value final, m protected
      if (top->next.compare_exchange_strong(raw, with_tag(raw),
                                            std::memory_order_seq_cst))
        break;
    }
    snode *mn = m ? freeze_next(m) : nullptr;
    snode *expected = top;
    if (head_.value.compare_exchange_strong(expected, mn,
                                            std::memory_order_seq_cst)) {
      if (top->life.mark_unlinked()) rec_retire(top);
      if (m && m->life.mark_unlinked()) rec_retire(m);
    }
  }

  // Pop a (cancelled) head node.
  void pop_head(snode *h) {
    snode *hn = freeze_next(h);
    snode *expected = h;
    if (head_.value.compare_exchange_strong(expected, hn,
                                            std::memory_order_seq_cst)) {
      if (h->life.mark_unlinked()) rec_retire(h);
    }
  }

  // After our own node s was matched: if the pair (fulfiller above us, us)
  // is still at the top, complete the pop on the fulfiller's behalf.
  void help_unlink_self(snode *s, typename Reclaimer::slot &hz_h) {
    if (s->life.is_unlinked()) return;
    snode *h = hz_h.protect(head_.value);
    if (h == nullptr || h == s) return;
    // h is protected; reading h->next is safe (strip: h may be dying).
    SSQ_MO_JUSTIFIED(
        "acquire: comparison-only read; the decisive ordering comes from "
        "try_match/pop_pair's seq_cst operations");
    if (strip(h->next.load(SSQ_MO(acquire))) != s) return;
    // Route through try_match rather than popping directly: it verifies h
    // really is the fulfiller we matched with, and completes h's xword if
    // the matching thread is still between its two stores -- popping first
    // would let h's owner mistake the pop for a retraction.
    if (try_match(s, h)) pop_pair(h);
  }

  // Help the fulfilling node h annihilate with its partner. Caller holds a
  // hazard on h (it was protected as head).
  void help(snode *h, typename Reclaimer::slot &hz_m,
            typename Reclaimer::slot &hz_n) {
    auto [m, h_dying] = read_next(h, hz_m);
    if (h_dying || h->life.is_unlinked()) return; // pop already in flight
    if (m == nullptr) {
      snode *expected = h;
      if (head_.value.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_seq_cst)) {
        if (h->life.mark_unlinked()) rec_retire(h);
      }
      return;
    }
    (void)hz_n; // m is hazard-protected via hz_m; its successor is only
                // ever used as a frozen pointer value inside the pops
    if (try_match(m, h)) {
      pop_pair(h);
    } else {
      // m is cancelled: freeze and splice it out on the fulfiller's behalf.
      snode *mn = freeze_next(m);
      if (h->cas_next(m, mn)) {
        if (m->life.mark_unlinked()) rec_retire(m);
        diag::bump(diag::id::clean_unlink);
      }
    }
  }

  // Wait for our xword to change; cancel on timeout/interrupt.
  item_token await_fulfill(snode *s, deadline dl,
                           sync::interrupt_token *tok) {
    auto done = [&] {
      SSQ_MO_ACQUIRE_EDGE("snode.xword");
      return s->xword.load(SSQ_MO(acquire)) != empty_token;
    };
    auto at_front = [&] {
      // Spin the long count when we are on top or covered by a fulfiller.
      typename Reclaimer::slot hz(rec_);
      snode *h = hz.protect(head_.value);
      return h == s || (h != nullptr && (h->mode & fulfilling));
    };
    auto r = sync::spin_then_park(s->slot, done, at_front, pol_, dl, tok);
    if (r != sync::park_slot::wait_result::woken) {
      SSQ_INTERLEAVE("ts.cancel.cas");
      item_token expected = empty_token;
      s->xword.compare_exchange_strong(expected, s->self_token(),
                                       std::memory_order_seq_cst);
    }
    SSQ_MO_ACQUIRE_EDGE("snode.xword");
    return s->xword.load(SSQ_MO(acquire));
  }

  // Unlink cancelled nodes at and around s (JDK SNode::clean, minus the
  // `past` cancellation refinement, which would require dereferencing a
  // possibly-dead successor; the pointer is used for comparison only).
  void clean(snode *s) {
    diag::bump(diag::id::clean_call);
    SSQ_INTERLEAVE("ts.clean");
    typename Reclaimer::slot hz_p(rec_), hz_q(rec_);

    SSQ_MO_JUSTIFIED("acquire: value used for pointer comparison only");
    snode *past = strip(s->next.load(SSQ_MO(acquire))); // cmp-only

    // Absorb cancelled prefix.
    snode *p;
    for (;;) {
      p = hz_p.protect(head_.value);
      if (p == nullptr || p == past) return;
      if (!p->is_cancelled()) break;
      pop_head(p);
    }
    // Unsplice interior cancelled nodes up to `past`.
    while (p != nullptr && p != past) {
      auto [n, p_dying] = read_next(p, hz_q);
      if (p_dying) return; // lost our anchor; head traffic finishes the job
      if (n != nullptr && n->is_cancelled()) {
        snode *nn = freeze_next(n);
        if (p->cas_next(n, nn)) {
          if (n->life.mark_unlinked()) rec_retire(n);
          diag::bump(diag::id::clean_unlink);
        } else {
          return; // p changed under us (dying or raced); give up
        }
      } else {
        // Advance: transfer protection p <- n. n is covered by hz_q
        // continuously from read_next's validation until hz_p re-publishes
        // it, so the chain of custody is unbroken. No re-read of p->next
        // here: hz_p.set just dropped p's protection, so dereferencing p
        // again would race its reclamation; if n has since been spliced
        // out, the next read_next observes it dying and gives up.
        hz_p.set(n);
        p = n;
      }
    }
  }

  Reclaimer rec_;
  sync::spin_policy pol_;
  void (*disposer_)(item_token) = nullptr;
  SSQ_GUARDED_BY_HAZARD(rec_)
  padded_atomic<snode *> head_;
};

} // namespace ssq
