// Waiting disciplines shared by the dual transfer structures.
#pragma once

namespace ssq {

enum class wait_kind {
  now,   // succeed only if a counterpart is already waiting (poll / offer)
  timed, // wait up to a deadline ("patience"), then cancel
  sync,  // wait indefinitely for a counterpart (put / take)
  async, // producers only: enqueue and return immediately -- the
         // TransferQueue extension of paper §5 ("differ only by releasing
         // producers before items are taken")
};

} // namespace ssq
