// The handoff-channel concept the executor is generic over.
//
// Any of the synchronous queues in this library (and linked_transfer_queue)
// satisfies it; bench/fig6_executor instantiates the executor over each of
// the paper's four contenders.
#pragma once

#include <concepts>
#include <optional>

#include "support/time.hpp"
#include "sync/interrupt.hpp"

namespace ssq {

template <typename Q, typename T>
concept HandoffChannel = requires(Q q, T v, T &vr, deadline dl,
                                  sync::interrupt_token *tok) {
  // Timed receive; nullopt on expiry/interrupt.
  { q.poll(dl, tok) } -> std::convertible_to<std::optional<T>>;
  // Timed handoff that returns the value on failure.
  { q.try_put_ref(vr, dl, tok) } -> std::convertible_to<bool>;
};

} // namespace ssq
