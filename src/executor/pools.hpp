// Convenience pool configurations (the java.util.concurrent.Executors
// factory analogues the paper's benchmark setup references).
#pragma once

#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "executor/thread_pool_executor.hpp"

namespace ssq {

// The paper's CachedThreadPool: zero core threads, unbounded growth, work
// handed to idle workers through a synchronous queue (unfair mode for
// locality, as in the JDK).
using cached_thread_pool =
    thread_pool_executor<synchronous_queue<unique_task, false>>;

inline executor_config cached_pool_config(
    nanoseconds keep_alive = std::chrono::seconds(60)) {
  return executor_config{0, std::size_t{1} << 20, keep_alive};
}

// A fixed-size pool: N core workers over a buffered FIFO channel (the
// linked_transfer_queue in asynchronous mode), never shrinking.
using fixed_thread_pool =
    thread_pool_executor<linked_transfer_queue<unique_task>>;

inline executor_config fixed_pool_config(std::size_t threads) {
  return executor_config{threads, threads, std::chrono::hours(24 * 365)};
}

// The paper's fair variant of the cached pool (FIFO worker reuse; §4 shows
// why this costs locality on some platforms and wins on others).
using fair_cached_thread_pool =
    thread_pool_executor<synchronous_queue<unique_task, true>>;

} // namespace ssq
