// unique_task: a move-only type-erased callable.
//
// std::function requires copyability, which bans tasks that capture
// promises, sockets, or unique_ptrs -- precisely what thread-pool tasks
// capture. (std::move_only_function is C++23; we target C++20.)
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace ssq {

class unique_task {
  struct base {
    virtual void run() = 0;
    virtual ~base() = default;
  };

  template <typename F>
  struct impl final : base {
    explicit impl(F f) : fn(std::move(f)) {}
    void run() override { fn(); }
    F fn;
  };

 public:
  unique_task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, unique_task> &&
                std::is_invocable_v<std::decay_t<F> &>>>
  unique_task(F &&f) // NOLINT: implicit by design, mirrors std::function
      : p_(std::make_unique<impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  unique_task(unique_task &&) noexcept = default;
  unique_task &operator=(unique_task &&) noexcept = default;
  unique_task(const unique_task &) = delete;
  unique_task &operator=(const unique_task &) = delete;

  void operator()() {
    p_->run();
  }

  explicit operator bool() const noexcept { return p_ != nullptr; }

 private:
  std::unique_ptr<base> p_;
};

} // namespace ssq
