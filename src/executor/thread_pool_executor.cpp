#include "executor/thread_pool_executor.hpp"

#include <atomic>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace ssq::exec_detail {

std::uint64_t next_pool_id() noexcept {
  static std::atomic<std::uint64_t> seq{1};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

void name_worker_thread(std::uint64_t pool_id,
                        std::uint64_t worker_id) noexcept {
#if defined(__linux__)
  char name[16]; // pthread limit including NUL
  std::snprintf(name, sizeof name, "ssq-%llu-%llu",
                static_cast<unsigned long long>(pool_id),
                static_cast<unsigned long long>(worker_id));
  pthread_setname_np(pthread_self(), name);
#else
  (void)pool_id;
  (void)worker_id;
#endif
}

} // namespace ssq::exec_detail
