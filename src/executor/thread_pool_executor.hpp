// thread_pool_executor: the ThreadPoolExecutor analogue used by the paper's
// "real-world" benchmark (§4, Figure 6).
//
// Configured as a CachedThreadPool (the paper's setup): core size 0,
// effectively unbounded maximum, finite keep-alive. The executor exercises
// every capability the paper lists in §1:
//
//   * submit offers the task to an idle worker (offer -- succeeds only if a
//     consumer is already waiting), otherwise spawns a new worker;
//   * idle workers poll with a keep-alive patience and retire on timeout;
//   * shutdown interrupts idle workers.
//
// The handoff channel is a template parameter satisfying HandoffChannel, so
// the same executor runs over the Java 5 baseline or the new synchronous
// queues -- exactly the substitution Figure 6 measures.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "executor/blocking_queue.hpp"
#include "executor/task.hpp"
#include "support/config.hpp"
#include "support/time.hpp"
#include "sync/interrupt.hpp"

namespace ssq {

struct executor_config {
  std::size_t core_pool_size = 0;                    // cached pool default
  std::size_t max_pool_size = 1u << 20;              // effectively unbounded
  nanoseconds keep_alive = std::chrono::seconds(60); // idle worker patience
};

// Utilities shared by all instantiations (defined in thread_pool_executor.cpp).
namespace exec_detail {
void name_worker_thread(std::uint64_t pool_id, std::uint64_t worker_id) noexcept;
std::uint64_t next_pool_id() noexcept;
} // namespace exec_detail

template <typename Queue>
  requires HandoffChannel<Queue, unique_task>
class thread_pool_executor {
 public:
  explicit thread_pool_executor(executor_config cfg = {})
      : cfg_(cfg), pool_id_(exec_detail::next_pool_id()) {}

  ~thread_pool_executor() {
    shutdown();
    join();
  }

  thread_pool_executor(const thread_pool_executor &) = delete;
  thread_pool_executor &operator=(const thread_pool_executor &) = delete;

  // Run `f` on some worker. Returns false iff the executor is shut down.
  template <typename F>
  bool submit(F &&f) {
    return execute(unique_task(std::forward<F>(f)));
  }

  bool execute(unique_task t) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    // Fast path: hand to an already-waiting worker (one synchronization
    // episode -- this is where queue quality shows up in Figure 6).
    if (queue_.try_put_ref(t, deadline::expired())) {
      // Over a *buffered* channel (linked_transfer_queue) the handoff can
      // succeed with no worker alive; make sure someone will drain it
      // (JDK's post-enqueue recheck).
      if (live_.load(std::memory_order_acquire) == 0 &&
          cfg_.max_pool_size > 0)
        spawn(unique_task{});
      return true;
    }
    // No idle worker: grow the pool if allowed.
    if (live_.load(std::memory_order_acquire) <
        cfg_.max_pool_size) {
      spawn(std::move(t));
      return true;
    }
    // Saturated: block until a worker frees up (bounded retry so shutdown
    // is honored).
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) return false;
      if (queue_.try_put_ref(t, deadline::in(std::chrono::milliseconds(50))))
        return true;
      if (live_.load(std::memory_order_acquire) < cfg_.max_pool_size) {
        spawn(std::move(t));
        return true;
      }
    }
  }

  // Stop accepting work and wake idle workers. Running tasks complete.
  void shutdown() {
    shutdown_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &w : workers_)
      if (!w->finished.load(std::memory_order_acquire)) w->tok.interrupt();
  }

  // Wait for every worker thread to exit (call after shutdown()).
  void join() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto &w : workers_)
      if (w->th.joinable()) w->th.join();
    workers_.clear();
  }

  // ------------------------------------------------------------ statistics
  std::size_t pool_size() const noexcept {
    return live_.load(std::memory_order_acquire);
  }
  std::size_t largest_pool_size() const noexcept {
    return largest_.load(std::memory_order_acquire);
  }
  std::uint64_t completed_count() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t task_exception_count() const noexcept {
    return exceptions_.load(std::memory_order_acquire);
  }
  std::uint64_t spawned_count() const noexcept {
    return spawned_.load(std::memory_order_acquire);
  }

  Queue &channel() noexcept { return queue_; }

 private:
  struct worker {
    std::thread th;
    sync::interrupt_token tok;
    std::atomic<bool> finished{false};
  };

  void spawn(unique_task first) {
    auto w = std::make_unique<worker>();
    worker *wp = w.get();
    std::size_t n = live_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::size_t big = largest_.load(std::memory_order_relaxed);
    while (n > big &&
           !largest_.compare_exchange_weak(big, n, std::memory_order_relaxed))
      ;
    spawned_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t wid = worker_seq_.fetch_add(1, std::memory_order_relaxed);
    wp->th = std::thread([this, wp, wid, t = std::move(first)]() mutable {
      exec_detail::name_worker_thread(pool_id_, wid);
      worker_main(wp, std::move(t));
    });
    std::lock_guard<std::mutex> lk(mu_);
    reap_locked();
    workers_.push_back(std::move(w));
  }

  void worker_main(worker *w, unique_task first) {
    if (first) run(std::move(first));
    for (;;) {
      if (shutdown_.load(std::memory_order_acquire)) break;
      // Workers beyond the core size use the keep-alive patience and retire
      // on expiry; core workers wait indefinitely (JDK semantics).
      bool timed = live_.load(std::memory_order_acquire) > cfg_.core_pool_size;
      deadline dl =
          timed ? deadline::in(cfg_.keep_alive) : deadline::unbounded();
      auto t = queue_.poll(dl, &w->tok);
      if (t) {
        run(std::move(*t));
        continue;
      }
      if (shutdown_.load(std::memory_order_acquire) || w->tok.interrupted())
        break;
      // Keep-alive expiry: retire only while that keeps the pool at or
      // above core size. The CAS prevents several simultaneously expiring
      // workers from collectively dropping below it.
      std::size_t n = live_.load(std::memory_order_acquire);
      while (n > cfg_.core_pool_size) {
        if (live_.compare_exchange_weak(n, n - 1,
                                        std::memory_order_acq_rel)) {
          w->finished.store(true, std::memory_order_release);
          return;
        }
      }
      // At or below core: keep serving.
    }
    live_.fetch_sub(1, std::memory_order_acq_rel);
    w->finished.store(true, std::memory_order_release);
  }

  void run(unique_task t) {
    try {
      t();
      completed_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // A throwing task must not kill its worker (the JDK respawns; we
      // swallow and count -- same observable pool behaviour, cheaper).
      exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Join finished workers so the bookkeeping vector stays small in
  // long-running pools. Caller holds mu_.
  void reap_locked() {
    for (auto it = workers_.begin(); it != workers_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire) &&
          (*it)->th.joinable()) {
        (*it)->th.join();
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  executor_config cfg_;
  const std::uint64_t pool_id_;
  Queue queue_;

  std::mutex mu_;
  std::vector<std::unique_ptr<worker>> workers_;

  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> largest_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> exceptions_{0};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> worker_seq_{0};
  std::atomic<bool> shutdown_{false};
};

} // namespace ssq
