#include "harness/options.hpp"

#include <cstdlib>
#include <cstring>

namespace ssq::harness {

options options::parse(int argc, char **argv) {
  options o;
  for (int i = 1; i < argc; ++i) {
    const char *a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) continue;
    const char *eq = std::strchr(a + 2, '=');
    if (eq) {
      o.kv_[std::string(a + 2, eq)] = std::string(eq + 1);
    } else {
      o.kv_[std::string(a + 2)] = "1"; // bare flag
    }
  }
  return o;
}

bool options::has(const std::string &key) const { return kv_.count(key) != 0; }

std::string options::get(const std::string &key,
                         const std::string &dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : it->second;
}

std::int64_t options::get_int(const std::string &key,
                              std::int64_t dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::strtoll(it->second.c_str(), nullptr, 10);
}

double options::get_double(const std::string &key, double dflt) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
}

std::vector<int> options::get_int_list(const std::string &key,
                                       std::vector<int> dflt) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  std::vector<int> out;
  const char *p = it->second.c_str();
  while (*p) {
    char *end;
    long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out.empty() ? dflt : out;
}

} // namespace ssq::harness
