// Minimal --key=value command-line parsing for the bench binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ssq::harness {

class options {
 public:
  static options parse(int argc, char **argv);

  bool has(const std::string &key) const;
  std::string get(const std::string &key, const std::string &dflt) const;
  std::int64_t get_int(const std::string &key, std::int64_t dflt) const;
  double get_double(const std::string &key, double dflt) const;
  // Comma-separated integers, e.g. --threads=1,2,4,8.
  std::vector<int> get_int_list(const std::string &key,
                                std::vector<int> dflt) const;

 private:
  std::map<std::string, std::string> kv_;
};

} // namespace ssq::harness
