#include "harness/runner.hpp"

#include <barrier>
#include <thread>

namespace ssq::harness {

double run_threads_timed(std::vector<std::function<void()>> bodies) {
  const int n = static_cast<int>(bodies.size());
  std::barrier gate(n + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (auto &b : bodies) {
    threads.emplace_back([&gate, body = std::move(b)]() mutable {
      gate.arrive_and_wait();
      body();
    });
  }
  gate.arrive_and_wait();
  auto t0 = steady_clock::now();
  for (auto &t : threads) t.join();
  auto t1 = steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<std::uint64_t> split_quota(std::uint64_t total, int parts) {
  std::vector<std::uint64_t> q(static_cast<std::size_t>(parts),
                               total / static_cast<std::uint64_t>(parts));
  for (std::uint64_t i = 0; i < total % static_cast<std::uint64_t>(parts); ++i)
    ++q[static_cast<std::size_t>(i)];
  return q;
}

} // namespace ssq::harness
