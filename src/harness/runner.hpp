// Workload runner for the figure benchmarks.
//
// Reproduces the paper's microbenchmark shape (§4): "threads that produce
// and consume as fast as they can; this represents the limiting case of
// producer-consumer applications as the cost to process elements approaches
// zero." Producer/consumer quotas are balanced exactly so a synchronous
// queue run always terminates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/config.hpp"
#include "support/time.hpp"

namespace ssq::harness {

struct run_result {
  double ns_per_transfer = 0;
  std::uint64_t transfers = 0;
  double seconds = 0;
  bool checksum_ok = true;
};

// Launch all `bodies` as threads, release them through a start barrier,
// time from release to last exit. Defined in runner.cpp.
double run_threads_timed(std::vector<std::function<void()>> bodies);

// Split `total` into `parts` near-equal quotas.
std::vector<std::uint64_t> split_quota(std::uint64_t total, int parts);

// Producer/consumer handoff benchmark over any channel exposing put/take.
// `Q` needs: void put(uint64_t), uint64_t take().
template <typename Q>
run_result run_handoff(Q &q, int nprod, int ncons, std::uint64_t transfers) {
  SSQ_ASSERT(nprod >= 1 && ncons >= 1, "need at least one of each");
  auto pq = split_quota(transfers, nprod);
  auto cq = split_quota(transfers, ncons);

  // Checksum: sum of produced values must equal sum of consumed values.
  std::vector<std::uint64_t> psum(static_cast<std::size_t>(nprod)),
      csum(static_cast<std::size_t>(ncons));

  std::vector<std::function<void()>> bodies;
  std::uint64_t base = 1; // value 0 would be invisible in the checksum
  for (int p = 0; p < nprod; ++p) {
    std::uint64_t lo = base, n = pq[static_cast<std::size_t>(p)];
    base += n;
    bodies.push_back([&q, lo, n, &s = psum[static_cast<std::size_t>(p)]] {
      for (std::uint64_t i = 0; i < n; ++i) {
        q.put(lo + i);
        s += lo + i;
      }
    });
  }
  for (int c = 0; c < ncons; ++c) {
    std::uint64_t n = cq[static_cast<std::size_t>(c)];
    bodies.push_back([&q, n, &s = csum[static_cast<std::size_t>(c)]] {
      for (std::uint64_t i = 0; i < n; ++i) s += q.take();
    });
  }

  run_result r;
  r.transfers = transfers;
  r.seconds = run_threads_timed(std::move(bodies));
  r.ns_per_transfer = r.seconds * 1e9 / static_cast<double>(transfers);

  std::uint64_t put_total = 0, take_total = 0;
  for (auto v : psum) put_total += v;
  for (auto v : csum) take_total += v;
  r.checksum_ok = (put_total == take_total);
  return r;
}

} // namespace ssq::harness
