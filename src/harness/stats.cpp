#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ssq::harness {

summary summarize(std::vector<double> samples) {
  summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = (s.n % 2) ? samples[s.n / 2]
                       : 0.5 * (samples[s.n / 2 - 1] + samples[s.n / 2]);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.n > 1 ? std::sqrt(var / static_cast<double>(s.n - 1)) : 0.0;
  return s;
}

double percentile(std::vector<double> &samples, double q) {
  if (samples.empty()) return 0;
  if (q <= 0) q = 0;
  if (q >= 1) q = 1;
  std::sort(samples.begin(), samples.end());
  double rank = q * static_cast<double>(samples.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = lo + 1 < samples.size() ? lo + 1 : lo;
  double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

} // namespace ssq::harness
