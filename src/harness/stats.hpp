// Summary statistics for benchmark samples.
#pragma once

#include <cstddef>
#include <vector>

namespace ssq::harness {

struct summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double median = 0;
  std::size_t n = 0;
};

summary summarize(std::vector<double> samples);

// Percentile by linear interpolation between closest ranks; q in [0, 1].
// Sorts its input.
double percentile(std::vector<double> &samples, double q);

} // namespace ssq::harness
