#include "harness/table.hpp"

#include <cstdio>

#include "support/config.hpp"

namespace ssq::harness {

table::table(std::vector<std::string> columns) : cols_(std::move(columns)) {}

void table::add_row(std::vector<std::string> cells) {
  SSQ_ASSERT(cells.size() == cols_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void table::print() const {
  std::vector<std::size_t> w(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) w[c] = cols_[c].size();
  for (const auto &r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > w[c]) w[c] = r[c].size();

  auto line = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::printf("%s%*s", c ? "  " : "", static_cast<int>(w[c]),
                  cells[c].c_str());
    std::printf("\n");
  };
  line(cols_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols_.size(); ++c) total += w[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto &r : rows_) line(r);
}

bool table::write_csv(const std::string &path) const {
  FILE *f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  auto emit = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::fprintf(f, "%s%s", c ? "," : "", cells[c].c_str());
    std::fprintf(f, "\n");
  };
  emit(cols_);
  for (const auto &r : rows_) emit(r);
  std::fclose(f);
  return true;
}

} // namespace ssq::harness
