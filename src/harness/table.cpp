#include "harness/table.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/config.hpp"

namespace ssq::harness {

table::table(std::vector<std::string> columns) : cols_(std::move(columns)) {}

void table::add_row(std::vector<std::string> cells) {
  SSQ_ASSERT(cells.size() == cols_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void table::set_meta(const std::string &key, const std::string &value) {
  for (auto &kv : meta_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  meta_.emplace_back(key, value);
}

std::string table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void table::print() const {
  std::vector<std::size_t> w(cols_.size());
  for (std::size_t c = 0; c < cols_.size(); ++c) w[c] = cols_[c].size();
  for (const auto &r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > w[c]) w[c] = r[c].size();

  auto line = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::printf("%s%*s", c ? "  " : "", static_cast<int>(w[c]),
                  cells[c].c_str());
    std::printf("\n");
  };
  line(cols_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < cols_.size(); ++c) total += w[c] + (c ? 2 : 0);
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto &r : rows_) line(r);
}

bool table::write_csv(const std::string &path) const {
  FILE *f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  auto emit = [&](const std::vector<std::string> &cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      std::fprintf(f, "%s%s", c ? "," : "", cells[c].c_str());
    std::fprintf(f, "\n");
  };
  emit(cols_);
  for (const auto &r : rows_) emit(r);
  std::fclose(f);
  return true;
}

namespace {

bool is_plain_number(const std::string &s) {
  if (s.empty()) return false;
  char *end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

void json_string(FILE *f, const std::string &s) {
  std::fputc('"', f);
  for (char ch : s) {
    if (ch == '"' || ch == '\\') std::fputc('\\', f);
    std::fputc(ch, f);
  }
  std::fputc('"', f);
}

} // namespace

bool table::write_json(const std::string &path) const {
  FILE *f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  if (!meta_.empty()) {
    std::fprintf(f, "  \"meta\": {");
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i) std::fprintf(f, ", ");
      json_string(f, meta_[i].first);
      std::fprintf(f, ": ");
      json_string(f, meta_[i].second);
    }
    std::fprintf(f, "},\n");
  }
  std::fprintf(f, "  \"columns\": [");
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    if (c) std::fprintf(f, ", ");
    json_string(f, cols_[c]);
  }
  std::fprintf(f, "],\n  \"rows\": [");
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::fprintf(f, "%s\n    {", r ? "," : "");
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) std::fprintf(f, ", ");
      json_string(f, cols_[c]);
      std::fprintf(f, ": ");
      if (is_plain_number(rows_[r][c]))
        std::fprintf(f, "%s", rows_[r][c].c_str());
      else
        json_string(f, rows_[r][c]);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  return true;
}

} // namespace ssq::harness
