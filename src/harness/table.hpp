// Paper-style results table: one row per concurrency level, one column per
// algorithm, printed aligned to stdout and optionally written as CSV (the
// series a plotting script would consume to regenerate the figure).
#pragma once

#include <string>
#include <vector>

namespace ssq::harness {

class table {
 public:
  explicit table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  // Aligned plain-text rendering.
  void print() const;

  // RFC-4180-ish CSV; returns false on I/O failure.
  bool write_csv(const std::string &path) const;

  // JSON object {"columns": [...], "rows": [{col: cell, ...}, ...]}; cells
  // that parse as plain numbers are emitted unquoted so downstream tooling
  // reads the series without coercion. Returns false on I/O failure.
  bool write_json(const std::string &path) const;

  static std::string fmt(double v, int precision = 1);

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace ssq::harness
