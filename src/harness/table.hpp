// Paper-style results table: one row per concurrency level, one column per
// algorithm, printed aligned to stdout and optionally written as CSV (the
// series a plotting script would consume to regenerate the figure).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ssq::harness {

class table {
 public:
  explicit table(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  // Provenance attached to the JSON header (build mode, git revision, ...).
  // Insertion-ordered; setting an existing key overwrites its value.
  void set_meta(const std::string &key, const std::string &value);

  // Aligned plain-text rendering.
  void print() const;

  // RFC-4180-ish CSV; returns false on I/O failure.
  bool write_csv(const std::string &path) const;

  // JSON object {"meta": {...}, "columns": [...], "rows": [{col: cell, ...},
  // ...]} ("meta" omitted when empty; scripts/bench_compare.py keys on it to
  // refuse apples-to-oranges comparisons). Cells that parse as plain numbers
  // are emitted unquoted so downstream tooling reads the series without
  // coercion. Returns false on I/O failure.
  bool write_json(const std::string &path) const;

  static std::string fmt(double v, int precision = 1);

 private:
  std::vector<std::string> cols_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

} // namespace ssq::harness
