#include "memory/epoch.hpp"

#include <mutex>
#include <unordered_map>

#include "support/annotations.hpp"
#include "support/config.hpp"
#include "support/diagnostics.hpp"

namespace ssq::mem {

namespace {

struct e_registry {
  std::mutex mu;
  std::unordered_map<const epoch_domain *, std::uint64_t> live;
};

e_registry &ereg() {
  static e_registry r;
  return r;
}

std::uint64_t next_edomain_uid() {
  static std::atomic<std::uint64_t> seq{1};
  SSQ_MO_JUSTIFIED("relaxed: uid counter, only uniqueness matters");
  return seq.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint64_t pin_bit = 1;

// How many retires between collection attempts.
constexpr std::uint64_t collect_period = 64;

} // namespace

struct epoch_domain::orphan_list {
  std::mutex mu;
  std::vector<retired_node> nodes; // already >= 3 epochs stale when adopted
};

struct epoch_domain::tl_cache {
  struct entry {
    epoch_domain *dom;
    std::uint64_t uid;
    record *rec;
  };
  std::vector<entry> entries;

  record *find(epoch_domain *d) noexcept {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->dom == d) {
        if (it->uid == d->uid()) return it->rec;
        entries.erase(it); // address reuse by a newer domain
        return nullptr;
      }
    }
    return nullptr;
  }

  ~tl_cache() {
    std::lock_guard<std::mutex> lk(ereg().mu);
    for (auto &e : entries) {
      auto it = ereg().live.find(e.dom);
      if (it != ereg().live.end() && it->second == e.uid)
        e.dom->release_record(e.rec);
    }
  }
};

namespace {
epoch_domain::tl_cache &ecache() {
  thread_local epoch_domain::tl_cache c;
  return c;
}
} // namespace

epoch_domain::epoch_domain()
    : uid_(next_edomain_uid()), orphans_(new orphan_list) {
  SSQ_MO_JUSTIFIED("relaxed: construction-time store, no sharing yet");
  epoch_.value.store(2, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(ereg().mu);
  ereg().live.emplace(this, uid_);
}

epoch_domain::~epoch_domain() {
  {
    std::lock_guard<std::mutex> lk(ereg().mu);
    ereg().live.erase(this);
  }
  {
    std::lock_guard<std::mutex> lk(orphans_->mu);
    for (auto &rn : orphans_->nodes) rn.deleter(rn.ptr);
  }
  record *r = head_.load(std::memory_order_acquire);
  while (r) {
    record *next = r->next;
    for (auto &bucket : r->limbo)
      for (auto &rn : bucket) rn.deleter(rn.ptr);
    delete r;
    r = next;
  }
  delete orphans_;
}

epoch_domain &epoch_domain::global() noexcept {
  static epoch_domain d;
  return d;
}

epoch_domain::record *epoch_domain::acquire_record() {
  tl_cache &c = ecache();
  if (record *r = c.find(this)) return r;
  SSQ_MO_JUSTIFIED("acquire: list traversal; a record's next is immutable "
                   "once the publishing acq_rel CAS links it");
  for (record *r = head_.load(std::memory_order_acquire); r; r = r->next) {
    bool expected = false;
    SSQ_MO_JUSTIFIED("relaxed pre-screen; the acq_rel CAS in the same "
                     "condition decides and synchronizes with "
                     "release_record");
    if (!r->active.load(std::memory_order_relaxed) &&
        r->active.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      c.entries.push_back({this, uid_, r});
      return r;
    }
  }
  auto *r = new record;
  SSQ_MO_JUSTIFIED("relaxed: record is thread-private until the head CAS "
                   "below publishes it");
  r->active.store(true, std::memory_order_relaxed);
  SSQ_MO_JUSTIFIED("acquire: first guess for the publishing CAS loop");
  record *h = head_.load(std::memory_order_acquire);
  SSQ_MO_JUSTIFIED("acq_rel: the CAS publishes the initialized record; "
                   "acquire on failure refreshes the head snapshot");
  do {
    r->next = h;
  } while (!head_.compare_exchange_weak(h, r, std::memory_order_acq_rel,
                                        std::memory_order_acquire));
  c.entries.push_back({this, uid_, r});
  return r;
}

void epoch_domain::release_record(record *rec) {
  // Leftover limbo entries are at least 0..2 epochs old; future adopters may
  // observe them before three epochs pass, so park them as orphans and defer
  // to a drain/destructor (orphans are only freed when adopted by collect()
  // after a full advance cycle, see below).
  std::vector<retired_node> leftovers;
  for (auto &bucket : rec->limbo) {
    leftovers.insert(leftovers.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  if (!leftovers.empty()) {
    std::lock_guard<std::mutex> lk(orphans_->mu);
    orphans_->nodes.insert(orphans_->nodes.end(), leftovers.begin(),
                           leftovers.end());
  }
  SSQ_MO_JUSTIFIED("release: unpin is visible before the active flag drops");
  rec->state.store(0, std::memory_order_release);
  SSQ_MO_JUSTIFIED("release: publishes the drained limbo lists to the "
                   "adopter's acq_rel CAS");
  rec->active.store(false, std::memory_order_release);
}

epoch_domain::guard::guard(epoch_domain &d) noexcept
    : dom_(d), rec_(d.acquire_record()) {
  SSQ_MO_JUSTIFIED("relaxed: owner-thread read of its own pin state");
  SSQ_ASSERT((rec_->state.load(std::memory_order_relaxed) & pin_bit) == 0,
             "epoch guards must not nest within one thread");
  SSQ_MO_JUSTIFIED("acquire: first guess; the seq_cst publish and re-read "
                   "below anchor the pin");
  std::uint64_t e = dom_.epoch_.value.load(std::memory_order_acquire);
  rec_->state.store((e << 1) | pin_bit, std::memory_order_seq_cst);
  // Re-read: if the epoch moved between load and publish we would otherwise
  // pin a stale epoch and block advancement longer than necessary (still
  // correct, just slower); one refresh keeps the lag at most one epoch.
  std::uint64_t e2 = dom_.epoch_.value.load(std::memory_order_seq_cst);
  if (e2 != e) rec_->state.store((e2 << 1) | pin_bit, std::memory_order_seq_cst);
}

epoch_domain::guard::~guard() noexcept {
  rec_->state.store(0, std::memory_order_release);
}

void epoch_domain::retire(void *ptr, void (*deleter)(void *)) {
  record *rec = acquire_record();
  SSQ_MO_JUSTIFIED("relaxed: owner-thread read of its own pin state");
  SSQ_ASSERT(rec->state.load(std::memory_order_relaxed) & pin_bit,
             "epoch_domain::retire called while not pinned");
  SSQ_MO_JUSTIFIED("acquire: bucket tagging only; the caller is pinned, so "
                   "the epoch can advance at most once past this value");
  std::uint64_t e = epoch_.value.load(std::memory_order_acquire);
  auto b = static_cast<std::size_t>(e % 3);
  if (rec->limbo_epoch[b] != e) {
    // Bucket contents are from epoch e-3 or older: at least two full
    // advances have passed, safe to free.
    for (auto &rn : rec->limbo[b]) rn.deleter(rn.ptr);
    SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
    retired_estimate_.fetch_sub(rec->limbo[b].size(),
                                std::memory_order_relaxed);
    rec->limbo[b].clear();
    rec->limbo_epoch[b] = e;
  }
  rec->limbo[b].push_back({ptr, deleter});
  diag::bump(diag::id::node_retire);
  SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
  retired_estimate_.fetch_add(1, std::memory_order_relaxed);
  if (++rec->op_count % collect_period == 0) collect();
}

bool epoch_domain::try_advance() {
  std::uint64_t e = epoch_.value.load(std::memory_order_seq_cst);
  SSQ_MO_JUSTIFIED("acquire: list traversal; the seq_cst state loads "
                   "inside are the ordering anchor of the advance check");
  for (record *r = head_.load(std::memory_order_acquire); r; r = r->next) {
    std::uint64_t s = r->state.load(std::memory_order_seq_cst);
    if ((s & pin_bit) && (s >> 1) != e) return false; // straggler
  }
  return epoch_.value.compare_exchange_strong(e, e + 1,
                                              std::memory_order_seq_cst);
}

std::size_t epoch_domain::flush(record *rec) {
  SSQ_MO_JUSTIFIED("acquire: synchronizes with the advance CAS; a stale "
                   "epoch only delays freeing, never frees early");
  std::uint64_t e = epoch_.value.load(std::memory_order_acquire);
  std::size_t freed = 0;
  for (std::size_t b = 0; b < 3; ++b) {
    if (!rec->limbo[b].empty() && rec->limbo_epoch[b] + 2 <= e) {
      for (auto &rn : rec->limbo[b]) rn.deleter(rn.ptr);
      freed += rec->limbo[b].size();
      rec->limbo[b].clear();
    }
  }
  SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
  retired_estimate_.fetch_sub(freed, std::memory_order_relaxed);
  if (freed) diag::bump(diag::id::epoch_flush);
  return freed;
}

std::size_t epoch_domain::collect() {
  record *rec = acquire_record();
  try_advance();
  std::size_t freed = flush(rec);

  // Adopt orphans only when we can prove a full grace period: advance twice
  // more; if both succeed, anything orphaned before the first advance is
  // unreachable.
  {
    std::vector<retired_node> adopted;
    {
      std::lock_guard<std::mutex> lk(orphans_->mu);
      adopted.swap(orphans_->nodes);
    }
    if (!adopted.empty()) {
      if (try_advance() && try_advance()) {
        for (auto &rn : adopted) rn.deleter(rn.ptr);
        SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented "
                         "approximate");
        retired_estimate_.fetch_sub(adopted.size(),
                                    std::memory_order_relaxed);
        freed += adopted.size();
      } else {
        std::lock_guard<std::mutex> lk(orphans_->mu);
        orphans_->nodes.insert(orphans_->nodes.end(), adopted.begin(),
                               adopted.end());
      }
    }
  }
  return freed;
}

std::size_t epoch_domain::drain() {
  std::size_t total = 0;
  for (int i = 0; i < 8; ++i) {
    std::size_t freed = collect();
    total += freed;
    if (freed == 0 && i >= 3) break;
  }
  return total;
}

} // namespace ssq::mem
