// Epoch-based reclamation (Fraser-style, 3 epochs).
//
// Used by the *non-blocking* substrates (Treiber stack, M&S queue), whose
// operations are short and never block while pinned. It is deliberately NOT
// used by the synchronous dual structures: a waiter parked in the kernel
// would pin its epoch indefinitely and stall reclamation for the entire
// process, whereas a hazard pointer held across a park pins only the O(1)
// nodes it names. bench/ablation_reclaim quantifies the cost difference on
// the M&S substrate, where both schemes are applicable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/annotations.hpp"
#include "support/cacheline.hpp"

namespace ssq::mem {

class epoch_domain {
 public:
  epoch_domain();
  // Precondition: no concurrent users. Frees all limbo nodes.
  ~epoch_domain();
  epoch_domain(const epoch_domain &) = delete;
  epoch_domain &operator=(const epoch_domain &) = delete;

  static epoch_domain &global() noexcept;

  struct retired_node {
    void *ptr;
    void (*deleter)(void *);
  };

  struct record {
    // Local epoch; the low bit doubles as the "pinned" flag.
    std::atomic<std::uint64_t> state{0};
    std::atomic<bool> active{false};
    record *next = nullptr;
    // Owner-only: three limbo generations, each tagged with the epoch its
    // contents were retired in.
    std::vector<retired_node> limbo[3];
    std::uint64_t limbo_epoch[3] = {0, 0, 0};
    std::uint64_t op_count = 0;
  };

  // RAII critical-section pin.
  class guard {
   public:
    explicit guard(epoch_domain &d = global()) noexcept;
    ~guard() noexcept;
    guard(const guard &) = delete;
    guard &operator=(const guard &) = delete;

   private:
    epoch_domain &dom_;
    record *rec_;
  };

  // Must be called while pinned by the calling thread.
  void retire(void *ptr, void (*deleter)(void *));

  template <typename T>
  void retire(T *p) {
    retire(const_cast<void *>(static_cast<const void *>(p)),
           [](void *q) { delete static_cast<T *>(q); });
  }

  // Attempt to advance the global epoch and flush eligible limbo lists for
  // the calling thread. Returns nodes freed.
  std::size_t collect();

  // Collect until quiescent (tests; requires no thread currently pinned).
  std::size_t drain();

  std::uint64_t global_epoch() const noexcept {
    SSQ_MO_JUSTIFIED("acquire: test/monitoring observer; pairs with the "
                     "seq_cst advance CAS, staleness benign");
    return epoch_.value.load(std::memory_order_acquire);
  }

  std::size_t approx_retired() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
    return retired_estimate_.load(std::memory_order_relaxed);
  }

  // Unique per construction (see hazard_domain::uid).
  std::uint64_t uid() const noexcept { return uid_; }

  // Per-thread record cache; defined in epoch.cpp, public so the
  // thread_local instance can name it.
  struct tl_cache;

 private:
  friend struct tl_cache;
  record *acquire_record();
  void release_record(record *rec);
  bool try_advance();
  std::size_t flush(record *rec);

  std::uint64_t uid_ = 0;
  padded_atomic<std::uint64_t> epoch_; // global epoch, starts at 2
  std::atomic<record *> head_{nullptr};
  std::atomic<std::size_t> retired_estimate_{0};
  struct orphan_list;
  orphan_list *orphans_;
};

} // namespace ssq::mem
