#include "memory/hazard.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "support/annotations.hpp"
#include "support/diagnostics.hpp"

namespace ssq::mem {

// ---------------------------------------------------------------------------
// Live-domain registry.
//
// Thread-local record caches hold raw pointers into domains. A domain (other
// than the global one) may be destroyed while threads that used it are still
// alive; their cache destructors must not touch freed memory. The registry
// is consulted under its mutex before any cache-eviction dereference. It is
// a function-local static constructed before any domain, hence destroyed
// after all of them.
// ---------------------------------------------------------------------------

namespace {

struct domain_registry {
  std::mutex mu;
  // live domain -> uid. The uid guards against a destroyed domain's address
  // being reused by a newly constructed one.
  std::unordered_map<const hazard_domain *, std::uint64_t> live;
};

domain_registry &registry() {
  static domain_registry r;
  return r;
}

std::uint64_t next_domain_uid() {
  static std::atomic<std::uint64_t> seq{1};
  SSQ_MO_JUSTIFIED("relaxed: uid counter, only uniqueness matters");
  return seq.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

struct hazard_domain::orphan_list {
  std::mutex mu;
  std::vector<retired_node> nodes;
};

struct hazard_domain::root_list {
  std::mutex mu;
  std::vector<const std::atomic<void *> *> roots;
};

// ---------------------------------------------------------------------------
// Per-thread record cache.
// ---------------------------------------------------------------------------

struct hazard_domain::tl_cache {
  struct entry {
    hazard_domain *dom;
    std::uint64_t uid;
    record *rec;
  };
  // A thread rarely touches more than a couple of domains; linear scan wins.
  std::vector<entry> entries;

  record *find(hazard_domain *d) noexcept {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->dom == d) {
        if (it->uid == d->uid()) return it->rec;
        // Same address, different domain: the old one is gone; its record
        // was freed with it.
        entries.erase(it);
        return nullptr;
      }
    }
    return nullptr;
  }

  ~tl_cache() {
    std::lock_guard<std::mutex> lk(registry().mu);
    for (auto &e : entries) {
      auto it = registry().live.find(e.dom);
      if (it != registry().live.end() && it->second == e.uid)
        e.dom->release_record(e.rec);
    }
  }
};

namespace {
hazard_domain::tl_cache &cache() {
  thread_local hazard_domain::tl_cache c;
  return c;
}
} // namespace

// ---------------------------------------------------------------------------
// Domain lifecycle.
// ---------------------------------------------------------------------------

hazard_domain::hazard_domain()
    : uid_(next_domain_uid()), orphans_(new orphan_list),
      roots_(new root_list) {
  std::lock_guard<std::mutex> lk(registry().mu);
  registry().live.emplace(this, uid_);
}

void hazard_domain::add_root(const std::atomic<void *> *root) {
  std::lock_guard<std::mutex> lk(roots_->mu);
  roots_->roots.push_back(root);
}

void hazard_domain::remove_root(const std::atomic<void *> *root) {
  std::lock_guard<std::mutex> lk(roots_->mu);
  auto &v = roots_->roots;
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (*it == root) {
      v.erase(it);
      return;
    }
  }
}

hazard_domain::~hazard_domain() {
  {
    std::lock_guard<std::mutex> lk(registry().mu);
    registry().live.erase(this);
  }
  // Contract: no concurrent users remain. Everything pending is freed.
  {
    std::lock_guard<std::mutex> lk(orphans_->mu);
    for (auto &rn : orphans_->nodes) rn.deleter(rn.ptr);
    orphans_->nodes.clear();
  }
  record *r = head_.load(std::memory_order_acquire);
  while (r) {
    record *next = r->next;
    for (auto &rn : r->retired) rn.deleter(rn.ptr);
    delete r;
    r = next;
  }
  delete orphans_;
  delete roots_;
}

hazard_domain &hazard_domain::global() noexcept {
  static hazard_domain d;
  return d;
}

// ---------------------------------------------------------------------------
// Record acquisition / release.
// ---------------------------------------------------------------------------

hazard_domain::record *hazard_domain::acquire_record() {
  tl_cache &c = cache();
  if (record *r = c.find(this)) return r;

  // Try to adopt an inactive record before allocating.
  SSQ_MO_JUSTIFIED("acquire: list traversal; a record's next is immutable "
                   "once the publishing acq_rel CAS links it");
  for (record *r = head_.load(std::memory_order_acquire); r; r = r->next) {
    bool expected = false;
    SSQ_MO_JUSTIFIED("relaxed: cheap pre-screen; the acq_rel CAS below is "
                     "the deciding operation");
    if (!r->active.load(std::memory_order_relaxed)) {
      SSQ_MO_JUSTIFIED("acq_rel: adopting synchronizes with the releasing "
                       "thread's slot clears in release_record");
      if (r->active.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        c.entries.push_back({this, uid_, r});
        return r;
      }
    }
  }

  auto *r = new record;
  for (auto &s : r->slots) {
    SSQ_MO_JUSTIFIED("relaxed: record is thread-private until the head CAS "
                     "below publishes it");
    s.store(nullptr, std::memory_order_relaxed);
  }
  SSQ_MO_JUSTIFIED("relaxed: record is thread-private until the head CAS "
                   "below publishes it");
  r->active.store(true, std::memory_order_relaxed);
  // Lock-free push onto the record list.
  SSQ_MO_JUSTIFIED("acquire: first guess for the publishing CAS loop");
  record *h = head_.load(std::memory_order_acquire);
  SSQ_MO_JUSTIFIED("acq_rel: the CAS publishes the initialized record; "
                   "acquire on failure refreshes the head snapshot");
  do {
    r->next = h;
  } while (!head_.compare_exchange_weak(h, r, std::memory_order_acq_rel,
                                        std::memory_order_acquire));
  SSQ_MO_JUSTIFIED("relaxed: scan-threshold heuristic counter");
  nrecords_.fetch_add(1, std::memory_order_relaxed);
  c.entries.push_back({this, uid_, r});
  return r;
}

void hazard_domain::release_record(record *rec) {
  // Move leftover retirees to the orphan list so they are not stranded in an
  // inactive record.
  if (!rec->retired.empty()) {
    std::lock_guard<std::mutex> lk(orphans_->mu);
    orphans_->nodes.insert(orphans_->nodes.end(), rec->retired.begin(),
                           rec->retired.end());
    rec->retired.clear();
  }
  for (auto &s : rec->slots) {
    SSQ_MO_JUSTIFIED("release: a scanner reading null synchronizes with our "
                     "prior accesses; no later access needs ordering");
    s.store(nullptr, std::memory_order_release);
  }
  rec->used_mask = 0;
  SSQ_MO_JUSTIFIED("release: publishes the cleared slots and used_mask to "
                   "the adopter's acq_rel CAS");
  rec->active.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Hazard slot guard.
// ---------------------------------------------------------------------------

hazard_domain::hazard::hazard(hazard_domain &d) noexcept {
  rec_ = d.acquire_record();
  // Find a free slot; the used mask is owner-thread-only state.
  unsigned i = 0;
  while (i < slots_per_record && (rec_->used_mask & (1u << i))) ++i;
  SSQ_ASSERT(i < slots_per_record,
             "thread exceeded max_hazards_per_thread simultaneous guards");
  idx_ = i;
  rec_->used_mask |= (1u << i);
  slot_ = &rec_->slots[i];
}

hazard_domain::hazard::~hazard() noexcept {
  slot_->store(nullptr, std::memory_order_release);
  rec_->used_mask &= ~(1u << idx_);
}

// ---------------------------------------------------------------------------
// Retirement and scanning.
// ---------------------------------------------------------------------------

void hazard_domain::retire(void *ptr, void (*deleter)(void *)) {
  record *rec = acquire_record();
  rec->retired.push_back({ptr, deleter});
  diag::bump(diag::id::node_retire);
  SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
  retired_estimate_.fetch_add(1, std::memory_order_relaxed);

  // Amortized threshold: R >= H (total hazard slots) guarantees each scan
  // frees at least R - H nodes.
  SSQ_MO_JUSTIFIED("relaxed: scan-threshold heuristic, staleness benign");
  const std::size_t threshold =
      std::max<std::size_t>(64, 2 * slots_per_record *
                                    nrecords_.load(std::memory_order_relaxed));
  if (rec->retired.size() >= threshold) scan_with(rec);
}

std::size_t hazard_domain::scan() { return scan_with(acquire_record()); }

std::size_t hazard_domain::scan_with(record *rec) {
  diag::bump(diag::id::hp_scan);

  // Adopt orphans first so exited threads' garbage participates.
  {
    std::lock_guard<std::mutex> lk(orphans_->mu);
    if (!orphans_->nodes.empty()) {
      rec->retired.insert(rec->retired.end(), orphans_->nodes.begin(),
                          orphans_->nodes.end());
      orphans_->nodes.clear();
    }
  }
  if (rec->retired.empty()) return 0;

  // Stage 1: snapshot every published hazard.
  std::vector<const void *> hazards;
  SSQ_MO_JUSTIFIED("relaxed: capacity hint only");
  hazards.reserve(slots_per_record *
                  nrecords_.load(std::memory_order_relaxed));
  SSQ_MO_JUSTIFIED("acquire: list traversal; the seq_cst slot loads inside "
                   "are the ordering anchor of the scan");
  for (record *r = head_.load(std::memory_order_acquire); r; r = r->next) {
    for (auto &s : r->slots) {
      const void *p = s.load(std::memory_order_seq_cst);
      if (p) hazards.push_back(p);
    }
  }
  {
    // External roots (see add_root): whatever they point at right now is
    // reachable from shared state and must survive this scan.
    std::lock_guard<std::mutex> lk(roots_->mu);
    for (const auto *root : roots_->roots) {
      const void *p = root->load(std::memory_order_seq_cst);
      if (p) hazards.push_back(p);
    }
  }
  std::sort(hazards.begin(), hazards.end());

  // Stage 2: free everything not covered.
  std::vector<retired_node> survivors;
  survivors.reserve(hazards.size());
  std::size_t freed = 0;
  for (auto &rn : rec->retired) {
    if (std::binary_search(hazards.begin(), hazards.end(),
                           static_cast<const void *>(rn.ptr))) {
      survivors.push_back(rn);
    } else {
      rn.deleter(rn.ptr);
      ++freed;
    }
  }
  rec->retired.swap(survivors);
  SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
  retired_estimate_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t hazard_domain::drain() {
  std::size_t total = 0;
  for (;;) {
    std::size_t freed = scan();
    total += freed;
    if (freed == 0) return total;
  }
}

} // namespace ssq::mem
