// Hazard-pointer safe memory reclamation (Michael, PODC 2002 style).
//
// Why this exists: the paper's algorithms retire nodes that other threads may
// still hold references to (a dequeued dummy, an annihilated stack pair, an
// unlinked cancelled node). The Java original leans on the garbage collector;
// this domain provides the equivalent guarantee -- a node handed to retire()
// is deallocated only once no thread has a hazard slot pointing at it.
//
// Design notes:
//  * Per-thread records with a fixed number of slots, linked into a lock-free
//    list and recycled across threads via an active-flag CAS, so short-lived
//    threads neither leak records nor race on a registry lock in steady
//    state.
//  * Retired nodes accumulate per-thread and are freed by an amortized scan
//    (threshold proportional to #records), bounding unreclaimed garbage at
//    O(records * threshold).
//  * Threads that exit with pending retirees push them onto the domain's
//    orphan list; the next scan adopts them.
//  * A parked waiter may keep hazards armed across a kernel block. That
//    pins O(1) nodes per waiter (benign) and never blocks other threads'
//    reclamation -- the property that makes HP, and not epoch-based
//    reclamation, the right default for *blocking* dual data structures
//    (see memory/epoch.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/annotations.hpp"
#include "support/config.hpp"

namespace ssq::mem {

class hazard_domain {
 public:
  static constexpr std::size_t slots_per_record = max_hazards_per_thread;

  hazard_domain();
  // Precondition: no thread is concurrently operating on structures using
  // this domain. Frees every pending retiree unconditionally.
  ~hazard_domain();

  hazard_domain(const hazard_domain &) = delete;
  hazard_domain &operator=(const hazard_domain &) = delete;

  // The process-wide default domain.
  static hazard_domain &global() noexcept;

  struct retired_node {
    void *ptr;
    void (*deleter)(void *);
  };

  // One thread's hazard slots + retired list. Internal, exposed for tests.
  struct record {
    std::atomic<const void *> slots[slots_per_record];
    std::atomic<bool> active{false};
    record *next = nullptr; // immutable once linked
    // Owner-thread-only state:
    std::uint32_t used_mask = 0;
    std::vector<retired_node> retired;
  };

  // RAII guard over one hazard slot of the calling thread.
  class hazard {
   public:
    explicit hazard(hazard_domain &d = global()) noexcept;
    ~hazard() noexcept;
    hazard(const hazard &) = delete;
    hazard &operator=(const hazard &) = delete;

    // Standard protect loop: read src, publish, re-validate. On return the
    // pointer (if non-null) cannot be freed until this slot changes.
    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      SSQ_MO_JUSTIFIED(
          "acquire suffices for the first guess: the seq_cst re-validation "
          "load below is what establishes the protect ordering");
      T *p = src.load(std::memory_order_acquire);
      for (;;) {
        set(p);
        T *q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    // Publish a pointer whose safety the caller has established by other
    // means (e.g. it was just validated against a still-protected parent).
    void set(const void *p) noexcept {
      slot_->store(p, std::memory_order_seq_cst);
    }

    void clear() noexcept {
      SSQ_MO_JUSTIFIED(
          "release: a scanner that reads null here synchronizes with our "
          "prior accesses to the node; no later access needs ordering");
      slot_->store(nullptr, std::memory_order_release);
    }

    const void *get() const noexcept {
      SSQ_MO_JUSTIFIED(
          "relaxed: owner-thread read of its own slot, no cross-thread "
          "ordering derived from the value");
      return slot_->load(std::memory_order_relaxed);
    }

   private:
    std::atomic<const void *> *slot_;
    record *rec_;
    unsigned idx_;
  };

  // Hand a node to the domain; `deleter(ptr)` runs once no hazard covers it.
  void retire(void *ptr, void (*deleter)(void *));

  // External hazard roots: shared atomics (e.g. transfer_queue's clean_me
  // pointer) whose current value must be treated as protected during scans.
  // Java's GC protects such references implicitly; here a structure
  // registers the root for its lifetime.
  void add_root(const std::atomic<void *> *root);
  void remove_root(const std::atomic<void *> *root);

  template <typename T>
  void retire(T *p) {
    retire(const_cast<void *>(static_cast<const void *>(p)),
           [](void *q) { delete static_cast<T *>(q); });
  }

  // Force a reclamation pass on the calling thread's retirees plus adopted
  // orphans. Returns how many nodes were freed.
  std::size_t scan();

  // Scan until no further progress (tests; nodes pinned by live hazards
  // survive).
  std::size_t drain();

  // Approximate count of not-yet-freed retirees across the domain.
  std::size_t approx_retired() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: monitoring counter, documented approximate");
    return retired_estimate_.load(std::memory_order_relaxed);
  }

  std::size_t record_count() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: scan-threshold heuristic, staleness benign");
    return nrecords_.load(std::memory_order_relaxed);
  }

  // Unique per construction; lets thread-local caches reject a different
  // domain that happens to be allocated at a reused address.
  std::uint64_t uid() const noexcept { return uid_; }

  // Per-thread record cache; defined in hazard.cpp, public so the
  // thread_local instance can name it.
  struct tl_cache;

 private:
  friend class hazard;

  record *acquire_record();          // this thread's record (cached)
  void release_record(record *rec);  // thread exit / cache eviction

  std::size_t scan_with(record *rec);

  const std::uint64_t uid_;
  std::atomic<record *> head_{nullptr};
  std::atomic<std::size_t> nrecords_{0};
  std::atomic<std::size_t> retired_estimate_{0};

  // Retirees inherited from exited threads, guarded by a plain mutex that is
  // only touched at thread exit and during scans.
  struct orphan_list;
  orphan_list *orphans_;

  struct root_list;
  root_list *roots_;
};

} // namespace ssq::mem
