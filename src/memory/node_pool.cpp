#include "memory/node_pool.hpp"

#include <algorithm>
#include <mutex>
#include <new>
#include <unordered_map>

#include "support/diagnostics.hpp"

namespace ssq::mem {

namespace {

std::size_t round_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t next_pool_uid() {
  static std::atomic<std::uint64_t> seq{1};
  return seq.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry. Two jobs, two mutexes (so pool construction under the class
// lock cannot self-deadlock on registration):
//   * live map      -- pool address -> uid, consulted before any cache
//                      eviction or magazine flush dereferences a pool that
//                      may have been destroyed (same pattern, and same
//                      reason, as hazard.cpp's domain registry);
//   * size classes  -- the global per-(size, align) pools handed out by
//                      global_for.
// The registry itself is heap-allocated and never destroyed: hazard scans
// running during static teardown may still free pooled nodes, and they must
// be able to find the owning pool. The global pools and their chunks stay
// reachable from here, so leak checkers report them as live, not leaked.
// ---------------------------------------------------------------------------

struct pool_registry {
  std::mutex live_mu;
  std::unordered_map<const node_pool *, std::uint64_t> live;

  struct klass {
    std::size_t size;
    std::size_t align;
    node_pool *pool;
  };
  std::mutex classes_mu;
  std::vector<klass> classes;
};

pool_registry &registry() {
  static pool_registry *r = new pool_registry; // immortal, see above
  return *r;
}

} // namespace

struct node_pool::orphanage {
  std::mutex mu;
  std::vector<void *> blocks;
};

// ---------------------------------------------------------------------------
// Per-thread magazine cache.
// ---------------------------------------------------------------------------

struct node_pool::tl_cache {
  struct entry {
    node_pool *pool;
    std::uint64_t uid;
    std::vector<void *> blocks; // the magazine: LIFO, pop_back/push_back
  };
  // A thread rarely touches more than a couple of pools; linear scan wins.
  std::vector<entry> entries;

  struct klass_ref {
    std::size_t size;
    std::size_t align;
    node_pool *pool; // global pools only: never destroyed while threads run
  };
  std::vector<klass_ref> klasses;

  entry &get(node_pool *p) {
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->pool == p) {
        if (it->uid == p->uid()) return *it;
        // Same address, different pool: the old one is gone; its blocks
        // were freed with its chunks.
        entries.erase(it);
        break;
      }
    }
    entries.push_back({p, p->uid(), {}});
    entries.back().blocks.reserve(p->magazine_cap());
    return entries.back();
  }

  const entry *find(const node_pool *p) const noexcept {
    for (const auto &e : entries)
      if (e.pool == p && e.uid == p->uid()) return &e;
    return nullptr;
  }

  // Thread exit: flush every magazine back into its (still live) pool so
  // the blocks are adoptable by other threads -- the orphan protocol.
  ~tl_cache() {
    auto &reg = registry();
    std::lock_guard<std::mutex> lk(reg.live_mu);
    for (auto &e : entries) {
      auto it = reg.live.find(e.pool);
      if (it == reg.live.end() || it->second != e.uid) continue;
      for (void *p : e.blocks) e.pool->deallocate_remote(p);
    }
  }
};

namespace {

// Thread-local cache access that stays safe through thread teardown. The
// slot itself is a trivially-destructible thread_local (never torn down, so
// reading it late is fine); the owner is a separate thread_local whose
// destructor flushes the cache and marks the slot dead. After that point
// try_cache() returns nullptr and callers fall back to the remote paths.
struct tl_slot {
  node_pool::tl_cache *cache;
  bool dead;
};
thread_local tl_slot g_slot; // trivial: zero-init, no registered destructor

struct tl_owner {
  ~tl_owner() {
    node_pool::tl_cache *c = g_slot.cache;
    g_slot.cache = nullptr;
    g_slot.dead = true;
    delete c;
  }
  void touch() noexcept {}
};
thread_local tl_owner g_owner;

node_pool::tl_cache *try_cache() {
  if (g_slot.dead) return nullptr;
  if (!g_slot.cache) {
    g_owner.touch(); // force construction so the flush destructor registers
    g_slot.cache = new node_pool::tl_cache;
  }
  return g_slot.cache;
}

} // namespace

// ---------------------------------------------------------------------------
// Pool lifecycle.
// ---------------------------------------------------------------------------

node_pool::node_pool(const config &c)
    : stride_(round_up(std::max(c.block_size, sizeof(chunk)),
                       std::max(c.block_align, sizeof(void *)))),
      align_(std::max(c.block_align, sizeof(void *))),
      magazine_cap_(std::max<std::size_t>(c.magazine_cap, 4)),
      chunk_blocks_(std::max<std::size_t>(c.chunk_blocks, 1)),
      uid_(next_pool_uid()),
      ring_mask_(pow2_at_least(std::max<std::size_t>(c.ring_cap, 2)) - 1),
      ring_(new ring_cell[ring_mask_ + 1]), orphans_(new orphanage) {
  for (std::size_t i = 0; i <= ring_mask_; ++i)
    ring_[i].seq.store(i, std::memory_order_relaxed);
  auto &reg = registry();
  std::lock_guard<std::mutex> lk(reg.live_mu);
  reg.live.emplace(this, uid_);
}

node_pool::~node_pool() {
  {
    auto &reg = registry();
    std::lock_guard<std::mutex> lk(reg.live_mu);
    reg.live.erase(this);
  }
  chunk *c = chunks_.load(std::memory_order_acquire);
  while (c) {
    chunk *next = c->next;
    ::operator delete(static_cast<void *>(c), std::align_val_t(align_));
    c = next;
  }
  delete orphans_;
}

// ---------------------------------------------------------------------------
// The bounded MPMC overflow ring (Vyukov sequence scheme).
// ---------------------------------------------------------------------------

bool node_pool::ring_push(void *p) noexcept {
  std::size_t pos = ring_tail_.load(std::memory_order_relaxed);
  for (;;) {
    ring_cell &c = ring_[pos & ring_mask_];
    std::size_t seq = c.seq.load(std::memory_order_acquire);
    auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (ring_tail_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
        c.ptr = p;
        c.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
    } else if (dif < 0) {
      return false; // full
    } else {
      pos = ring_tail_.load(std::memory_order_relaxed);
    }
  }
}

void *node_pool::ring_pop() noexcept {
  std::size_t pos = ring_head_.load(std::memory_order_relaxed);
  for (;;) {
    ring_cell &c = ring_[pos & ring_mask_];
    std::size_t seq = c.seq.load(std::memory_order_acquire);
    auto dif = static_cast<std::intptr_t>(seq) -
               static_cast<std::intptr_t>(pos + 1);
    if (dif == 0) {
      if (ring_head_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
        void *p = c.ptr;
        c.seq.store(pos + ring_mask_ + 1, std::memory_order_release);
        return p;
      }
    } else if (dif < 0) {
      return nullptr; // empty
    } else {
      pos = ring_head_.load(std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation paths.
// ---------------------------------------------------------------------------

void *node_pool::refill(std::vector<void *> *mag) noexcept {
  void *first = ring_pop();
  if (first) {
    if (mag) {
      // Batch: one magazine miss amortizes up to half a magazine of ring
      // traffic.
      for (std::size_t i = 1; i < magazine_cap_ / 2; ++i) {
        void *p = ring_pop();
        if (!p) break;
        mag->push_back(p);
      }
    }
    return first;
  }
  // Adopt orphans (exited threads' magazines, ring-overflow spill).
  std::lock_guard<std::mutex> lk(orphans_->mu);
  auto &ob = orphans_->blocks;
  if (ob.empty()) return nullptr;
  first = ob.back();
  ob.pop_back();
  if (mag) {
    std::size_t take = std::min(ob.size(), magazine_cap_ / 2);
    for (std::size_t i = 0; i < take; ++i) {
      mag->push_back(ob.back());
      ob.pop_back();
    }
  }
  return first;
}

void *node_pool::carve_chunk(std::vector<void *> *mag) {
  char *raw = static_cast<char *>(
      ::operator new(stride_ * (chunk_blocks_ + 1), std::align_val_t(align_)));
  // The header occupies one full stride so every block keeps the alignment.
  auto *c = ::new (raw) chunk{nullptr};
  chunk *h = chunks_.load(std::memory_order_acquire);
  do {
    c->next = h;
  } while (!chunks_.compare_exchange_weak(h, c, std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  nchunks_.fetch_add(1, std::memory_order_relaxed);

  for (std::size_t i = 1; i < chunk_blocks_; ++i) {
    void *b = raw + stride_ * i;
    if (mag && mag->size() < magazine_cap_)
      mag->push_back(b);
    else
      deallocate_remote(b);
  }
  return raw + stride_ * chunk_blocks_;
}

void *node_pool::allocate() {
  tl_cache *c = try_cache();
  if (c) {
    tl_cache::entry &e = c->get(this);
    if (!e.blocks.empty()) {
      void *p = e.blocks.back(); // LIFO: the cache-warmest block
      e.blocks.pop_back();
      diag::bump(diag::id::pool_recycle);
      return p;
    }
    if (void *p = refill(&e.blocks)) {
      diag::bump(diag::id::pool_recycle);
      return p;
    }
    diag::bump(diag::id::pool_fresh);
    return carve_chunk(&e.blocks);
  }
  // Thread-teardown fallback: no magazine to fill.
  if (void *p = refill(nullptr)) {
    diag::bump(diag::id::pool_recycle);
    return p;
  }
  diag::bump(diag::id::pool_fresh);
  return carve_chunk(nullptr);
}

void node_pool::deallocate(void *p) noexcept {
  tl_cache *c = try_cache();
  if (!c) {
    deallocate_remote(p);
    return;
  }
  tl_cache::entry &e = c->get(this);
  if (e.blocks.size() >= magazine_cap_) {
    // Spill half to the shared side so blocks freed here can feed threads
    // that only allocate.
    for (std::size_t i = 0; i < magazine_cap_ / 2; ++i) {
      deallocate_remote(e.blocks.back());
      e.blocks.pop_back();
    }
  }
  e.blocks.push_back(p);
}

void node_pool::deallocate_remote(void *p) noexcept {
  if (ring_push(p)) return;
  std::lock_guard<std::mutex> lk(orphans_->mu);
  orphans_->blocks.push_back(p);
}

// ---------------------------------------------------------------------------
// Observers.
// ---------------------------------------------------------------------------

std::size_t node_pool::ring_size() const noexcept {
  std::size_t t = ring_tail_.load(std::memory_order_acquire);
  std::size_t h = ring_head_.load(std::memory_order_acquire);
  return t >= h ? t - h : 0;
}

std::size_t node_pool::orphan_count() const {
  std::lock_guard<std::mutex> lk(orphans_->mu);
  return orphans_->blocks.size();
}

std::size_t node_pool::magazine_size() const noexcept {
  tl_cache *c = try_cache();
  if (!c) return 0;
  const tl_cache::entry *e = c->find(this);
  return e ? e->blocks.size() : 0;
}

// ---------------------------------------------------------------------------
// Global size-class pools.
// ---------------------------------------------------------------------------

node_pool &node_pool::global_for(std::size_t size, std::size_t align) {
  if (tl_cache *c = try_cache()) {
    for (const auto &k : c->klasses)
      if (k.size == size && k.align == align) return *k.pool;
  }
  auto &reg = registry();
  node_pool *pool = nullptr;
  {
    std::lock_guard<std::mutex> lk(reg.classes_mu);
    for (const auto &k : reg.classes)
      if (k.size == size && k.align == align) {
        pool = k.pool;
        break;
      }
    if (!pool) {
      config cfg;
      cfg.block_size = size;
      cfg.block_align = align;
      if (size >= 1024) {
        // Large-block class (waiter-cell segments are ~4 KiB each). The
        // default caps are tuned for 64-128 byte qnodes; holding 64
        // magazine slots plus a 1024-deep ring of 4 KiB blocks would pin
        // megabytes per thread. Shrink every tier and carve small chunks.
        cfg.magazine_cap = 8;
        cfg.ring_cap = 64;
        cfg.chunk_blocks = 4;
      }
      pool = new node_pool(cfg); // immortal; reachable from the registry
      reg.classes.push_back({size, align, pool});
    }
  }
  if (tl_cache *c = try_cache()) c->klasses.push_back({size, align, pool});
  return *pool;
}

void node_pool::deallocate_global(std::size_t size, std::size_t align,
                                  void *p) noexcept {
  node_pool &pool = global_for(size, align);
  if (try_cache())
    pool.deallocate(p);
  else
    pool.deallocate_remote(p);
}

} // namespace ssq::mem
