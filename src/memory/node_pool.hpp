// Thread-local node pools: fixed-size-block recycling for dual-structure
// nodes.
//
// Why this exists: every put/take allocates one qnode/snode and every
// hazard-pointer scan frees a batch of them -- traffic the paper's Java
// original never paid for, because HotSpot's TLAB bump allocation and the
// collector made node turnover nearly free. This pool restores that economy
// for the C++ port: in steady state a transfer's node comes from a
// per-thread LIFO magazine (the block most recently freed on this thread,
// still warm in cache) and goes back to one, with no global-heap call on
// the hot path.
//
// Architecture (one pool per block size class):
//
//   * per-thread magazines -- a LIFO array of free blocks, no
//     synchronization. Allocation pops; deallocation pushes; half the
//     magazine spills to the shared side when it fills.
//   * a bounded global overflow ring -- a fixed-capacity MPMC ring buffer
//     (Vyukov-style sequence numbers) through which blocks retired on one
//     thread reach another's magazine. Bounded so a producer/consumer role
//     imbalance cannot grow an unbounded shared freelist.
//   * an orphan list -- the mutex-guarded fallback of last resort, written
//     when the ring is full and at thread exit (a dying thread flushes its
//     magazines here, mirroring hazard_domain's orphan protocol), adopted
//     in bulk by the next allocation miss.
//   * chunks -- blocks are carved `chunk_blocks` at a time from
//     cache-line-aligned slabs, so adjacent nodes handed to different
//     thread pairs do not false-share their futex/park words. Chunk memory
//     is owned by the pool and freed only at pool destruction; individual
//     blocks are never returned to the heap, which is what makes a late
//     "free" into an already-destroyed pool a safe no-op (see
//     deallocate_global).
//
// Interaction with hazard pointers: a pooled node is returned to the pool
// by the *reclaimer's deleter*, i.e. only after a hazard scan has proven no
// thread still references it -- exactly the point at which the heap
// allocator would have been allowed to reuse the address. Pooling therefore
// introduces no new ABA exposure; it only shortens the address-reuse window
// (see docs/memory_reclamation.md §7).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/config.hpp"

namespace ssq::mem {

class node_pool {
 public:
  struct config {
    std::size_t block_size;
    std::size_t block_align = cacheline_size;
    std::size_t magazine_cap = 64; // per-thread LIFO depth
    std::size_t ring_cap = 1024;   // overflow ring (rounded up to 2^k)
    std::size_t chunk_blocks = 32; // blocks carved per slab
  };

  explicit node_pool(const config &c);
  // Precondition (as for hazard_domain): no thread concurrently uses this
  // pool. Frees every chunk wholesale, including blocks still sitting in
  // exited threads' flushed magazines.
  ~node_pool();

  node_pool(const node_pool &) = delete;
  node_pool &operator=(const node_pool &) = delete;

  // Pop from this thread's magazine; refill from the ring, then the orphan
  // list, then a freshly carved chunk.
  void *allocate();

  // Push onto this thread's magazine, spilling half to the shared side when
  // full. Requires a live calling thread (uses thread-local state).
  void deallocate(void *p) noexcept;

  // Return a block without touching thread-local state: overflow ring,
  // else orphan list. Safe from any context, including thread teardown.
  void deallocate_remote(void *p) noexcept;

  // ------------------------------------------------------------ observers
  std::size_t stride() const noexcept { return stride_; }
  std::size_t block_align() const noexcept { return align_; }
  std::size_t magazine_cap() const noexcept { return magazine_cap_; }
  std::size_t chunk_count() const noexcept {
    return nchunks_.load(std::memory_order_relaxed);
  }
  std::size_t ring_capacity() const noexcept { return ring_mask_ + 1; }
  std::size_t ring_size() const noexcept; // approximate under concurrency
  std::size_t orphan_count() const;       // takes the orphan mutex
  // Blocks currently cached in the calling thread's magazine for this pool.
  std::size_t magazine_size() const noexcept;
  std::uint64_t uid() const noexcept { return uid_; }

  // The process-wide pool for a (size, align) class. Created on first use
  // and kept alive through static teardown (late hazard-scan deleters may
  // still free into it); reachable from the registry, so leak checkers see
  // it as live memory, not a leak.
  static node_pool &global_for(std::size_t size, std::size_t align);

  // Free a block into the global pool of its size class. The slow path a
  // reclaimer deleter can always take: works even when the calling thread's
  // pool cache is already torn down.
  static void deallocate_global(std::size_t size, std::size_t align,
                                void *p) noexcept;

  // Per-thread magazine cache; defined in node_pool.cpp, public so the
  // thread_local instance can name it.
  struct tl_cache;

 private:
  friend struct tl_cache;

  struct chunk {
    chunk *next;
  };
  struct ring_cell {
    std::atomic<std::size_t> seq{0};
    void *ptr = nullptr;
  };
  struct orphanage; // mutex + vector, defined in node_pool.cpp

  bool ring_push(void *p) noexcept;
  void *ring_pop() noexcept;
  // Allocate a slab, link it, return one block; the rest go to `mag` (or
  // the shared side when called without a magazine).
  void *carve_chunk(std::vector<void *> *mag);
  // Ring first, then orphans in bulk; nullptr on miss.
  void *refill(std::vector<void *> *mag) noexcept;

  const std::size_t stride_;
  const std::size_t align_;
  const std::size_t magazine_cap_;
  const std::size_t chunk_blocks_;
  const std::uint64_t uid_;

  const std::size_t ring_mask_;
  std::unique_ptr<ring_cell[]> ring_;
  alignas(cacheline_size) std::atomic<std::size_t> ring_head_{0};
  alignas(cacheline_size) std::atomic<std::size_t> ring_tail_{0};

  alignas(cacheline_size) std::atomic<chunk *> chunks_{nullptr};
  std::atomic<std::size_t> nchunks_{0};
  orphanage *orphans_;
};

} // namespace ssq::mem
