// Reclaimer policies and the two-party node lifecycle protocol.
//
// Every dual-structure template takes a Reclaimer policy parameter:
//
//   * pooled_hp_reclaimer -- hazard pointers + thread-local node pools (the
//                       default: nodes recycle through memory/node_pool.hpp
//                       instead of the global heap, restoring the allocation
//                       economy the paper's Java original got from TLABs)
//   * hp_reclaimer    -- hazard pointers over the global heap (safe with
//                       parked waiters, see memory/hazard.hpp); the
//                       heap-allocation baseline bench/ablation_pooling
//                       prices the pools against
//   * deferred_reclaimer / pooled_deferred_reclaimer -- retire is a
//                       lock-free push onto a tombstone list freed only at
//                       reclaimer destruction. Models "GC for free" with
//                       zero per-scan cost; used by bench/ablation_reclaim
//                       to price the safety of HP.
//
// A policy provides:
//   struct slot {                         // per-pointer protection guard
//     explicit slot(Reclaimer&);
//     T* protect(const std::atomic<T*>&); // read + publish + validate
//     void set(T*);                       // publish a pre-validated pointer
//     void clear();
//   };
//   template <class Node> Node* create(Args&&...); // allocate + construct
//   template <class Node> void destroy(Node*);     // free a node that was
//                                                  // never linked (or is
//                                                  // being torn down
//                                                  // single-threaded)
//   template <class Node> void retire(Node*);      // free once unreferenced
//   void quiesce();                           // tests: drain what's drainable
//
// create/destroy/retire are the single seam through which nodes enter and
// leave a structure; the structures never call new/delete on nodes
// directly, so swapping the allocation backend (heap vs. pool) is purely a
// policy choice and the leak/deferred ablation compiles against both.
//
// -----------------------------------------------------------------------
// Node lifecycle: waiters and unlinkers race to retire.
//
// A waiter's own node may be unlinked from the structure (by a fulfiller or
// helper) while the waiter is still reading its fields -- the waiter holds no
// hazard on its *own* node. life_cycle arbitrates: the node is retired by
// whichever of {owner-release, unlink} happens second, and double-unlink
// races (possible under stack helping) retire exactly once.
// -----------------------------------------------------------------------
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "memory/hazard.hpp"
#include "memory/node_pool.hpp"
#include "support/annotations.hpp"
#include "support/diagnostics.hpp"

namespace ssq::mem {

class life_cycle {
  enum : std::uint8_t { unlinked_bit = 1, released_bit = 2 };

 public:
  // Node removed from the structure. Returns true iff the caller must
  // retire the node (i.e. this is the first unlink and the owner is done).
  bool mark_unlinked() noexcept {
    SSQ_MO_JUSTIFIED(
        "acq_rel: release publishes the unlinker's writes to whoever "
        "retires; acquire sees the owner's final writes if released_bit "
        "is already set");
    auto old = bits_.fetch_or(unlinked_bit, std::memory_order_acq_rel);
    if (old & unlinked_bit) return false; // someone else unlinked first
    return (old & released_bit) != 0;
  }

  // Owner (the waiter that created the node) will never touch it again.
  // Returns true iff the caller must retire the node.
  bool mark_released() noexcept {
    SSQ_MO_JUSTIFIED(
        "acq_rel: mirror of mark_unlinked -- the second of the two "
        "fetch_ors must observe the first party's writes before retiring");
    auto old = bits_.fetch_or(released_bit, std::memory_order_acq_rel);
    SSQ_ASSERT((old & released_bit) == 0, "double owner release");
    return (old & unlinked_bit) != 0;
  }

  // For nodes with no waiting owner (dummies, async producers' nodes):
  // retire responsibility falls entirely on the unlinker.
  void preset_released() noexcept {
    SSQ_MO_JUSTIFIED(
        "relaxed: runs before the node is published (no concurrent reader); "
        "the publishing CAS provides the release fence");
    bits_.store(released_bit, std::memory_order_relaxed);
  }

  bool is_unlinked() const noexcept {
    SSQ_MO_JUSTIFIED(
        "acquire: pairs with mark_unlinked's release half so a reader that "
        "sees the bit also sees the unlinker's preceding writes");
    return bits_.load(std::memory_order_acquire) & unlinked_bit;
  }

 private:
  std::atomic<std::uint8_t> bits_{0};
};

// ---------------------------------------------------------------------------
// Node allocation policies: where dual-structure nodes come from.
// ---------------------------------------------------------------------------

// Global heap: what the seed implementation always did.
struct heap_node_alloc {
  template <typename Node, typename... Args>
  static Node *create(Args &&...args) {
    return new Node(std::forward<Args>(args)...);
  }

  template <typename Node>
  static void destroy(Node *n) noexcept {
    delete n;
  }

  template <typename Node>
  static auto deleter() noexcept -> void (*)(void *) {
    return [](void *p) { delete static_cast<Node *>(p); };
  }
};

// Thread-local node pools (memory/node_pool.hpp). Blocks are cache-line
// aligned -- adjacent nodes handed to different thread pairs never share a
// line for their futex/park words -- and recycle through per-thread
// magazines instead of the heap.
struct pooled_node_alloc {
  template <typename Node>
  static constexpr std::size_t block_align() noexcept {
    return alignof(Node) > cacheline_size ? alignof(Node) : cacheline_size;
  }

  template <typename Node>
  static node_pool &pool() {
    // Trivial destructibility lets a pool free its chunks wholesale at
    // destruction without running per-node destructors on blocks still
    // parked in magazines.
    static_assert(std::is_trivially_destructible_v<Node>,
                  "pooled nodes must be trivially destructible");
    return node_pool::global_for(sizeof(Node), block_align<Node>());
  }

  template <typename Node, typename... Args>
  static Node *create(Args &&...args) {
    return ::new (pool<Node>().allocate()) Node(std::forward<Args>(args)...);
  }

  template <typename Node>
  static void destroy(Node *n) noexcept {
    pool<Node>().deallocate(n);
  }

  template <typename Node>
  static auto deleter() noexcept -> void (*)(void *) {
    // Runs inside hazard scans -- possibly during static teardown, after
    // this thread's pool cache is gone; deallocate_global handles both.
    return [](void *p) {
      node_pool::deallocate_global(sizeof(Node), block_align<Node>(), p);
    };
  }
};

// ---------------------------------------------------------------------------

template <typename Alloc>
struct basic_hp_reclaimer {
  using allocator = Alloc;

  hazard_domain *dom = &hazard_domain::global();

  class slot {
   public:
    explicit slot(basic_hp_reclaimer &r) noexcept : h_(*r.dom) {}

    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      return h_.protect(src);
    }
    template <typename T>
    void set(T *p) noexcept {
      h_.set(p);
    }
    void clear() noexcept { h_.clear(); }

   private:
    hazard_domain::hazard h_;
  };

  template <typename Node, typename... Args>
  Node *create(Args &&...args) {
    diag::bump(diag::id::node_alloc);
    return Alloc::template create<Node>(std::forward<Args>(args)...);
  }

  template <typename Node>
  void destroy(Node *n) noexcept {
    diag::bump(diag::id::node_free);
    Alloc::destroy(n);
  }

  template <typename Node>
  void retire(Node *n) {
    // The retired_node deleter seam is reused unchanged: the scan logic
    // neither knows nor cares whether the deleter frees to the heap or
    // recycles into a pool.
    dom->retire(const_cast<void *>(static_cast<const void *>(n)),
                Alloc::template deleter<Node>());
  }

  // Whole-segment retirement (core/segment_queue.hpp): identical to retire
  // except for the accounting -- a segment is one reclaimer transaction
  // covering 64 cells, and the seg_retire counter is what the ablation
  // bench reads to show the 64:1 retire-traffic reduction.
  template <typename Node>
  void retire_segment(Node *n) {
    diag::bump(diag::id::seg_retire);
    retire(n);
  }

  void register_root(const std::atomic<void *> *root) { dom->add_root(root); }
  void unregister_root(const std::atomic<void *> *root) {
    dom->remove_root(root);
  }

  void quiesce() { dom->drain(); }
};

using hp_reclaimer = basic_hp_reclaimer<heap_node_alloc>;
using pooled_hp_reclaimer = basic_hp_reclaimer<pooled_node_alloc>;

// ---------------------------------------------------------------------------

template <typename Alloc>
struct basic_deferred_reclaimer {
  using allocator = Alloc;

  basic_deferred_reclaimer() = default;
  basic_deferred_reclaimer(const basic_deferred_reclaimer &) = delete;
  basic_deferred_reclaimer &operator=(const basic_deferred_reclaimer &) =
      delete;

  // Movable so structures can take a reclaimer by value. Move is only
  // meaningful before concurrent use begins.
  basic_deferred_reclaimer(basic_deferred_reclaimer &&other) noexcept
      : head_(other.head_.exchange(nullptr, std::memory_order_acq_rel)) {}

  ~basic_deferred_reclaimer() {
    tombstone *t = head_.load(std::memory_order_acquire);
    while (t) {
      tombstone *next = t->next;
      t->deleter(t->ptr);
      delete t;
      t = next;
    }
  }

  class slot {
   public:
    explicit slot(basic_deferred_reclaimer &) noexcept {}

    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      SSQ_MO_JUSTIFIED(
          "acquire: deferred reclamation never frees during operation, so "
          "protect only needs to see the node's initialization");
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void set(T *) noexcept {}
    void clear() noexcept {}
  };

  template <typename Node, typename... Args>
  Node *create(Args &&...args) {
    diag::bump(diag::id::node_alloc);
    return Alloc::template create<Node>(std::forward<Args>(args)...);
  }

  template <typename Node>
  void destroy(Node *n) noexcept {
    diag::bump(diag::id::node_free);
    Alloc::destroy(n);
  }

  template <typename Node>
  void retire(Node *n) {
    diag::bump(diag::id::node_retire);
    auto *t = new tombstone{n, Alloc::template deleter<Node>(), nullptr};
    SSQ_MO_JUSTIFIED("acquire: must see the pushed tombstone's next field");
    tombstone *h = head_.load(std::memory_order_acquire);
    SSQ_MO_JUSTIFIED(
        "acq_rel on success publishes t->next; acquire on failure re-reads "
        "the list head consistently");
    do {
      t->next = h;
    } while (!head_.compare_exchange_weak(h, t, std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  }

  // Segment seam, mirroring basic_hp_reclaimer::retire_segment.
  template <typename Node>
  void retire_segment(Node *n) {
    diag::bump(diag::id::seg_retire);
    retire(n);
  }

  void register_root(const std::atomic<void *> *) noexcept {}
  void unregister_root(const std::atomic<void *> *) noexcept {}

  void quiesce() noexcept {}

 private:
  struct tombstone {
    void *ptr;
    void (*deleter)(void *);
    tombstone *next;
  };
  std::atomic<tombstone *> head_{nullptr};
};

using deferred_reclaimer = basic_deferred_reclaimer<heap_node_alloc>;
using pooled_deferred_reclaimer = basic_deferred_reclaimer<pooled_node_alloc>;

} // namespace ssq::mem
