// Reclaimer policies and the two-party node lifecycle protocol.
//
// Every dual-structure template takes a Reclaimer policy parameter:
//
//   * hp_reclaimer   -- hazard pointers (the default; safe with parked
//                       waiters, see memory/hazard.hpp)
//   * deferred_reclaimer -- retire is a lock-free push onto a tombstone
//                       list freed only at reclaimer destruction. Models
//                       "GC for free" with zero per-scan cost; used by
//                       bench/ablation_reclaim to price the safety of HP.
//
// A policy provides:
//   struct slot {                         // per-pointer protection guard
//     explicit slot(Reclaimer&);
//     T* protect(const std::atomic<T*>&); // read + publish + validate
//     void set(T*);                       // publish a pre-validated pointer
//     void clear();
//   };
//   template <class Node> void retire(Node*); // free once unreferenced
//   void quiesce();                           // tests: drain what's drainable
//
// -----------------------------------------------------------------------
// Node lifecycle: waiters and unlinkers race to retire.
//
// A waiter's own node may be unlinked from the structure (by a fulfiller or
// helper) while the waiter is still reading its fields -- the waiter holds no
// hazard on its *own* node. life_cycle arbitrates: the node is retired by
// whichever of {owner-release, unlink} happens second, and double-unlink
// races (possible under stack helping) retire exactly once.
// -----------------------------------------------------------------------
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "memory/hazard.hpp"
#include "support/diagnostics.hpp"

namespace ssq::mem {

class life_cycle {
  enum : std::uint8_t { unlinked_bit = 1, released_bit = 2 };

 public:
  // Node removed from the structure. Returns true iff the caller must
  // retire the node (i.e. this is the first unlink and the owner is done).
  bool mark_unlinked() noexcept {
    auto old = bits_.fetch_or(unlinked_bit, std::memory_order_acq_rel);
    if (old & unlinked_bit) return false; // someone else unlinked first
    return (old & released_bit) != 0;
  }

  // Owner (the waiter that created the node) will never touch it again.
  // Returns true iff the caller must retire the node.
  bool mark_released() noexcept {
    auto old = bits_.fetch_or(released_bit, std::memory_order_acq_rel);
    SSQ_ASSERT((old & released_bit) == 0, "double owner release");
    return (old & unlinked_bit) != 0;
  }

  // For nodes with no waiting owner (dummies, async producers' nodes):
  // retire responsibility falls entirely on the unlinker.
  void preset_released() noexcept {
    bits_.store(released_bit, std::memory_order_relaxed);
  }

  bool is_unlinked() const noexcept {
    return bits_.load(std::memory_order_acquire) & unlinked_bit;
  }

 private:
  std::atomic<std::uint8_t> bits_{0};
};

// ---------------------------------------------------------------------------

struct hp_reclaimer {
  hazard_domain *dom = &hazard_domain::global();

  class slot {
   public:
    explicit slot(hp_reclaimer &r) noexcept : h_(*r.dom) {}

    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      return h_.protect(src);
    }
    template <typename T>
    void set(T *p) noexcept {
      h_.set(p);
    }
    void clear() noexcept { h_.clear(); }

   private:
    hazard_domain::hazard h_;
  };

  template <typename Node>
  void retire(Node *n) {
    dom->retire(n);
  }

  void register_root(const std::atomic<void *> *root) { dom->add_root(root); }
  void unregister_root(const std::atomic<void *> *root) {
    dom->remove_root(root);
  }

  void quiesce() { dom->drain(); }
};

// ---------------------------------------------------------------------------

struct deferred_reclaimer {
  deferred_reclaimer() = default;
  deferred_reclaimer(const deferred_reclaimer &) = delete;
  deferred_reclaimer &operator=(const deferred_reclaimer &) = delete;

  // Movable so structures can take a reclaimer by value. Move is only
  // meaningful before concurrent use begins.
  deferred_reclaimer(deferred_reclaimer &&other) noexcept
      : head_(other.head_.exchange(nullptr, std::memory_order_acq_rel)) {}

  ~deferred_reclaimer() {
    tombstone *t = head_.load(std::memory_order_acquire);
    while (t) {
      tombstone *next = t->next;
      t->deleter(t->ptr);
      delete t;
      t = next;
    }
  }

  class slot {
   public:
    explicit slot(deferred_reclaimer &) noexcept {}

    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      return src.load(std::memory_order_acquire);
    }
    template <typename T>
    void set(T *) noexcept {}
    void clear() noexcept {}
  };

  template <typename Node>
  void retire(Node *n) {
    diag::bump(diag::id::node_retire);
    auto *t = new tombstone{n, [](void *p) { delete static_cast<Node *>(p); },
                            nullptr};
    tombstone *h = head_.load(std::memory_order_acquire);
    do {
      t->next = h;
    } while (!head_.compare_exchange_weak(h, t, std::memory_order_acq_rel,
                                          std::memory_order_acquire));
  }

  void register_root(const std::atomic<void *> *) noexcept {}
  void unregister_root(const std::atomic<void *> *) noexcept {}

  void quiesce() noexcept {}

 private:
  struct tombstone {
    void *ptr;
    void (*deleter)(void *);
    tombstone *next;
  };
  std::atomic<tombstone *> head_{nullptr};
};

} // namespace ssq::mem
