// Umbrella header: the whole public surface in one include.
//
//   #include "ssq.hpp"
//
// Fine-grained headers remain the recommended includes for build-time-
// sensitive projects; see docs/api.md for the map.
#pragma once

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "core/channel.hpp"
#include "core/dual_queue_basic.hpp"
#include "core/dual_stack_basic.hpp"
#include "core/eliminating_sq.hpp"
#include "core/exchanger.hpp"
#include "core/linked_transfer_queue.hpp"
#include "core/select.hpp"
#include "core/synchronous_queue.hpp"
#include "executor/pools.hpp"
#include "executor/thread_pool_executor.hpp"
#include "substrate/bounded_buffer.hpp"
#include "substrate/dual_ds.hpp"
#include "substrate/eb_stack.hpp"
#include "substrate/ms_queue.hpp"
#include "substrate/treiber_stack.hpp"
#include "sync/queue_locks.hpp"
