// Classic bounded buffer: the *asymmetric* concurrent queue the paper's
// introduction contrasts synchronous queues against (§1: "producers can
// 'run ahead' of consumers, but consumers cannot 'run ahead' of
// producers").
//
// Deliberately the textbook monitor implementation (one mutex, two
// condition variables, ring storage). It exists as (a) a behavioural
// contrast in tests and bench/ablation_buffering, and (b) a baseline
// channel for the executor examples.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/config.hpp"
#include "support/time.hpp"
#include "sync/interrupt.hpp"

namespace ssq {

template <typename T>
class bounded_buffer {
 public:
  explicit bounded_buffer(std::size_t capacity) : cap_(capacity) {
    SSQ_ASSERT(capacity >= 1, "capacity must be positive");
    ring_.resize(capacity);
  }

  // Blocks while full.
  void put(T v) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return size_ < cap_; });
    emplace_locked(std::move(v));
    not_empty_.notify_one();
  }

  // Blocks while empty.
  T take() {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return size_ > 0; });
    T v = remove_locked();
    not_full_.notify_one();
    return v;
  }

  // Timed / non-blocking variants (deadline::expired() = try).
  bool offer(T v, deadline dl = deadline::expired(),
             sync::interrupt_token *tok = nullptr) {
    return try_put_ref(v, dl, tok);
  }

  std::optional<T> poll(deadline dl = deadline::expired(),
                        sync::interrupt_token *tok = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!wait_until(lk, not_empty_, dl, tok, [&] { return size_ > 0; }))
      return std::nullopt;
    T v = remove_locked();
    not_full_.notify_one();
    return v;
  }

  // Executor hook: hand the value back on failure.
  bool try_put_ref(T &v, deadline dl = deadline::expired(),
                   sync::interrupt_token *tok = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!wait_until(lk, not_full_, dl, tok, [&] { return size_ < cap_; }))
      return false;
    emplace_locked(std::move(v));
    not_empty_.notify_one();
    return true;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return size_;
  }
  std::size_t capacity() const noexcept { return cap_; }

 private:
  void emplace_locked(T v) {
    ring_[tail_] = std::move(v);
    tail_ = (tail_ + 1) % cap_;
    ++size_;
  }

  T remove_locked() {
    T v = std::move(*ring_[head_]);
    ring_[head_].reset();
    head_ = (head_ + 1) % cap_;
    --size_;
    return v;
  }

  // Condvar wait honoring both the caller's deadline and (coarsely) the
  // interrupt token.
  template <typename Pred>
  bool wait_until(std::unique_lock<std::mutex> &lk,
                  std::condition_variable &cv, deadline dl,
                  sync::interrupt_token *tok, Pred ready) {
    for (;;) {
      if (ready()) return true;
      if (tok && tok->interrupted()) return false;
      if (dl == deadline::expired() || dl.expired_now()) return false;
      deadline chunk = dl;
      if (tok) {
        deadline q = deadline::in(sync::interrupt_token::park_quantum());
        if (q.when() < dl.when()) chunk = q;
      }
      if (chunk.is_unbounded()) {
        cv.wait(lk);
      } else {
        cv.wait_until(lk, chunk.when());
      }
    }
  }

  const std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::optional<T>> ring_;
  std::size_t head_ = 0, tail_ = 0, size_ = 0;
};

} // namespace ssq
