// The non-synchronous dual data structures of Scherer & Scott (DISC 2004) --
// the immediate ancestors of the paper's algorithms (§3.3: "our previous
// nonblocking dual queue and dual stack algorithms").
//
// In these, consumers wait (a dequeue on an empty structure installs a
// reservation), but producers never do: an enqueue either fulfills the
// oldest/topmost reservation or deposits data and returns. That is exactly
// the synchronous transfer cores running producers in wait_kind::async, so
// these wrappers share all of their machinery -- which is also the paper's
// own observation, made in the other direction ("the nonsynchronous dual
// data structures already block when a consumer arrives before a producer;
// our challenge is to arrange for producers to block ... as well").
#pragma once

#include <optional>
#include <utility>

#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "core/wait_kind.hpp"
#include "support/codec.hpp"

namespace ssq {

// FIFO dual queue: dequeue requests are served in arrival order.
template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class dual_queue_ds {
  using codec = item_codec<T>;

 public:
  dual_queue_ds() { core_.set_token_disposer(&dispose_token); }

  // Never blocks.
  void enqueue(T v) {
    core_.xfer(codec::encode(std::move(v)), true, wait_kind::async);
  }

  // Blocks until data is available (the "demand" form of the dual method).
  T dequeue() {
    item_token r = core_.xfer(empty_token, false, wait_kind::sync);
    return codec::decode_consume(r);
  }

  // The totalized form: fails immediately when no data is present.
  std::optional<T> try_dequeue() {
    item_token r = core_.xfer(empty_token, false, wait_kind::now);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  std::optional<T> try_dequeue(deadline dl) {
    item_token r = core_.xfer(empty_token, false, wait_kind::timed, dl);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  bool is_empty() const noexcept { return core_.is_empty(); }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }
  transfer_queue<Reclaimer> core_;
};

// LIFO dual stack: a pop request is served by the next push.
template <typename T, typename Reclaimer = mem::pooled_hp_reclaimer>
class dual_stack_ds {
  using codec = item_codec<T>;

 public:
  dual_stack_ds() { core_.set_token_disposer(&dispose_token); }

  void push(T v) {
    core_.xfer(codec::encode(std::move(v)), true, wait_kind::async);
  }

  T pop() {
    item_token r = core_.xfer(empty_token, false, wait_kind::sync);
    return codec::decode_consume(r);
  }

  std::optional<T> try_pop() {
    item_token r = core_.xfer(empty_token, false, wait_kind::now);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  std::optional<T> try_pop(deadline dl) {
    item_token r = core_.xfer(empty_token, false, wait_kind::timed, dl);
    if (r == empty_token) return std::nullopt;
    return codec::decode_consume(r);
  }

  bool is_empty() const noexcept { return core_.is_empty(); }

 private:
  static void dispose_token(item_token t) { codec::dispose(t); }
  transfer_stack<Reclaimer> core_;
};

} // namespace ssq
