// Elimination-backoff stack (Hendler, Shavit & Yerushalmi, SPAA 2004 --
// the paper's ref 4, cited in §5 as the stack-world success story for the
// elimination technique the authors consider for synchronous queues).
//
// A Treiber stack whose contention path diverts to a collision arena: a
// push and a pop that meet there cancel out ("a concurrent push and pop on
// a stack ... collectively effect no change"), which is linearizable as the
// push immediately followed by the pop. Under low contention the arena is
// never touched; under high contention it turns the head-CAS hot spot into
// parallel throughput.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "core/elimination_arena.hpp"
#include "memory/epoch.hpp"
#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"

namespace ssq {

template <typename T>
class elimination_backoff_stack {
  using codec = item_codec<T>;

 public:
  explicit elimination_backoff_stack(
      nanoseconds arena_patience = std::chrono::microseconds(5),
      mem::epoch_domain &dom = mem::epoch_domain::global())
      : dom_(dom), patience_(arena_patience) {}

  ~elimination_backoff_stack() {
    node *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      node *next = n->next;
      delete n;
      n = next;
    }
  }

  elimination_backoff_stack(const elimination_backoff_stack &) = delete;
  elimination_backoff_stack &operator=(const elimination_backoff_stack &) =
      delete;

  void push(T v) {
    auto *n = new node{std::move(v), nullptr};
    diag::bump(diag::id::node_alloc);
    for (;;) {
      node *h = head_.value.load(std::memory_order_acquire);
      n->next = h;
      if (head_.value.compare_exchange_weak(h, n, std::memory_order_acq_rel,
                                            std::memory_order_acquire))
        return;
      diag::bump(diag::id::cas_fail);
      // Contention: try to hand the value straight to a colliding pop.
      item_token t = codec::encode(std::move(n->value));
      if (arena_.try_eliminate(t, true, deadline::in(patience_),
                               sync::spin_policy::adaptive()) != empty_token) {
        delete n;
        diag::bump(diag::id::node_free);
        return; // eliminated: a pop consumed our value directly
      }
      n->value = codec::decode_consume(t); // reclaim it and retry the stack
    }
  }

  std::optional<T> pop() {
    for (;;) {
      {
        // Epoch pin covers only the stack attempt -- the arena may park,
        // and parking while pinned would stall domain-wide reclamation.
        mem::epoch_domain::guard g(dom_);
        node *h = head_.value.load(std::memory_order_acquire);
        if (h == nullptr) return std::nullopt; // empty is empty, no waiting
        node *next = h->next;
        if (head_.value.compare_exchange_weak(h, next,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          T v = std::move(h->value);
          dom_.retire(h);
          return v;
        }
        diag::bump(diag::id::cas_fail);
      }
      // Contention: try to catch a colliding push in the arena.
      item_token r = arena_.try_eliminate(empty_token, false,
                                          deadline::in(patience_),
                                          sync::spin_policy::adaptive());
      if (r != empty_token) return codec::decode_consume(r);
    }
  }

  bool empty() const noexcept {
    return head_.value.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct node {
    T value;
    node *next;
  };

  mem::epoch_domain &dom_;
  nanoseconds patience_;
  elimination_arena<8> arena_;
  padded_atomic<node *> head_{};
};

} // namespace ssq
