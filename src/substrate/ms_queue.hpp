// The Michael & Scott non-blocking FIFO queue (PODC 1996).
//
// The synchronous dual queue (core/transfer_queue.hpp) is derived from this
// structure (paper §3.3: "derived from ... the M&S queue"). The dummy-node
// discipline, tail-lag helping, and retire-on-head-advance protocol here are
// exactly the ones the dual queue extends with reservations.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "memory/epoch.hpp"
#include "support/cacheline.hpp"
#include "support/diagnostics.hpp"

namespace ssq {

template <typename T>
class ms_queue {
 public:
  explicit ms_queue(mem::epoch_domain &dom = mem::epoch_domain::global())
      : dom_(dom) {
    auto *dummy = new node{};
    diag::bump(diag::id::node_alloc);
    head_.value.store(dummy, std::memory_order_relaxed);
    tail_.value.store(dummy, std::memory_order_relaxed);
  }

  ~ms_queue() {
    node *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      node *next = n->next.load(std::memory_order_relaxed);
      if (n->has_value) n->storage().~T();
      delete n;
      n = next;
    }
  }

  ms_queue(const ms_queue &) = delete;
  ms_queue &operator=(const ms_queue &) = delete;

  void enqueue(T v) {
    auto *n = new node;
    diag::bump(diag::id::node_alloc);
    new (&n->buf) T(std::move(v));
    n->has_value = true;

    mem::epoch_domain::guard g(dom_);
    for (;;) {
      node *t = tail_.value.load(std::memory_order_acquire);
      node *next = t->next.load(std::memory_order_acquire);
      if (t != tail_.value.load(std::memory_order_seq_cst)) continue;
      if (next != nullptr) {
        // Tail is lagging; help swing it.
        tail_.value.compare_exchange_strong(t, next,
                                            std::memory_order_acq_rel);
        continue;
      }
      node *expected = nullptr;
      if (t->next.compare_exchange_strong(expected, n,
                                          std::memory_order_acq_rel)) {
        tail_.value.compare_exchange_strong(t, n, std::memory_order_acq_rel);
        return;
      }
      diag::bump(diag::id::cas_fail);
    }
  }

  std::optional<T> dequeue() {
    mem::epoch_domain::guard g(dom_);
    for (;;) {
      node *h = head_.value.load(std::memory_order_acquire);
      node *t = tail_.value.load(std::memory_order_acquire);
      node *next = h->next.load(std::memory_order_acquire);
      if (h != head_.value.load(std::memory_order_seq_cst)) continue;
      if (next == nullptr) return std::nullopt; // empty (dummy only)
      if (h == t) {
        // Tail lagging behind a non-empty queue; help.
        tail_.value.compare_exchange_strong(t, next,
                                            std::memory_order_acq_rel);
        continue;
      }
      // Read the value *before* swinging head: after the CAS another thread
      // may dequeue-and-retire next's successor chain arbitrarily fast, but
      // `next` itself stays valid while we are pinned.
      if (head_.value.compare_exchange_strong(h, next,
                                              std::memory_order_acq_rel)) {
        T v = std::move(next->storage());
        // `next` is the new dummy; the *old* dummy h is now unreachable.
        dom_.retire(h);
        return v;
      }
      diag::bump(diag::id::cas_fail);
    }
  }

  bool empty() const noexcept {
    node *h = head_.value.load(std::memory_order_acquire);
    return h->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct node {
    alignas(T) unsigned char buf[sizeof(T)];
    bool has_value = false;
    std::atomic<node *> next{nullptr};

    T &storage() noexcept { return *reinterpret_cast<T *>(buf); }
  };

  mem::epoch_domain &dom_;
  padded_atomic<node *> head_{};
  padded_atomic<node *> tail_{};
};

} // namespace ssq
