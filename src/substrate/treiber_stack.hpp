// Treiber's lock-free stack (IBM RJ 5118, 1986).
//
// The synchronous dual stack (core/transfer_stack.hpp) is derived from this
// structure (paper §3.3: "those in turn were derived from the classic Treiber
// stack"). It also serves as a standalone substrate and as the subject of the
// EBR-vs-HP reclamation ablation.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "memory/epoch.hpp"
#include "support/cacheline.hpp"
#include "support/diagnostics.hpp"

namespace ssq {

template <typename T>
class treiber_stack {
 public:
  explicit treiber_stack(mem::epoch_domain &dom = mem::epoch_domain::global())
      : dom_(dom) {}

  ~treiber_stack() {
    // Single-threaded teardown: free whatever is still linked.
    node *n = head_.value.load(std::memory_order_relaxed);
    while (n) {
      node *next = n->next;
      delete n;
      n = next;
    }
  }

  treiber_stack(const treiber_stack &) = delete;
  treiber_stack &operator=(const treiber_stack &) = delete;

  void push(T v) {
    auto *n = new node{std::move(v), nullptr};
    diag::bump(diag::id::node_alloc);
    node *h = head_.value.load(std::memory_order_acquire);
    do {
      n->next = h;
    } while (!head_.value.compare_exchange_weak(h, n,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire));
  }

  std::optional<T> pop() {
    mem::epoch_domain::guard g(dom_);
    node *h = head_.value.load(std::memory_order_acquire);
    for (;;) {
      if (!h) return std::nullopt;
      node *next = h->next; // safe: h cannot be freed while we are pinned
      if (head_.value.compare_exchange_weak(h, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        T v = std::move(h->value);
        dom_.retire(h);
        return v;
      }
      diag::bump(diag::id::cas_fail);
    }
  }

  bool empty() const noexcept {
    return head_.value.load(std::memory_order_acquire) == nullptr;
  }

  // O(n), single-snapshot-free; for tests and teardown checks only.
  std::size_t unsafe_size() const noexcept {
    std::size_t n = 0;
    for (node *p = head_.value.load(std::memory_order_acquire); p;
         p = p->next)
      ++n;
    return n;
  }

 private:
  struct node {
    T value;
    node *next;
  };

  mem::epoch_domain &dom_;
  padded_atomic<node *> head_{};
};

} // namespace ssq
