// Protocol annotations consumed by tools/ssq-lint (docs/static_analysis.md).
//
// The reclamation and parking protocols in this library are *local*: every
// rule ("this pointer must be covered by a hazard slot before it is
// dereferenced", "this slot must not outlive its wait episode armed") can be
// stated at the declaration it concerns. These macros state them. Under
// Clang they compile to [[clang::annotate]] attributes so the LibTooling
// frontend of ssq-lint can read them straight off the AST; under every other
// compiler they vanish. The portable frontend of ssq-lint reads them
// lexically, so the checks run even where no Clang is installed.
//
// Vocabulary (see docs/static_analysis.md for the full check semantics):
//
//   SSQ_GUARDED_BY_HAZARD(domain)
//     On a field whose loaded pointer values must be covered by a hazard
//     (a Reclaimer::slot) before being dereferenced. `domain` names the
//     reclaimer/domain the hazard must come from (documentation + a handle
//     for future multi-domain checking; the checker currently treats all
//     slots of the enclosing structure as one domain).
//
//   SSQ_ACQUIRES_HAZARD
//     On a function that returns a pointer *already covered* by the slot
//     passed to it (the protect-validate idiom). Callers may dereference
//     the result until that slot is re-pointed or cleared.
//
//   SSQ_RELEASES_HAZARD
//     On a function that may re-point or clear the slot(s) passed to it.
//     After the call, pointers the caller had covered by those slots are
//     treated as unprotected again.
//
//   SSQ_RETURNS_UNPROTECTED
//     On a function that returns a pointer usable only as a *value* (CAS
//     operand, comparison) -- e.g. a frozen successor. Dereferencing the
//     result without re-establishing protection is a violation.
//
//   SSQ_REQUIRES_EPISODE_RESET
//     On a function that may arm a park_slot it does not own forever (the
//     slot returns to a pool or ring): every exit path must leave every
//     slot it prepared resolved -- disarm()ed, reset(), or observed woken.
//
//   SSQ_MO_JUSTIFIED("why this ordering is sufficient")
//     Statement-position marker justifying every non-seq_cst atomic
//     operation in the *next* statement (or in the same statement when
//     placed after it on the same line). ssq-lint flags any non-seq_cst
//     operation without one; the empty string is rejected at compile time.
//
//   SSQ_CELL_STATE_FIELD
//     On the atomic word of a waiter cell that runs the segmented-core
//     state machine (core/segment_queue.hpp). Every store/CAS/exchange of
//     such a field must be annotated with the edge it takes.
//
//   SSQ_CELL_TRANSITION(from, to)
//     Statement-position marker naming the cell-state edge taken by the
//     next statement's (or the same line's) mutation of an
//     SSQ_CELL_STATE_FIELD word. ssq-lint validates the edge against the
//     legal transition relation (EMPTY -> WAITER/ASYNC/RESERVED/POISONED,
//     WAITER/ASYNC -> MATCHED, WAITER -> POISONED, RESERVED -> CLAIMED/
//     POISONED, CLAIMED -> MATCHED/POISONED) and flags both illegal edges
//     (e.g. poison-after-match) and unannotated mutations.
//
// Escape hatch (checked, never free): a comment of the form
//     // ssq-lint: suppress(<check>) -- <justification>
// inside or immediately above a function suppresses <check> for that
// function only. A suppression without a justification is itself a
// diagnostic. Policy: docs/static_analysis.md §"Suppression policy".
#pragma once

#if defined(__clang__)
#define SSQ_ANNOTATE(text) [[clang::annotate(text)]]
#else
#define SSQ_ANNOTATE(text)
#endif

#define SSQ_GUARDED_BY_HAZARD(domain) \
  SSQ_ANNOTATE("ssq::guarded_by_hazard:" #domain)
#define SSQ_ACQUIRES_HAZARD SSQ_ANNOTATE("ssq::acquires_hazard")
#define SSQ_RELEASES_HAZARD SSQ_ANNOTATE("ssq::releases_hazard")
#define SSQ_RETURNS_UNPROTECTED SSQ_ANNOTATE("ssq::returns_unprotected")
#define SSQ_REQUIRES_EPISODE_RESET SSQ_ANNOTATE("ssq::requires_episode_reset")

#define SSQ_CELL_STATE_FIELD SSQ_ANNOTATE("ssq::cell_state_field")

// static_assert doubles as the non-emptiness check (sizeof("") == 1) and is
// valid in both statement and class-member position under every compiler.
#define SSQ_MO_JUSTIFIED(reason) \
  static_assert(sizeof(reason) > 1, "SSQ_MO_JUSTIFIED needs a justification")

// Pure marker for ssq-lint; the static_assert only pins that both states
// were spelled (stringized non-empty) so a bare SSQ_CELL_TRANSITION(,)
// fails to compile. Edge legality is the linter's job, not the compiler's.
#define SSQ_CELL_TRANSITION(from, to)                 \
  static_assert(sizeof(#from) > 1 && sizeof(#to) > 1, \
                "SSQ_CELL_TRANSITION needs two named states")
