// Protocol annotations consumed by tools/ssq-lint (docs/static_analysis.md).
//
// The reclamation and parking protocols in this library are *local*: every
// rule ("this pointer must be covered by a hazard slot before it is
// dereferenced", "this slot must not outlive its wait episode armed") can be
// stated at the declaration it concerns. These macros state them. Under
// Clang they compile to [[clang::annotate]] attributes so the LibTooling
// frontend of ssq-lint can read them straight off the AST; under every other
// compiler they vanish. The portable frontend of ssq-lint reads them
// lexically, so the checks run even where no Clang is installed.
//
// Vocabulary (see docs/static_analysis.md for the full check semantics):
//
//   SSQ_GUARDED_BY_HAZARD(domain)
//     On a field whose loaded pointer values must be covered by a hazard
//     (a Reclaimer::slot) before being dereferenced. `domain` names the
//     reclaimer/domain the hazard must come from (documentation + a handle
//     for future multi-domain checking; the checker currently treats all
//     slots of the enclosing structure as one domain).
//
//   SSQ_ACQUIRES_HAZARD
//     On a function that returns a pointer *already covered* by the slot
//     passed to it (the protect-validate idiom). Callers may dereference
//     the result until that slot is re-pointed or cleared.
//
//   SSQ_RELEASES_HAZARD
//     On a function that may re-point or clear the slot(s) passed to it.
//     After the call, pointers the caller had covered by those slots are
//     treated as unprotected again.
//
//   SSQ_RETURNS_UNPROTECTED
//     On a function that returns a pointer usable only as a *value* (CAS
//     operand, comparison) -- e.g. a frozen successor. Dereferencing the
//     result without re-establishing protection is a violation.
//
//   SSQ_REQUIRES_EPISODE_RESET
//     On a function that may arm a park_slot it does not own forever (the
//     slot returns to a pool or ring): every exit path must leave every
//     slot it prepared resolved -- disarm()ed, reset(), or observed woken.
//
//   SSQ_MO_JUSTIFIED("why this ordering is sufficient")
//     Statement-position marker justifying every non-seq_cst atomic
//     operation in the *next* statement (or in the same statement when
//     placed after it on the same line). ssq-lint flags any non-seq_cst
//     operation without one; the empty string is rejected at compile time.
//
//   SSQ_MO(order)
//     The only approved spelling for a *labeled* relaxed-order argument:
//     SSQ_MO(release) expands to std::memory_order_release normally and to
//     std::memory_order_seq_cst when the build defines SSQ_FORCE_SEQ_CST
//     (the CMake escape hatch that pins every labeled site back to a total
//     order for differential debugging). ssq-lint reads SSQ_MO(x) as
//     memory_order_x, so the checks describe the *relaxed* build either way.
//
//   SSQ_MO_RELEASE_EDGE("label") / SSQ_MO_ACQUIRE_EDGE("label")
//     Statement-position markers naming one end of a release/acquire
//     synchronizes-with edge. The marker binds to the first store/RMW
//     (release end) or load/RMW (acquire end) of the next statement (or the
//     same statement when the marker shares its last line). The mo-pairing
//     check builds a per-atomic-field edge table from these and diagnoses:
//     an acquire end with no same-label release/fence partner, two ends of
//     one label on different fields, a relaxed RMW participating in a
//     labeled edge, and relaxed re-reads of a field some release edge
//     publishes. An edge marker also counts as the SSQ_MO_JUSTIFIED
//     justification for its statement -- the label IS the justification,
//     and unlike a free-text reason it is checked for a partner.
//
//   SSQ_MO_FENCE_EDGE("label")
//     Same, for std::atomic_thread_fence sites. A fence end satisfies the
//     release side of any same-label acquire end (fence-based publication),
//     and is exempt from the same-field rule (fences have no field).
//
//   SSQ_CELL_STATE_FIELD
//     On the atomic word of a waiter cell that runs the segmented-core
//     state machine (core/segment_queue.hpp). Every store/CAS/exchange of
//     such a field must be annotated with the edge it takes.
//
//   SSQ_CELL_TRANSITION(from, to, "edge-label")
//     Statement-position marker naming the cell-state edge taken by the
//     next statement's (or the same line's) mutation of an
//     SSQ_CELL_STATE_FIELD word, plus the release/acquire edge label that
//     orders the transition (the third argument must match an
//     SSQ_MO_*_EDGE label declared in the same file). ssq-lint validates
//     the edge against the legal transition relation (EMPTY -> WAITER/
//     ASYNC/RESERVED/POISONED, WAITER/ASYNC -> MATCHED, WAITER ->
//     POISONED, RESERVED -> CLAIMED/POISONED, CLAIMED -> MATCHED/
//     POISONED) and flags illegal edges (e.g. poison-after-match),
//     unannotated mutations, and transitions whose ordering edge is
//     missing or names no declared edge.
//
// Escape hatch (checked, never free): a comment of the form
//     // ssq-lint: suppress(<check>) -- <justification>
// inside or immediately above a function suppresses <check> for that
// function only. A suppression without a justification is itself a
// diagnostic. Policy: docs/static_analysis.md §"Suppression policy".
#pragma once

#if defined(__clang__)
#define SSQ_ANNOTATE(text) [[clang::annotate(text)]]
#else
#define SSQ_ANNOTATE(text)
#endif

#define SSQ_GUARDED_BY_HAZARD(domain) \
  SSQ_ANNOTATE("ssq::guarded_by_hazard:" #domain)
#define SSQ_ACQUIRES_HAZARD SSQ_ANNOTATE("ssq::acquires_hazard")
#define SSQ_RELEASES_HAZARD SSQ_ANNOTATE("ssq::releases_hazard")
#define SSQ_RETURNS_UNPROTECTED SSQ_ANNOTATE("ssq::returns_unprotected")
#define SSQ_REQUIRES_EPISODE_RESET SSQ_ANNOTATE("ssq::requires_episode_reset")

#define SSQ_CELL_STATE_FIELD SSQ_ANNOTATE("ssq::cell_state_field")

// static_assert doubles as the non-emptiness check (sizeof("") == 1) and is
// valid in both statement and class-member position under every compiler.
// The assert messages are load-bearing: the SSQ_LINT_WITH_CLANG frontend
// recounts these markers off StaticAssertDecl messages in the AST, so each
// marker kind must keep a distinct message containing its macro name.
#define SSQ_MO_JUSTIFIED(reason) \
  static_assert(sizeof(reason) > 1, "SSQ_MO_JUSTIFIED needs a justification")

// One end of a labeled synchronizes-with edge (see the vocabulary comment).
#define SSQ_MO_RELEASE_EDGE(label) \
  static_assert(sizeof(label) > 1, "SSQ_MO_RELEASE_EDGE needs an edge label")
#define SSQ_MO_ACQUIRE_EDGE(label) \
  static_assert(sizeof(label) > 1, "SSQ_MO_ACQUIRE_EDGE needs an edge label")
#define SSQ_MO_FENCE_EDGE(label) \
  static_assert(sizeof(label) > 1, "SSQ_MO_FENCE_EDGE needs an edge label")

// The order argument of every labeled site. SSQ_FORCE_SEQ_CST (CMake
// option) pins all of them back to a total order at once; nothing else in
// the source changes, so a suspected weak-memory bug can be bisected to
// "ordering" vs "logic" by flipping one switch.
#if defined(SSQ_FORCE_SEQ_CST)
#define SSQ_MO(order) ::std::memory_order_seq_cst
// Human-readable build-mode tag; benches stamp it into their JSON meta so a
// snapshot records which side of the differential it came from.
#define SSQ_MEMORY_ORDER_MODE "seq_cst_forced"
#else
#define SSQ_MO(order) ::std::memory_order_##order
#define SSQ_MEMORY_ORDER_MODE "relaxed_audited"
#endif

// Pure marker for ssq-lint; the static_assert only pins that both states
// and the ordering-edge label were spelled (stringized/sized non-empty) so
// a bare SSQ_CELL_TRANSITION(,,) fails to compile. Edge legality is the
// linter's job, not the compiler's.
#define SSQ_CELL_TRANSITION(from, to, edge)                                  \
  static_assert(sizeof(#from) > 1 && sizeof(#to) > 1 && sizeof(edge) > 1,    \
                "SSQ_CELL_TRANSITION needs two named states and an ordering " \
                "edge")
