// Cache-line padding helpers.
//
// The paper attributes much of the cost of classic synchronous queues to
// contention: threads bouncing the cache lines that hold head/tail pointers
// and semaphore counters. We cannot remove algorithmic contention, but we can
// avoid *false* sharing between unrelated hot words by giving each its own
// line.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "support/config.hpp"

namespace ssq {

// A value padded out to occupy at least one full cache line, so that two
// adjacent padded<T> members never share a line.
template <typename T>
struct alignas(cacheline_size) padded {
  T value{};

  padded() = default;
  explicit padded(T v) : value(std::move(v)) {}

  T &operator*() noexcept { return value; }
  const T &operator*() const noexcept { return value; }
  T *operator->() noexcept { return &value; }
  const T *operator->() const noexcept { return &value; }

 private:
  // Guarantee the footprint even when sizeof(T) is a multiple of the line.
  char pad_[cacheline_size - (sizeof(T) % cacheline_size)];
};

static_assert(sizeof(padded<std::atomic<void *>>) == cacheline_size);
static_assert(alignof(padded<char>) == cacheline_size);

// Shorthand for the most common case: a padded atomic.
template <typename T>
using padded_atomic = padded<std::atomic<T>>;

} // namespace ssq
