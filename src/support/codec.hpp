// Item tokens: the C++ replacement for Java's object-reference item word.
//
// The paper's algorithms linearize handoff on a *single CAS of the item
// word*: a data node's item changes value -> null when a consumer claims it;
// a reservation's item changes null -> value when a producer fulfills it; and
// a cancelling waiter changes it to the node's own address. That protocol
// needs every item to be representable in one atomic word with two reserved
// patterns (null and self-pointer). Java gets this for free from boxed
// references; here item_codec<T> provides it:
//
//   * small trivially-copyable T: the value is stored inline, shifted left
//     one bit with the low bit set, so the token is odd -- never zero and
//     never an aligned node/box pointer;
//   * everything else: the value is moved into a heap box and the (aligned,
//     non-null) box pointer is the token. The consumer that decodes the
//     token takes ownership of the box.
//
// A box pointer can never equal the containing node's own address (distinct
// live allocations), so the cancelled-marker convention is preserved.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "support/config.hpp"
#include "support/diagnostics.hpp"

namespace ssq {

// The wire representation flowing through the dual data structures.
using item_token = std::uintptr_t;

// Reservation not yet fulfilled / data already taken.
inline constexpr item_token empty_token = 0;

template <typename T>
inline constexpr bool is_inline_encodable_v =
    std::is_trivially_copyable_v<T> && sizeof(T) * 8 + 1 <= sizeof(item_token) * 8;

template <typename T, typename Enable = void>
struct item_codec;

// Inline encoding: token = (bits << 1) | 1.
template <typename T>
struct item_codec<T, std::enable_if_t<is_inline_encodable_v<T>>> {
  static constexpr bool boxed = false;

  static item_token encode(const T &v) noexcept {
    item_token bits = 0;
    __builtin_memcpy(&bits, &v, sizeof(T));
    return (bits << 1) | 1u;
  }

  // Take the value out of a token. Inline tokens own nothing, so this is a
  // pure read and may be called any number of times.
  static T decode_consume(item_token t) noexcept {
    SSQ_ASSERT((t & 1u) != 0, "decoding a non-inline token as inline");
    item_token bits = t >> 1;
    T v;
    __builtin_memcpy(&v, &bits, sizeof(T));
    return v;
  }

  // Discard an encoded-but-never-taken token (e.g. a timed-out producer).
  static void dispose(item_token) noexcept {}
};

// Boxed encoding: token = pointer to a heap box owning the value.
template <typename T>
struct item_codec<T, std::enable_if_t<!is_inline_encodable_v<T>>> {
  static constexpr bool boxed = true;

  static item_token encode(T v) {
    auto *b = new box{std::move(v)};
    diag::counter(diag::id::box_alloc).fetch_add(1, std::memory_order_relaxed);
    return reinterpret_cast<item_token>(b);
  }

  static T decode_consume(item_token t) {
    SSQ_ASSERT(t != empty_token && (t & 1u) == 0, "bad boxed token");
    auto *b = reinterpret_cast<box *>(t);
    T v = std::move(b->value);
    delete b;
    diag::counter(diag::id::box_free).fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  static void dispose(item_token t) {
    if (t == empty_token) return;
    delete reinterpret_cast<box *>(t);
    diag::counter(diag::id::box_free).fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct box {
    T value;
  };
};

} // namespace ssq
