// Basic configuration knobs and assertion macro for the ssq library.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>

namespace ssq {

// Size used to pad hot shared variables onto their own cache line. 64 bytes
// covers x86-64 and most ARM implementations; we deliberately do not use
// std::hardware_destructive_interference_size because GCC warns that its
// value is ABI-unstable across -mtune flags.
inline constexpr std::size_t cacheline_size = 64;

// Number of hazard-pointer slots each thread may hold simultaneously. The
// deepest traversal in the library (transfer_queue::clean) pins at most five
// nodes at once; eight leaves headroom for composition.
inline constexpr std::size_t max_hazards_per_thread = 8;

} // namespace ssq

// Internal invariant check: enabled in all build types (the library is a
// research artifact; a silent invariant violation would invalidate results).
// Costs a predictable branch on paths where it appears; kept off the hot
// CAS loops.
#define SSQ_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      std::fprintf(stderr, "ssq invariant violated: %s (%s:%d): %s\n",     \
                   #cond, __FILE__, __LINE__, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
