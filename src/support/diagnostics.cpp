#include "support/diagnostics.hpp"

#include "support/cacheline.hpp"

namespace ssq::diag {

namespace {
// Each counter on its own cache line: these are written from hot-ish paths
// and must not create false sharing among themselves.
padded_atomic<std::uint64_t> g_counters[id_count];
} // namespace

std::atomic<std::uint64_t> &counter(id which) noexcept {
  return g_counters[static_cast<unsigned>(which)].value;
}

void reset_all() noexcept {
  for (auto &c : g_counters) c.value.store(0, std::memory_order_relaxed);
}

snapshot snapshot::take() noexcept {
  snapshot s;
  for (unsigned i = 0; i < id_count; ++i)
    s.v[i] = g_counters[i].value.load(std::memory_order_relaxed);
  return s;
}

snapshot snapshot::operator-(const snapshot &rhs) const noexcept {
  snapshot s;
  for (unsigned i = 0; i < id_count; ++i) s.v[i] = v[i] - rhs.v[i];
  return s;
}

} // namespace ssq::diag
