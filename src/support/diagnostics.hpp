// Process-global diagnostic counters.
//
// Tests use these to assert *quantitative* properties that black-box
// functional tests cannot see: that retired nodes are eventually freed, that
// the cancelled-node cleaning strategy keeps garbage bounded under offer
// storms, that the spin-then-park policy actually parks (or doesn't). All
// increments are relaxed; the counters are a measurement aid, not a
// synchronization mechanism.
#pragma once

#include <atomic>
#include <cstdint>

namespace ssq::diag {

enum class id : unsigned {
  node_alloc,   // dual-structure nodes constructed
  node_free,    // dual-structure nodes actually deallocated
  node_retire,  // nodes handed to a reclamation domain
  box_alloc,    // item boxes from item_codec
  box_free,
  hp_scan,      // hazard-pointer domain scans
  epoch_flush,  // epoch domain limbo-list flushes
  park,         // threads that actually blocked in the kernel
  unpark,       // futex wakes issued
  spin_retry,   // spin-loop iterations before a park
  clean_call,   // transfer_queue/stack cancelled-node cleaning passes
  clean_unlink, // cancelled nodes successfully unlinked
  cas_fail,     // head/tail/item CAS failures (contention indicator)
  pool_recycle, // node_pool allocations served from magazine/ring/orphans
  pool_fresh,   // node_pool allocations that carved a fresh chunk
  seg_alloc,    // segment_queue: 64-cell segments allocated
  seg_retire,   // segment_queue: whole segments handed to the reclaimer
  cell_poison,  // segment_queue: cells killed by cancellation/now-miss
  count_        // sentinel
};

inline constexpr unsigned id_count = static_cast<unsigned>(id::count_);

std::atomic<std::uint64_t> &counter(id which) noexcept;

inline std::uint64_t read(id which) noexcept {
  return counter(which).load(std::memory_order_relaxed);
}

inline void bump(id which, std::uint64_t n = 1) noexcept {
  counter(which).fetch_add(n, std::memory_order_relaxed);
}

// Zero every counter (tests call this in SetUp).
void reset_all() noexcept;

// A point-in-time copy of all counters, with subtraction for deltas.
struct snapshot {
  std::uint64_t v[id_count]{};

  static snapshot take() noexcept;
  std::uint64_t operator[](id which) const noexcept {
    return v[static_cast<unsigned>(which)];
  }
  snapshot operator-(const snapshot &rhs) const noexcept;
};

} // namespace ssq::diag
