// CPU relax hint for spin loops.
#pragma once

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace ssq {

// Hint to the processor that we are in a spin-wait loop. On x86 this is the
// PAUSE instruction, which de-pipelines the loop and releases shared
// execution resources on SMT siblings; elsewhere it degrades to a compiler
// barrier.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

} // namespace ssq
