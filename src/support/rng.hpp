// Small fast PRNGs for tests, workloads, and randomized backoff.
//
// <random> engines are too heavy for use inside contended loops (mersenne
// state thrashing defeats the point of backoff); xorshift-family generators
// give us a few ns per draw with per-thread state.
#pragma once

#include <cstdint>

namespace ssq {

// splitmix64: used to seed and to hash thread ids into uncorrelated streams.
inline std::uint64_t splitmix64(std::uint64_t &state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**: the workhorse generator.
class xoshiro256 {
 public:
  explicit xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    for (auto &w : s_) w = splitmix64(seed);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound) without modulo bias worth caring about here.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return bound ? next() % bound : 0;
  }

  // Bernoulli with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

} // namespace ssq
