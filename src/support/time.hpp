// Deadline arithmetic for timed operations.
//
// All timed operations in the library ("patience", in the paper's terms) are
// expressed as an absolute deadline on the steady clock, so that a wait that
// is interrupted, retried, or split across spin and park phases never extends
// the caller's total patience.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>

namespace ssq {

using steady_clock = std::chrono::steady_clock;
using time_point = steady_clock::time_point;
using nanoseconds = std::chrono::nanoseconds;

// An absolute point in time before which an operation must complete, or a
// sentinel meaning "unbounded patience".
class deadline {
 public:
  // Unbounded: never expires.
  static deadline unbounded() noexcept { return deadline{time_point::max()}; }

  // Already expired: used to express "do not wait at all" (poll/offer).
  static deadline expired() noexcept { return deadline{time_point::min()}; }

  // Expires `d` from now. Durations too large to represent saturate to
  // unbounded (the comparison is done in floating point to avoid the
  // integer overflow a duration_cast of, say, 10^9 hours would hit).
  template <typename Rep, typename Period>
  static deadline in(std::chrono::duration<Rep, Period> d) noexcept {
    if (d <= d.zero()) return expired();
    auto now = steady_clock::now();
    using fsec = std::chrono::duration<double>;
    const auto headroom =
        std::chrono::duration_cast<fsec>(time_point::max() - now);
    if (std::chrono::duration_cast<fsec>(d) >= headroom) return unbounded();
    return deadline{now + std::chrono::duration_cast<nanoseconds>(d)};
  }

  static deadline at(time_point tp) noexcept { return deadline{tp}; }

  bool is_unbounded() const noexcept { return when_ == time_point::max(); }

  bool expired_now() const noexcept {
    if (is_unbounded()) return false;
    return steady_clock::now() >= when_;
  }

  // Time remaining; zero when expired, nanoseconds::max() when unbounded.
  nanoseconds remaining() const noexcept {
    if (is_unbounded()) return nanoseconds::max();
    auto now = steady_clock::now();
    if (now >= when_) return nanoseconds::zero();
    return std::chrono::duration_cast<nanoseconds>(when_ - now);
  }

  time_point when() const noexcept { return when_; }

  friend bool operator==(const deadline &, const deadline &) = default;

 private:
  explicit deadline(time_point tp) noexcept : when_(tp) {}
  time_point when_;
};

} // namespace ssq
