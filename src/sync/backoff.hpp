// Randomized truncated-exponential backoff for CAS retry loops and for the
// elimination arena.
#pragma once

#include <cstdint>

#include "support/relax.hpp"
#include "support/rng.hpp"

namespace ssq::sync {

class backoff {
 public:
  explicit backoff(std::uint64_t seed = 0x2545F4914F6CDD1DULL,
                   unsigned min_delay = 4, unsigned max_delay = 1024) noexcept
      : rng_(seed), limit_(min_delay), max_(max_delay) {}

  // Wait a random number of relax iterations in [0, limit), then double the
  // limit (truncated at max). Randomization decorrelates competing threads.
  void pause() noexcept {
    const auto n = rng_.below(limit_);
    for (std::uint64_t i = 0; i < n; ++i) cpu_relax();
    if (limit_ < max_) limit_ *= 2;
  }

  void reset() noexcept { limit_ = 4; }

  unsigned current_limit() const noexcept { return limit_; }

 private:
  xoshiro256 rng_;
  unsigned limit_;
  unsigned max_;
};

} // namespace ssq::sync
