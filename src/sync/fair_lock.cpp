#include "sync/fair_lock.hpp"

#include "support/diagnostics.hpp"
#include "sync/futex.hpp"
#include "sync/spin_policy.hpp"

namespace ssq::sync {

void fair_lock::lock() noexcept {
  const std::uint32_t my = next_.value.fetch_add(1, std::memory_order_acq_rel);
  // Brief spin: on a lightly loaded multiprocessor the ticket comes up
  // almost immediately.
  for (int i = 0; i < 128; ++i) {
    if (serving_.value.load(std::memory_order_acquire) == my) return;
    cpu_relax();
  }
  for (;;) {
    std::uint32_t s = serving_.value.load(std::memory_order_acquire);
    if (s == my) return;
    diag::bump(diag::id::park);
    // Everyone parks on the serving counter; unlock wakes all and the
    // non-owners re-park. This herd is characteristic of FIFO locks under
    // load and is part of the pathology being modeled.
    futex_wait(&serving_.value, s, deadline::unbounded());
  }
}

void fair_lock::unlock() noexcept {
  serving_.value.fetch_add(1, std::memory_order_release);
  diag::bump(diag::id::unpark);
  futex_wake_all(&serving_.value);
}

bool fair_lock::try_lock() noexcept {
  std::uint32_t s = serving_.value.load(std::memory_order_acquire);
  std::uint32_t n = next_.value.load(std::memory_order_acquire);
  if (s != n) return false; // held or queued
  // Claim ticket s only if no one else takes it first.
  return next_.value.compare_exchange_strong(n, n + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed);
}

std::uint32_t fair_lock::queue_length() const noexcept {
  std::uint32_t n = next_.value.load(std::memory_order_acquire);
  std::uint32_t s = serving_.value.load(std::memory_order_acquire);
  return n - s; // holder counts as 1
}

bool fair_lock::is_locked() const noexcept { return queue_length() != 0; }

} // namespace ssq::sync
