// fair_lock: a strict-FIFO (ticket-ordered) parking lock.
//
// Models the fair-mode ReentrantLock that the Java SE 5.0 SynchronousQueue
// uses as its entry lock. The paper attributes the fair-mode baseline's poor
// scalability to "pileups [on the fair-mode entry lock] that block the
// threads that will fulfill waiting threads" (§4); reproducing Figure 3's
// fair-mode curve therefore requires a lock with genuine FIFO admission, not
// a barging std::mutex.
//
// Satisfies the C++ Lockable requirements (lock/unlock/try_lock), so it works
// with std::lock_guard and std::unique_lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/cacheline.hpp"

namespace ssq::sync {

class fair_lock {
 public:
  fair_lock() = default;
  fair_lock(const fair_lock &) = delete;
  fair_lock &operator=(const fair_lock &) = delete;

  void lock() noexcept;
  void unlock() noexcept;

  // Acquire only if the lock is free *and* no one is queued ahead of us --
  // fair try_lock does not barge.
  bool try_lock() noexcept;

  // Observers used by tests.
  std::uint32_t queue_length() const noexcept;
  bool is_locked() const noexcept;

 private:
  // Ticket dispenser and now-serving counter, on separate cache lines: a
  // spinning/parking waiter re-reads serving_ but must not invalidate the
  // line that arriving threads fetch_add on.
  padded_atomic<std::uint32_t> next_;
  padded_atomic<std::uint32_t> serving_;
};

} // namespace ssq::sync
