#include "sync/futex.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#else
#include <thread>
#endif

namespace ssq::sync {

#if defined(__linux__)

namespace {

long sys_futex(const void *addr, int op, std::uint32_t val,
               const struct timespec *timeout, std::uint32_t val3) noexcept {
  return syscall(SYS_futex, addr, op, val, timeout, nullptr, val3);
}

} // namespace

futex_result futex_wait(const std::atomic<std::uint32_t> *addr,
                        std::uint32_t expected, deadline dl) noexcept {
  // FUTEX_WAIT_BITSET takes an *absolute* CLOCK_MONOTONIC timeout, which
  // matches std::chrono::steady_clock on Linux. That lets us pass the
  // caller's deadline straight through with no relative-time re-arithmetic
  // on retries.
  const struct timespec *tsp = nullptr;
  struct timespec ts;
  if (!dl.is_unbounded()) {
    if (dl.expired_now()) return futex_result::timeout;
    auto since_epoch = dl.when().time_since_epoch();
    auto secs = std::chrono::duration_cast<std::chrono::seconds>(since_epoch);
    ts.tv_sec = static_cast<time_t>(secs.count());
    ts.tv_nsec = static_cast<long>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch - secs)
            .count());
    tsp = &ts;
  }
  long rc = sys_futex(addr, FUTEX_WAIT_BITSET | FUTEX_PRIVATE_FLAG, expected,
                      tsp, FUTEX_BITSET_MATCH_ANY);
  if (rc == -1 && errno == ETIMEDOUT) return futex_result::timeout;
  // 0 (woken), EAGAIN (value already changed), EINTR (signal): all mean the
  // caller should re-check its condition.
  return futex_result::woken;
}

void futex_wake_one(std::atomic<std::uint32_t> *addr) noexcept {
  sys_futex(addr, FUTEX_WAKE | FUTEX_PRIVATE_FLAG, 1, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t> *addr) noexcept {
  sys_futex(addr, FUTEX_WAKE | FUTEX_PRIVATE_FLAG, INT32_MAX, nullptr, 0);
}

#else // portable fallback

futex_result futex_wait(const std::atomic<std::uint32_t> *addr,
                        std::uint32_t expected, deadline dl) noexcept {
  if (dl.is_unbounded()) {
    addr->wait(expected, std::memory_order_seq_cst);
    return futex_result::woken;
  }
  // Timed fallback: bounded sleep-poll. Only used off-Linux.
  while (addr->load(std::memory_order_seq_cst) == expected) {
    if (dl.expired_now()) return futex_result::timeout;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return futex_result::woken;
}

void futex_wake_one(std::atomic<std::uint32_t> *addr) noexcept {
  addr->notify_one();
}

void futex_wake_all(std::atomic<std::uint32_t> *addr) noexcept {
  addr->notify_all();
}

#endif

} // namespace ssq::sync
