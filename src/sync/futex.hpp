// Thin futex(2) wrappers with an absolute-deadline interface.
//
// The paper's implementation parks threads with LockSupport.park/unpark. Our
// equivalent parks on a 32-bit word: futex on Linux, std::atomic::wait as a
// portable fallback (untimed waits only; timed waits fall back to short
// sleeps). Waiting on a *word we choose* rather than on the thread is what
// lets us put the wait channel inside a hazard-protected node and sidestep
// the thread-lifetime problem that Java solves with GC (see DESIGN.md).
#pragma once

#include <atomic>
#include <cstdint>

#include "support/time.hpp"

namespace ssq::sync {

enum class futex_result {
  woken,    // a wake was issued (or the value had already changed)
  timeout,  // the deadline passed
};

// Block while *addr == expected, until woken or `dl` expires. Spurious
// returns are allowed (callers always re-check their condition).
futex_result futex_wait(const std::atomic<std::uint32_t> *addr,
                        std::uint32_t expected, deadline dl) noexcept;

void futex_wake_one(std::atomic<std::uint32_t> *addr) noexcept;
void futex_wake_all(std::atomic<std::uint32_t> *addr) noexcept;

} // namespace ssq::sync
