#include "sync/interrupt.hpp"

namespace ssq::sync {

void interrupt_token::interrupt() noexcept {
  gen_.fetch_add(1, std::memory_order_relaxed);
  flag_.store(true, std::memory_order_release);
}

nanoseconds interrupt_token::park_quantum() noexcept {
  // 2ms: small enough that shutdown feels immediate, large enough that an
  // idle worker parked on a 60s keep-alive costs ~500 wakeups/s only while
  // a token is attached (untimed/untokened parks never chunk).
  return std::chrono::milliseconds(2);
}

} // namespace ssq::sync
