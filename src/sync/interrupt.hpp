// Cooperative interruption, modeling Java's Thread.interrupt() as used by
// ThreadPoolExecutor to retire idle workers and implement shutdownNow().
//
// A blocking operation that is given an interrupt_token periodically observes
// it while parked (bounded-quantum parking) and returns "interrupted" when
// the flag is set. This is cooperative-only by design: asynchronously waking
// an arbitrary parked thread would require the interrupter to dereference the
// node the waiter parked on, whose lifetime the interrupter does not protect.
// See DESIGN.md ("Substitutions").
#pragma once

#include <atomic>
#include <cstdint>

#include "support/time.hpp"

namespace ssq::sync {

class interrupt_token {
 public:
  interrupt_token() = default;
  interrupt_token(const interrupt_token &) = delete;
  interrupt_token &operator=(const interrupt_token &) = delete;

  // Request interruption. Threads blocked with this token observe it within
  // one park quantum.
  void interrupt() noexcept;

  bool interrupted() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }

  // Clear and report the previous state (Java's Thread.interrupted()).
  bool consume() noexcept {
    return flag_.exchange(false, std::memory_order_acq_rel);
  }

  // How often a parked thread wakes to look at the flag.
  static nanoseconds park_quantum() noexcept;

  // Generation counter: lets tests verify delivery even when the flag is
  // consumed concurrently.
  std::uint64_t generation() const noexcept {
    return gen_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
  std::atomic<std::uint64_t> gen_{0};
};

} // namespace ssq::sync
