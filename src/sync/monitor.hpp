// Java-style monitor (mutex + condition variable, notify-all semantics):
// the substrate for the naive synchronous queue of paper Listing 3.
//
// Kept intentionally faithful to Java monitors -- a single condition queue
// per object, so every notify is a notifyAll -- because the naive baseline's
// quadratic-wakeup pathology depends on it.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/time.hpp"

namespace ssq::sync {

class monitor {
 public:
  class scope {
   public:
    explicit scope(monitor &m) : lk_(m.mu_), mon_(m) {}

    // Release the monitor and wait for a notification (Java's wait()).
    void wait() { mon_.cv_.wait(lk_); }

    // Returns false on deadline expiry (Java's wait(timeout)).
    bool wait_until(deadline dl) {
      if (dl.is_unbounded()) {
        mon_.cv_.wait(lk_);
        return true;
      }
      return mon_.cv_.wait_until(lk_, dl.when()) == std::cv_status::no_timeout;
    }

    // Java's notifyAll(). (There is deliberately no notify-one: a Java
    // monitor cannot target a specific waiter, and the naive algorithm's
    // cost model depends on that.)
    void notify_all() { mon_.cv_.notify_all(); }

   private:
    std::unique_lock<std::mutex> lk_;
    monitor &mon_;
  };

  // Run `body` while holding the monitor; body receives the scope for
  // wait/notify.
  template <typename F>
  decltype(auto) synchronized(F &&body) {
    scope s(*this);
    return body(s);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
};

} // namespace ssq::sync
