// park_slot: an embeddable wait channel -- the library's replacement for
// LockSupport.park/unpark (paper §3.3, "Pragmatics").
//
// A waiter whose precondition is not yet satisfied embeds a park_slot in the
// node it published (the node's lifetime is protected by the reclamation
// domain, so a fulfiller's late signal() can never touch freed memory -- the
// property Java gets from GC).
//
// Usage is a guarded-wait idiom that prevents missed wakeups:
//
//     waiter:                         fulfiller:
//       loop {                          CAS item word        (W)
//         if (condition) break;         slot.signal();
//         slot.prepare();
//         if (condition) break;   // re-check after prepare
//         slot.wait(dl);
//       }
//
// prepare() publishes intent with sequentially consistent ordering; signal()
// observes either the intent (and wakes the futex) or finds the slot idle, in
// which case the waiter's post-prepare re-check is guaranteed to observe W.
//
// Episode hygiene (found by the linearizability harness's audit of node
// recycling): the state word carries an episode GENERATION in its upper
// bits next to the phase in its lower two. One wait episode = construction
// or reset() .. the owner's final read. reset() bumps the generation, so a
// signal() that read the previous episode's word and lost its CAS
// recognizes the episode ended and backs off instead of retrying into --
// and corrupting -- the next episode. For pool-recycled nodes the hazard
// protocol already orders every signal() before the block can be reused
// (the fulfiller holds a hazard on the node across the call); the
// generation turns "relies on a protocol three files away" into a local
// invariant, and makes slot reuse (bounded_buffer's ring, tests) safe by
// construction. spin_then_park() additionally disarms the slot on every
// non-woken exit and on the done-flipped-after-prepare fast path, so a
// finished episode never leaves `armed` behind: a late same-episode
// signal() then needs no futex syscall at all.
//
// Memory-order discipline (docs/memory_model.md): prepare()'s arming CAS
// and signal()'s initial read + CAS form a store-load Dekker (the missed-
// wakeup argument above) and stay seq_cst, as do disarm() and reset()
// (episode boundaries raced by straggler signals). What relaxes is the
// waiter/observer side, paired as the labeled edge `park.signal`: the
// signal CAS is the release end; wait()'s post-futex re-read and
// was_signalled() acquire it. Diagnostic observers read relaxed. Weakened
// orders are spelled SSQ_MO(...) so -DSSQ_FORCE_SEQ_CST pins the file.
#pragma once

#include <atomic>
#include <cstdint>

#include "check/schedule_fuzz.hpp"
#include "support/annotations.hpp"
#include "support/diagnostics.hpp"
#include "sync/futex.hpp"
#include "sync/interrupt.hpp"
#include "sync/spin_policy.hpp"

namespace ssq::sync {

class park_slot {
  enum : std::uint32_t { idle = 0, armed = 1, signalled = 2 };
  static constexpr std::uint32_t phase_mask = 3;
  static constexpr std::uint32_t gen_step = 4;

  static std::uint32_t phase_of(std::uint32_t w) noexcept {
    return w & phase_mask;
  }
  static std::uint32_t gen_of(std::uint32_t w) noexcept {
    return w & ~phase_mask;
  }

 public:
  park_slot() = default;
  park_slot(const park_slot &) = delete;
  park_slot &operator=(const park_slot &) = delete;

  // Announce that this thread is about to block. Must be followed by a
  // re-check of the waited-for condition before wait(). Owner-only (like
  // wait/disarm/reset); only signal() may be called by other threads.
  //
  // A wake that already landed is PRESERVED (LockSupport permit semantics):
  // if signal() beat us here -- it can land between the guarded-wait loop's
  // condition check and this call -- the slot stays `signalled`, wait()
  // returns immediately, and observers like was_signalled() still see the
  // delivery. A blind store to `armed` would consume-and-erase that one
  // wake, deadlocking waiters whose fulfiller signals exactly once.
  void prepare() noexcept {
    std::uint32_t w = state_.load(std::memory_order_seq_cst);
    while (phase_of(w) != signalled) {
      if (state_.compare_exchange_weak(w, gen_of(w) | armed,
                                       std::memory_order_seq_cst))
        return;
    }
  }

  enum class wait_result { woken, timeout, interrupted };

  // Block until signal(), deadline expiry, or (if `tok` is given)
  // interruption. Spurious woken returns are possible; callers re-check
  // their condition in a loop.
  wait_result wait(deadline dl, interrupt_token *tok = nullptr) noexcept {
    if (tok && tok->interrupted()) return wait_result::interrupted;
    diag::bump(diag::id::park);
    SSQ_MO_JUSTIFIED("relaxed: owner-only read of this thread's own "
                     "prepare(); the episode word cannot change gen here");
    const std::uint32_t armed_word =
        gen_of(state_.load(SSQ_MO(relaxed))) | armed;
    for (;;) {
      deadline chunk = dl;
      if (tok) {
        // Bounded-quantum parks so the interrupt flag is observed.
        deadline q = deadline::in(interrupt_token::park_quantum());
        if (q.when() < dl.when()) chunk = q;
      }
      futex_result r = futex_wait(&state_, armed_word, chunk);
      if (tok && tok->interrupted()) return wait_result::interrupted;
      SSQ_MO_ACQUIRE_EDGE("park.signal");
      if (state_.load(SSQ_MO(acquire)) != armed_word)
        return wait_result::woken;
      if (r == futex_result::timeout) {
        if (dl.expired_now()) return wait_result::timeout;
        continue; // only the interrupt-poll chunk expired
      }
      // Spurious kernel return with state still armed: report woken and let
      // the caller's loop re-prepare.
      return wait_result::woken;
    }
  }

  // Wake the waiter, if any. Called by the fulfiller *after* it has made the
  // waited-for condition true. Safe to call multiple times and when no
  // waiter ever arrives. If the episode it observed has already been
  // retired (reset() bumped the generation), the call backs off without
  // touching the new episode.
  void signal() noexcept {
    SSQ_INTERLEAVE("park.signal");
    std::uint32_t w = state_.load(std::memory_order_seq_cst);
    for (;;) {
      if (phase_of(w) == signalled) return;
      std::uint32_t observed = w;
      // seq_cst: the signalling CAS is the fulfiller's half of the Dekker
      // with prepare(); the label documents the release side of the
      // park.signal edge the waiter's re-read acquires.
      SSQ_MO_RELEASE_EDGE("park.signal");
      if (state_.compare_exchange_strong(w, gen_of(observed) | signalled,
                                         std::memory_order_seq_cst)) {
        if (phase_of(observed) == armed) {
          diag::bump(diag::id::unpark);
          futex_wake_all(&state_);
        }
        return;
      }
      // CAS failed; `w` holds the fresh word. A generation change means
      // the episode we were signalling is over -- leaking `signalled` into
      // the successor episode would be the recycled-node bug this guards
      // against.
      if (gen_of(w) != gen_of(observed)) return;
    }
  }

  // Owner: retract a prepare() whose wait was abandoned (condition flipped
  // after arming, or wait returned timeout/interrupt). Leaves a concurrent
  // signal() intact: returns true iff a signal won the race, so the slot
  // ends this episode idle or signalled, never armed.
  bool disarm() noexcept {
    std::uint32_t w = state_.load(std::memory_order_seq_cst);
    while (phase_of(w) == armed) {
      if (state_.compare_exchange_weak(w, gen_of(w) | idle,
                                       std::memory_order_seq_cst))
        return false;
    }
    return phase_of(w) == signalled;
  }

  // Rearm for another wait episode (the guarded-wait loop calls prepare()
  // each iteration, so an explicit reset is only needed when a slot is
  // reused across logically distinct waits, e.g. bounded_buffer's ring
  // cells). Bumps the episode generation: a straggling signal() from the
  // previous episode can no longer mark the new one signalled.
  void reset() noexcept {
    std::uint32_t w = state_.load(std::memory_order_seq_cst);
    state_.store(gen_of(w) + gen_step, std::memory_order_seq_cst);
  }

  bool was_signalled() const noexcept {
    SSQ_MO_ACQUIRE_EDGE("park.signal");
    return phase_of(state_.load(SSQ_MO(acquire))) == signalled;
  }

  // Test/diagnostic observers.
  bool is_armed() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: diagnostic observer, racy by contract");
    return phase_of(state_.load(SSQ_MO(relaxed))) == armed;
  }
  std::uint32_t episode() const noexcept {
    SSQ_MO_JUSTIFIED("relaxed: diagnostic observer, racy by contract");
    return gen_of(state_.load(SSQ_MO(relaxed))) / gen_step;
  }

 private:
  std::atomic<std::uint32_t> state_{idle};
};

// The complete spin-then-park wait loop shared by every blocking structure in
// the library. Re-evaluates `done` (a nullary predicate returning bool)
// until it holds, the deadline passes, or interruption is observed.
//
// `at_front` (nullary predicate) reports whether this waiter is next in line
// for fulfillment; per the paper, only front waiters spin the long count.
//
// Post-condition (episode hygiene): the slot is never left `armed` --
// every exit path either observed a wake or explicitly disarms.
template <typename DonePred, typename FrontPred>
SSQ_REQUIRES_EPISODE_RESET
park_slot::wait_result spin_then_park(park_slot &slot, DonePred done,
                                      FrontPred at_front, spin_policy pol,
                                      deadline dl,
                                      interrupt_token *tok = nullptr) noexcept {
  // Phase 1: spin.
  if (pol.unbounded_spin()) {
    for (int i = 0;; ++i) {
      if (done()) return park_slot::wait_result::woken;
      if (tok && tok->interrupted()) return park_slot::wait_result::interrupted;
      if (!dl.is_unbounded() && dl.expired_now())
        return park_slot::wait_result::timeout;
      diag::bump(diag::id::spin_retry);
      pol.relax(i);
    }
  }
  int budget = at_front() ? pol.front_spins : pol.back_spins;
  for (int i = 0; i < budget; ++i) {
    if (done()) return park_slot::wait_result::woken;
    if (tok && tok->interrupted()) return park_slot::wait_result::interrupted;
    if (!dl.is_unbounded() && dl.expired_now())
      return park_slot::wait_result::timeout;
    diag::bump(diag::id::spin_retry);
    pol.relax(i);
  }
  // Phase 2: park.
  for (;;) {
    if (done()) return park_slot::wait_result::woken;
    slot.prepare();
    SSQ_INTERLEAVE("park.post_prepare");
    if (done()) {
      slot.disarm(); // hygiene: do not exit an episode armed
      return park_slot::wait_result::woken;
    }
    auto r = slot.wait(dl, tok);
    if (r != park_slot::wait_result::woken) {
      slot.disarm();
      return r;
    }
  }
}

} // namespace ssq::sync
