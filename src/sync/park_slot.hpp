// park_slot: an embeddable wait channel -- the library's replacement for
// LockSupport.park/unpark (paper §3.3, "Pragmatics").
//
// A waiter whose precondition is not yet satisfied embeds a park_slot in the
// node it published (the node's lifetime is protected by the reclamation
// domain, so a fulfiller's late signal() can never touch freed memory -- the
// property Java gets from GC).
//
// Usage is a guarded-wait idiom that prevents missed wakeups:
//
//     waiter:                         fulfiller:
//       loop {                          CAS item word        (W)
//         if (condition) break;         slot.signal();
//         slot.prepare();
//         if (condition) break;   // re-check after prepare
//         slot.wait(dl);
//       }
//
// prepare() publishes intent with sequentially consistent ordering; signal()
// observes either the intent (and wakes the futex) or finds the slot idle, in
// which case the waiter's post-prepare re-check is guaranteed to observe W.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/diagnostics.hpp"
#include "sync/futex.hpp"
#include "sync/interrupt.hpp"
#include "sync/spin_policy.hpp"

namespace ssq::sync {

class park_slot {
  enum : std::uint32_t { idle = 0, armed = 1, signalled = 2 };

 public:
  park_slot() = default;
  park_slot(const park_slot &) = delete;
  park_slot &operator=(const park_slot &) = delete;

  // Announce that this thread is about to block. Must be followed by a
  // re-check of the waited-for condition before wait().
  void prepare() noexcept { state_.store(armed, std::memory_order_seq_cst); }

  enum class wait_result { woken, timeout, interrupted };

  // Block until signal(), deadline expiry, or (if `tok` is given)
  // interruption. Spurious woken returns are possible; callers re-check
  // their condition in a loop.
  wait_result wait(deadline dl, interrupt_token *tok = nullptr) noexcept {
    if (tok && tok->interrupted()) return wait_result::interrupted;
    diag::bump(diag::id::park);
    for (;;) {
      deadline chunk = dl;
      if (tok) {
        // Bounded-quantum parks so the interrupt flag is observed.
        deadline q = deadline::in(interrupt_token::park_quantum());
        if (q.when() < dl.when()) chunk = q;
      }
      futex_result r = futex_wait(&state_, armed, chunk);
      if (tok && tok->interrupted()) return wait_result::interrupted;
      if (state_.load(std::memory_order_seq_cst) != armed)
        return wait_result::woken;
      if (r == futex_result::timeout) {
        if (dl.expired_now()) return wait_result::timeout;
        continue; // only the interrupt-poll chunk expired
      }
      // Spurious kernel return with state still armed: report woken and let
      // the caller's loop re-prepare.
      return wait_result::woken;
    }
  }

  // Wake the waiter, if any. Called by the fulfiller *after* it has made the
  // waited-for condition true. Safe to call multiple times and when no
  // waiter ever arrives.
  void signal() noexcept {
    if (state_.exchange(signalled, std::memory_order_seq_cst) == armed) {
      diag::bump(diag::id::unpark);
      futex_wake_all(&state_);
    }
  }

  // Rearm for another wait episode (the guarded-wait loop calls prepare()
  // each iteration, so an explicit reset is only needed when a slot is
  // reused across logically distinct waits, e.g. pooled Java5 nodes).
  void reset() noexcept { state_.store(idle, std::memory_order_seq_cst); }

  bool was_signalled() const noexcept {
    return state_.load(std::memory_order_seq_cst) == signalled;
  }

 private:
  std::atomic<std::uint32_t> state_{idle};
};

// The complete spin-then-park wait loop shared by every blocking structure in
// the library. Re-evaluates `done` (a nullary predicate returning bool)
// until it holds, the deadline passes, or interruption is observed.
//
// `at_front` (nullary predicate) reports whether this waiter is next in line
// for fulfillment; per the paper, only front waiters spin the long count.
template <typename DonePred, typename FrontPred>
park_slot::wait_result spin_then_park(park_slot &slot, DonePred done,
                                      FrontPred at_front, spin_policy pol,
                                      deadline dl,
                                      interrupt_token *tok = nullptr) noexcept {
  // Phase 1: spin.
  if (pol.unbounded_spin()) {
    for (int i = 0;; ++i) {
      if (done()) return park_slot::wait_result::woken;
      if (tok && tok->interrupted()) return park_slot::wait_result::interrupted;
      if (!dl.is_unbounded() && dl.expired_now())
        return park_slot::wait_result::timeout;
      diag::bump(diag::id::spin_retry);
      pol.relax(i);
    }
  }
  int budget = at_front() ? pol.front_spins : pol.back_spins;
  for (int i = 0; i < budget; ++i) {
    if (done()) return park_slot::wait_result::woken;
    if (tok && tok->interrupted()) return park_slot::wait_result::interrupted;
    if (!dl.is_unbounded() && dl.expired_now())
      return park_slot::wait_result::timeout;
    diag::bump(diag::id::spin_retry);
    pol.relax(i);
  }
  // Phase 2: park.
  for (;;) {
    if (done()) return park_slot::wait_result::woken;
    slot.prepare();
    if (done()) return park_slot::wait_result::woken;
    auto r = slot.wait(dl, tok);
    if (r != park_slot::wait_result::woken) return r;
  }
}

} // namespace ssq::sync
