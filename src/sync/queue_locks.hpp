// Queue-based spin locks: MCS (Mellor-Crummey & Scott, the paper's ref 13)
// and CLH (Craig; Landin & Hagersten).
//
// Why they are here: §2.2 defines contention-freedom relative to the
// *local-spin* property of ref 13 -- each waiter spins only on a location
// no other waiter writes. MCS realizes local spinning with explicit queue
// nodes (each waiter spins on its own node's flag); CLH realizes it by
// spinning on the *predecessor's* node. CLH is also the lock underneath
// Java's AbstractQueuedSynchronizer, i.e. the machinery inside the Java 5
// baseline's entry lock. bench/micro_primitives compares their uncontended
// cost with std::mutex and the FIFO futex lock.
//
// These are spin locks (with a yield escape valve for oversubscribed
// hosts): appropriate for short critical sections on multiprocessors,
// pedagogical everywhere.
#pragma once

#include <atomic>
#include <thread>

#include "support/cacheline.hpp"
#include "support/relax.hpp"

namespace ssq::sync {

// ---------------------------------------------------------------- MCS

class mcs_lock {
 public:
  // Caller-provided queue node; must outlive the lock/unlock pair and is
  // reusable afterwards. Stack allocation is the intended pattern:
  //
  //     mcs_lock::node n;
  //     lk.lock(n);  ...critical section...  lk.unlock(n);
  struct alignas(cacheline_size) node {
    std::atomic<node *> next{nullptr};
    std::atomic<bool> locked{false};
  };

  mcs_lock() = default;
  mcs_lock(const mcs_lock &) = delete;
  mcs_lock &operator=(const mcs_lock &) = delete;

  void lock(node &n) noexcept {
    n.next.store(nullptr, std::memory_order_relaxed);
    n.locked.store(true, std::memory_order_relaxed);
    node *pred = tail_.value.exchange(&n, std::memory_order_acq_rel);
    if (pred == nullptr) return; // uncontended
    pred->next.store(&n, std::memory_order_release);
    // Local spin: only our own flag, written only by our predecessor.
    for (int i = 0; n.locked.load(std::memory_order_acquire); ++i) {
      if ((i & 63) == 63)
        std::this_thread::yield(); // oversubscription escape
      else
        cpu_relax();
    }
  }

  bool try_lock(node &n) noexcept {
    n.next.store(nullptr, std::memory_order_relaxed);
    n.locked.store(false, std::memory_order_relaxed);
    node *expected = nullptr;
    return tail_.value.compare_exchange_strong(expected, &n,
                                               std::memory_order_acq_rel);
  }

  void unlock(node &n) noexcept {
    node *succ = n.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      // Possibly last in queue: try to swing tail back to empty.
      node *expected = &n;
      if (tail_.value.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel))
        return;
      // A successor is linking itself in; wait for the pointer.
      do {
        cpu_relax();
        succ = n.next.load(std::memory_order_acquire);
      } while (succ == nullptr);
    }
    succ->locked.store(false, std::memory_order_release);
  }

  bool is_locked() const noexcept {
    return tail_.value.load(std::memory_order_acquire) != nullptr;
  }

 private:
  padded_atomic<node *> tail_{};
};

// RAII guard for mcs_lock with an internal stack node.
class mcs_guard {
 public:
  explicit mcs_guard(mcs_lock &lk) noexcept : lk_(lk) { lk_.lock(n_); }
  ~mcs_guard() { lk_.unlock(n_); }
  mcs_guard(const mcs_guard &) = delete;
  mcs_guard &operator=(const mcs_guard &) = delete;

 private:
  mcs_lock &lk_;
  mcs_lock::node n_;
};

// ---------------------------------------------------------------- CLH

class clh_lock {
  struct qnode {
    std::atomic<bool> locked{false};
    char pad[cacheline_size - sizeof(std::atomic<bool>)];
  };

 public:
  // Per-thread handle holding the two nodes CLH recycles across
  // acquisitions (a releaser donates its node to its successor's future).
  class handle {
    friend class clh_lock;
    qnode *mine = new qnode;
    qnode *pred = nullptr;

   public:
    handle() = default;
    ~handle() { delete mine; }
    handle(const handle &) = delete;
    handle &operator=(const handle &) = delete;
  };

  clh_lock() { tail_.value.store(new qnode, std::memory_order_relaxed); }
  ~clh_lock() { delete tail_.value.load(std::memory_order_relaxed); }
  clh_lock(const clh_lock &) = delete;
  clh_lock &operator=(const clh_lock &) = delete;

  void lock(handle &h) noexcept {
    h.mine->locked.store(true, std::memory_order_relaxed);
    h.pred = tail_.value.exchange(h.mine, std::memory_order_acq_rel);
    // Local spin on the predecessor's node (implicit queue).
    for (int i = 0; h.pred->locked.load(std::memory_order_acquire); ++i) {
      if ((i & 63) == 63)
        std::this_thread::yield();
      else
        cpu_relax();
    }
  }

  void unlock(handle &h) noexcept {
    qnode *mine = h.mine;
    h.mine = h.pred; // recycle the predecessor's (now quiescent) node
    h.pred = nullptr;
    mine->locked.store(false, std::memory_order_release);
  }

 private:
  padded_atomic<qnode *> tail_;
};

} // namespace ssq::sync
