// Counting semaphore (futex-based, timed) -- the substrate for Hanson's
// synchronous queue (paper Listing 1).
//
// Deliberately a *plain* semaphore: each acquire on the slow path costs a
// read-modify-write plus a potential kernel block, and each release costs a
// read-modify-write plus a potential kernel wake. Those per-operation costs
// are exactly what the paper measures Hanson's algorithm paying three times
// per transfer per side.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/cacheline.hpp"
#include "support/diagnostics.hpp"
#include "sync/futex.hpp"
#include "sync/spin_policy.hpp"

namespace ssq::sync {

class counting_semaphore {
 public:
  explicit counting_semaphore(std::uint32_t initial = 0) noexcept
      : count_(initial) {}
  counting_semaphore(const counting_semaphore &) = delete;
  counting_semaphore &operator=(const counting_semaphore &) = delete;

  // Decrement, blocking while the count is zero.
  void acquire() noexcept { (void)try_acquire_until(deadline::unbounded()); }

  // Decrement if the count is positive, without blocking.
  bool try_acquire() noexcept {
    std::uint32_t c = count_.load(std::memory_order_relaxed);
    while (c > 0) {
      if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire,
                                       std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  bool try_acquire_until(deadline dl) noexcept {
    // Brief optimistic spin: cheap on a multiprocessor, skipped after the
    // first kernel wait anyway.
    for (int i = 0; i < 64; ++i) {
      if (try_acquire()) return true;
      cpu_relax();
    }
    for (;;) {
      if (try_acquire()) return true;
      diag::bump(diag::id::park);
      if (futex_wait(&count_, 0, dl) == futex_result::timeout) {
        // One last attempt: a release may have raced the timeout.
        return try_acquire();
      }
    }
  }

  template <typename Rep, typename Period>
  bool try_acquire_for(std::chrono::duration<Rep, Period> d) noexcept {
    return try_acquire_until(deadline::in(d));
  }

  // Increment and wake one waiter if any.
  void release() noexcept {
    count_.fetch_add(1, std::memory_order_release);
    diag::bump(diag::id::unpark);
    futex_wake_one(&count_);
  }

  std::uint32_t value() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> count_;
  char pad_[cacheline_size - sizeof(std::atomic<std::uint32_t>)];
};

} // namespace ssq::sync
