// Spin-then-park policy (paper §3.3, "Pragmatics").
//
// "On multiprocessors (only), nodes next in line for fulfillment spin
// briefly (about one-quarter the time of a typical context switch) before
// parking. ... busy-wait is useless overhead on a uniprocessor."
//
// The policy object is threaded through every blocking operation so that the
// ablation bench (bench/ablation_spin) can compare spin-only, park-only, and
// spin-then-park behaviour under identical workloads.
#pragma once

#include <thread>

#include "support/relax.hpp"

namespace ssq::sync {

struct spin_policy {
  // Spin iterations to attempt before parking when this thread's node is
  // next in line for fulfillment.
  int front_spins = 0;
  // Spin iterations when not at the front (the JDK uses 16x fewer; we keep
  // the same ratio).
  int back_spins = 0;
  // Insert a sched_yield every `yield_every` relax iterations (0 = never).
  // On an oversubscribed machine, yielding lets the counterpart run.
  int yield_every = 8;

  // The library default: spin briefly on multiprocessors, not at all on a
  // uniprocessor -- exactly the paper's policy.
  static spin_policy adaptive() noexcept {
    unsigned ncpu = std::thread::hardware_concurrency();
    if (ncpu <= 1) return spin_policy{0, 0, 1};
    return spin_policy{512, 32, 64};
  }

  static spin_policy park_only() noexcept { return spin_policy{0, 0, 1}; }

  // Never park: classic busy-wait (used by the Listing 5/6 "basic"
  // reference implementations and by the spin ablation). Still yields so
  // that a uniprocessor host makes progress.
  static spin_policy spin_only() noexcept { return spin_policy{-1, -1, 16}; }

  bool unbounded_spin() const noexcept { return front_spins < 0; }

  // One spin-loop step; `i` is the iteration index.
  void relax(int i) const noexcept {
    if (yield_every > 0 && (i + 1) % yield_every == 0)
      std::this_thread::yield();
    else
      cpu_relax();
  }
};

} // namespace ssq::sync
