// ssq-lint fixture: cell-state discipline violations (check `cell-state`,
// core/segment_queue.hpp's waiter-cell protocol).
//   1. a marker naming an edge outside the protocol: MATCHED is terminal,
//      poisoning a completed rendezvous would let the paired token be
//      observed twice (illegal poison-after-match)
//   2. a mutation of an SSQ_CELL_STATE_FIELD with no adjacent
//      SSQ_CELL_TRANSITION marker at all
//   3. a properly annotated install CAS naming its ordering edge (third
//      SSQ_CELL_TRANSITION argument) -- must NOT be reported
//   4. a legacy two-argument transition that names no ordering edge
#include <atomic>
#include <cstdint>

#include "../../src/support/annotations.hpp"

namespace fix {

inline constexpr std::uintptr_t cell_empty = 0;
inline constexpr std::uintptr_t cell_waiter = 1;
inline constexpr std::uintptr_t cell_matched = 3;
inline constexpr std::uintptr_t cell_poisoned = 4;

struct cell {
  SSQ_CELL_STATE_FIELD
  std::atomic<std::uintptr_t> state{cell_empty};
};

class cell_ops {
 public:
  bool install_waiter(cell &c) noexcept {
    std::uintptr_t st = cell_empty;
    SSQ_CELL_TRANSITION(cell_empty, cell_waiter, "cell.publish");
    SSQ_MO_RELEASE_EDGE("cell.publish");
    return c.state.compare_exchange_strong(st, cell_waiter);
  }

  void poison_after_match(cell &c) noexcept {
    SSQ_CELL_TRANSITION(cell_matched, cell_poisoned);
    c.state.store(cell_poisoned);
  }

  bool silent_poison(cell &c) noexcept {
    std::uintptr_t st = cell_waiter;
    return c.state.compare_exchange_strong(st, cell_poisoned);
  }

  bool unlabeled_install(cell &c) noexcept {
    std::uintptr_t st = cell_empty;
    SSQ_CELL_TRANSITION(cell_empty, cell_waiter);
    return c.state.compare_exchange_strong(st, cell_waiter);
  }
};

} // namespace fix
