// ssq-lint fixture: the pre-PR-3 `spin_then_park` episode bugs, verbatim in
// shape. Two paths return while the slot is still armed: the re-check after
// prepare() and the timeout/interrupt path after wait(). A later signal()
// from the fulfilling thread would then target a dead episode (or, worse,
// the slot's next episode). ssq-lint must report park-episode on both
// returns.
//
// The fixed version (src/sync/park_slot.hpp spin_then_park) disarms on both
// paths before returning.
#include "../../src/support/annotations.hpp"
#include "fixture_support.hpp"

namespace fix {

template <typename DonePred>
park_slot::wait_result bad_spin_then_park(park_slot &slot, DonePred done,
                                          deadline dl, interrupt_token *tok) {
  for (int spins = 0; spins < 64; ++spins) {
    if (done()) return park_slot::wait_result::woken;
  }
  for (;;) {
    slot.prepare();
    // BUG: returns with the episode still armed.
    if (done()) return park_slot::wait_result::woken;
    park_slot::wait_result r = slot.wait(dl, tok);
    // BUG: timeout/interrupt also leaves the episode armed.
    if (r != park_slot::wait_result::woken) return r;
    return r;
  }
}

} // namespace fix
