// ssq-lint fixture: the pre-PR-3 dual-stack `pop_pair` bug, verbatim in
// shape. The fulfilling pop freezes the top node's successor and then
// dereferences the matched partner `m` (freeze_next(m), m->life) without
// ever covering it with a hazard slot -- a concurrent `clean()` could have
// retired and freed it. ssq-lint must report hazard-coverage on `m`.
//
// The fixed version (src/core/dual_stack_basic.hpp pop_two_from) re-reads
// through a protected pointer instead.
#include <atomic>
#include <cstdint>

#include "../../src/support/annotations.hpp"
#include "fixture_support.hpp"

namespace fix {

class bad_stack {
  struct snode {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<snode *> next{nullptr};
    life_cycle life;
  };

  static snode *strip(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }
  static snode *with_tag(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) | 1);
  }
  static bool tagged(snode *p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & 1) != 0;
  }

  SSQ_RETURNS_UNPROTECTED
  static snode *freeze_next(snode *n) noexcept {
    for (;;) {
      snode *raw = n->next.load(std::memory_order_seq_cst);
      if (raw == nullptr) return nullptr;
      if (tagged(raw)) return strip(raw);
      if (n->next.compare_exchange_weak(raw, with_tag(raw),
                                        std::memory_order_seq_cst))
        return raw;
    }
  }

  void rec_retire(snode *n) { rec_.retire(n); }

  // `m` is a raw successor value out of freeze_next; nothing pins it before
  // the dereferences below.
  void pop_pair(snode *top) {
    snode *m = freeze_next(top);
    snode *mn = m ? freeze_next(m) : nullptr;
    snode *expected = top;
    if (head_.compare_exchange_strong(expected, mn,
                                      std::memory_order_seq_cst)) {
      if (top->life.mark_unlinked()) rec_retire(top);
      if (m && m->life.mark_unlinked()) rec_retire(m);
    }
  }

  reclaimer rec_;
  std::atomic<snode *> head_{nullptr};
};

} // namespace fix
