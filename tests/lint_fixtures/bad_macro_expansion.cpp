// ssq-lint fixture: the macro-expansion pre-pass. The violation lives in a
// project #define body; the frontend must expand the macro at its use site
// and re-stamp the diagnostic onto the use-site line, not the #define.
//   1. a relaxed CAS under a release edge, both hidden inside FIX_CLAIM --
//      reported at the FIX_CLAIM(word_) call line
//   2. the same macro body reached through one level of nesting
//      (FIX_CLAIM_TWICE) -- reported at the nested use line
#include <atomic>

#include "../../src/support/annotations.hpp"

#define FIX_CLAIM(word)                                                     \
  SSQ_MO_RELEASE_EDGE("macro.word");                                        \
  (void)word.compare_exchange_strong(expected, 1, std::memory_order_relaxed)

#define FIX_CLAIM_TWICE(word)                                               \
  FIX_CLAIM(word);                                                          \
  FIX_CLAIM(word)

namespace fix {

class macro_claims {
 public:
  void claim() noexcept {
    int expected = 0;
    FIX_CLAIM(word_);
  }

  void claim_nested() noexcept {
    int expected = 0;
    FIX_CLAIM_TWICE(word_);
  }

 private:
  std::atomic<int> word_{0};
};

} // namespace fix
