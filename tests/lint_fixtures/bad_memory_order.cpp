// ssq-lint fixture: memory-order hygiene violations.
//   1. a non-seq_cst operation with no SSQ_MO_JUSTIFIED note (mo-unjustified)
//   2. a relaxed load feeding a branch condition (mo-relaxed-control; this
//      subsumes the mo-unjustified report for the same operation)
//   3. a justified acquire -- must NOT be reported
//   4. a suppression comment with no `--` justification (bad-suppression;
//      the underlying mo-unjustified still fires because the suppression is
//      invalid)
#include <atomic>

#include "../../src/support/annotations.hpp"

namespace fix {

class mo_examples {
 public:
  int unjustified_load() noexcept {
    return word_.load(std::memory_order_acquire);
  }

  bool relaxed_in_branch() noexcept {
    if (flag_.load(std::memory_order_relaxed) != 0) return true;
    return false;
  }

  int justified_load() noexcept {
    SSQ_MO_JUSTIFIED("pairs with the release store in publish()");
    return word_.load(std::memory_order_acquire);
  }

  void publish(int v) noexcept {
    SSQ_MO_JUSTIFIED("release: makes v visible to justified_load's acquire");
    word_.store(v, std::memory_order_release);
  }

  // ssq-lint: suppress(mo-unjustified)
  int bad_suppressed_load() noexcept {
    return word_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int> word_{0};
  std::atomic<int> flag_{0};
};

} // namespace fix
