// ssq-lint fixture: release/acquire pairing violations (check `mo-pairing`,
// the cross-site edge table described in docs/memory_model.md).
//   1. an acquire edge whose label has no release or fence partner anywhere
//      in the file
//   2. a field published by a release edge, re-read relaxed with neither an
//      acquire edge nor SSQ_MO_JUSTIFIED (the bare relaxed load also fires
//      mo-unjustified)
//   3. a release edge covering a statement with no store/RMW it can bind to
//   4. a correctly paired label ("pair.word") -- must NOT be reported
#include <atomic>

#include "../../src/support/annotations.hpp"

namespace fix {

class pairing {
 public:
  void publish(int v) noexcept {
    SSQ_MO_RELEASE_EDGE("pair.word");
    word_.store(v, std::memory_order_release);
  }

  int consume() noexcept {
    SSQ_MO_ACQUIRE_EDGE("pair.word");
    return word_.load(std::memory_order_acquire);
  }

  int orphan_acquire() noexcept {
    SSQ_MO_ACQUIRE_EDGE("pair.orphan");
    return flag_.load(std::memory_order_acquire);
  }

  int sloppy_reread() noexcept {
    return word_.load(std::memory_order_relaxed);
  }

  int misbound_release() noexcept {
    SSQ_MO_RELEASE_EDGE("pair.word");
    return word_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int> word_{0};
  std::atomic<int> flag_{0};
};

} // namespace fix
