// ssq-lint fixture: the pre-PR-3 dual-stack `clean()` bug, verbatim in
// shape. The traversal advances its hazard slot to the successor with
// `hz_p.set(n)` and THEN validates by re-reading `p->next` -- but `p` lost
// its only cover at the set(), so the validation load dereferences a node
// that may already be retired. ssq-lint must report reread-after-drop.
//
// The fixed version validates `p->next` BEFORE publishing the new hazard.
#include <atomic>
#include <cstdint>

#include "../../src/support/annotations.hpp"
#include "fixture_support.hpp"

namespace fix {

class bad_clean_stack {
  struct snode {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<snode *> next{nullptr};
    life_cycle life;
    bool is_cancelled() const noexcept { return life.is_unlinked(); }
  };

  static snode *strip(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }

  // Validated-read helper: on return `n` is covered by `hz`.
  SSQ_ACQUIRES_HAZARD
  snode *read_next(snode *x, reclaimer::slot &hz) noexcept {
    for (;;) {
      snode *raw = x->next.load(std::memory_order_seq_cst);
      snode *n = strip(raw);
      hz.set(n);
      if (x->next.load(std::memory_order_seq_cst) == raw) return n;
    }
  }

  void clean(snode *past) {
    reclaimer::slot hz_p(rec_);
    reclaimer::slot hz_q(rec_);
    snode *p = hz_p.protect(head_);
    while (p != nullptr && p != past) {
      snode *n = read_next(p, hz_q);
      if (n != nullptr && n->is_cancelled()) {
        if (n->life.mark_unlinked()) rec_.retire(n);
        return;
      }
      // BUG: advancing the hazard first drops the cover on `p`, then the
      // validation load dereferences the uncovered `p`.
      hz_p.set(n);
      if (p->next.load(std::memory_order_seq_cst) != n) return;
      p = n;
    }
  }

  reclaimer rec_;
  std::atomic<snode *> head_{nullptr};
};

} // namespace fix
