// ssq-lint fixture: a correctly-written miniature of the protocol. Every
// dereference happens under a hazard cover, the traversal validates before
// advancing its slot, the park episode is always disarmed before returning,
// and every non-seq_cst operation carries an SSQ_MO_JUSTIFIED note. The
// expected-diagnostics file for this fixture is empty.
#include <atomic>
#include <cstdint>

#include "../../src/support/annotations.hpp"
#include "fixture_support.hpp"

namespace fix {

class good_stack {
  struct snode {
    SSQ_GUARDED_BY_HAZARD(rec_)
    std::atomic<snode *> next{nullptr};
    life_cycle life;
    bool is_cancelled() const noexcept { return life.is_unlinked(); }
  };

  static snode *strip(snode *p) noexcept {
    return reinterpret_cast<snode *>(reinterpret_cast<std::uintptr_t>(p) &
                                     ~std::uintptr_t(1));
  }

  SSQ_ACQUIRES_HAZARD
  snode *read_next(snode *x, reclaimer::slot &hz) noexcept {
    for (;;) {
      snode *raw = x->next.load(std::memory_order_seq_cst);
      snode *n = strip(raw);
      hz.set(n);
      if (x->next.load(std::memory_order_seq_cst) == raw) return n;
    }
  }

  void push(int value) {
    snode *n = rec_.create<snode>();
    n->life = life_cycle{};
    (void)value;
    snode *expected = head_.load(std::memory_order_seq_cst);
    n->next.store(expected, std::memory_order_seq_cst);
    while (!head_.compare_exchange_weak(expected, n,
                                        std::memory_order_seq_cst)) {
      n->next.store(expected, std::memory_order_seq_cst);
    }
  }

  // Validate-then-advance: `p->next` is re-read while `p` is still covered,
  // and only then does hz_p move up.
  void clean(snode *past) {
    reclaimer::slot hz_p(rec_);
    reclaimer::slot hz_q(rec_);
    snode *p = hz_p.protect(head_);
    while (p != nullptr && p != past) {
      snode *n = read_next(p, hz_q);
      if (n != nullptr && n->is_cancelled()) {
        if (n->life.mark_unlinked()) rec_.retire(n);
        return;
      }
      if (p->next.load(std::memory_order_seq_cst) != n) return;
      hz_p.set(n);
      p = n;
    }
  }

  // ssq-lint: suppress(hazard-coverage) -- racy observer: single probe of a
  // published node, documented as approximate (mirrors unsafe_length).
  bool top_is_cancelled() const {
    snode *h = head_.load(std::memory_order_seq_cst);
    return h != nullptr && h->is_cancelled();
  }

  mutable reclaimer rec_;
  std::atomic<snode *> head_{nullptr};
};

park_slot::wait_result good_spin_then_park(park_slot &slot, bool (*done)(),
                                           deadline dl,
                                           interrupt_token *tok) {
  for (;;) {
    slot.prepare();
    if (done()) {
      slot.disarm();
      return park_slot::wait_result::woken;
    }
    park_slot::wait_result r = slot.wait(dl, tok);
    if (r != park_slot::wait_result::woken) {
      slot.disarm();
      return r;
    }
    return r;
  }
}

class mo_good {
 public:
  int get() const noexcept {
    SSQ_MO_JUSTIFIED("acquire pairs with set()'s release store");
    return w_.load(std::memory_order_acquire);
  }
  void set(int v) noexcept {
    SSQ_MO_JUSTIFIED("release publishes v to get()'s acquire load");
    w_.store(v, std::memory_order_release);
  }

 private:
  std::atomic<int> w_{0};
};

} // namespace fix
