// Minimal mocks so the lint fixtures are self-contained, compilable C++
// while exercising exactly the idioms ssq-lint models (Reclaimer::slot,
// life_cycle arbitration, park_slot episodes). The fixtures feed the
// portable frontend as plain source; compilability keeps them honest for
// the LibTooling frontend as well.
#pragma once

#include <atomic>

namespace fix {

struct life_cycle {
  bool mark_unlinked() noexcept { return true; }
  bool mark_released() noexcept { return true; }
  bool is_unlinked() const noexcept { return false; }
};

struct reclaimer {
  struct slot {
    explicit slot(reclaimer &) noexcept {}
    template <typename T>
    T *protect(const std::atomic<T *> &src) noexcept {
      return src.load();
    }
    template <typename T>
    void set(T *) noexcept {}
    void clear() noexcept {}
  };

  template <typename Node, typename... Args>
  Node *create(Args &&...args) {
    return new Node(static_cast<Args &&>(args)...);
  }
  template <typename Node>
  void retire(Node *n) {
    delete n;
  }
};

struct deadline {};
struct interrupt_token {};

class park_slot {
 public:
  enum class wait_result { woken, timeout, interrupted };
  void prepare() noexcept {}
  wait_result wait(deadline, interrupt_token *) noexcept {
    return wait_result::woken;
  }
  bool disarm() noexcept { return false; }
  void reset() noexcept {}
  void signal() noexcept {}
};

} // namespace fix
