// ssq-lint fixture: edge ends that disagree (check `mo-pairing`).
//   1. the two ends of one label bound to different atomic fields -- the
//      release publishes one word, the acquire reads another, so the label
//      claims a synchronizes-with that never forms
//   2. an acquire edge bound to a relaxed load (order too weak for the
//      edge it names)
//   3. a label whose ends agree on field and order -- must NOT be reported
#include <atomic>

#include "../../src/support/annotations.hpp"

namespace fix {

class mismatched {
 public:
  void publish(int v) noexcept {
    SSQ_MO_RELEASE_EDGE("mix.label");
    word_.store(v, std::memory_order_release);
  }

  int consume_wrong_field() noexcept {
    SSQ_MO_ACQUIRE_EDGE("mix.label");
    return flag_.load(std::memory_order_acquire);
  }

  void weak_publish(int v) noexcept {
    SSQ_MO_RELEASE_EDGE("mix.weak");
    word_.store(v, std::memory_order_release);
  }

  int weak_consume() noexcept {
    SSQ_MO_ACQUIRE_EDGE("mix.weak");
    return word_.load(std::memory_order_relaxed);
  }

  void good_publish(int v) noexcept {
    SSQ_MO_RELEASE_EDGE("mix.good");
    flag_.store(v, std::memory_order_release);
  }

  int good_consume() noexcept {
    SSQ_MO_ACQUIRE_EDGE("mix.good");
    return flag_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<int> word_{0};
  std::atomic<int> flag_{0};
};

} // namespace fix
