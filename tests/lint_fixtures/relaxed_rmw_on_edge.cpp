// ssq-lint fixture: relaxed read-modify-writes on labeled ordering edges
// (check `mo-pairing`). An RMW that participates in a release or acquire
// edge must carry an order that actually creates the edge; relaxed makes
// the label a lie.
//   1. a relaxed CAS bound to a release edge
//   2. a relaxed fetch_add bound to an acquire edge of the same label
//   3. an acq_rel CAS on its own label -- must NOT be reported
#include <atomic>

#include "../../src/support/annotations.hpp"

namespace fix {

class rmw_edges {
 public:
  bool claim_relaxed() noexcept {
    int expected = 0;
    SSQ_MO_RELEASE_EDGE("claim.word");
    return word_.compare_exchange_strong(expected, 1,
                                         std::memory_order_relaxed);
  }

  int tick_relaxed() noexcept {
    SSQ_MO_ACQUIRE_EDGE("claim.word");
    return word_.fetch_add(1, std::memory_order_relaxed);
  }

  bool claim_proper() noexcept {
    int expected = 0;
    SSQ_MO_RELEASE_EDGE("claim.clean");
    return word_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel);
  }

 private:
  std::atomic<int> word_{0};
};

} // namespace fix
