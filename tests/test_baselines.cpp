// Tests for the paper's baseline algorithms: the naive monitor queue
// (Listing 3), Hanson's semaphore queue (Listing 1), and the Java SE 5.0
// lock-based queue (Listing 4, both modes).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"

using namespace ssq;

// Shared battery run against each baseline via small wrappers.
template <typename Q>
void pair_handoff() {
  Q q;
  std::thread p([&] { q.put(7); });
  EXPECT_EQ(q.take(), 7);
  p.join();
}

template <typename Q>
void many_handoffs() {
  Q q;
  const int n = 2000;
  std::thread p([&] {
    for (int i = 0; i < n; ++i) q.put(i);
  });
  long sum = 0;
  for (int i = 0; i < n; ++i) sum += q.take();
  p.join();
  EXPECT_EQ(sum, static_cast<long>(n - 1) * n / 2);
}

template <typename Q>
void n_to_n_conservation(int np, int nc, int per) {
  Q q;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
  const int total = np * per;
  auto cq = total / nc;
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&, c] {
      int quota = cq + (c < total % nc ? 1 : 0);
      for (int i = 0; i < quota; ++i) out.fetch_add(q.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
}

template <typename Q>
void producer_blocks_until_consumer() {
  Q q;
  std::atomic<bool> put_done{false};
  std::thread p([&] {
    q.put(1);
    put_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(put_done.load()) << "synchronous put must wait for a consumer";
  EXPECT_EQ(q.take(), 1);
  p.join();
  EXPECT_TRUE(put_done.load());
}

// ---------------------------------------------------------------- naive

TEST(NaiveSq, PairHandoff) { pair_handoff<naive_sq<int>>(); }
TEST(NaiveSq, ManyHandoffs) { many_handoffs<naive_sq<int>>(); }
TEST(NaiveSq, Conservation4x4) { n_to_n_conservation<naive_sq<int>>(4, 4, 500); }
TEST(NaiveSq, ProducerBlocks) {
  producer_blocks_until_consumer<naive_sq<int>>();
}

TEST(NaiveSq, OfferFailsWithoutConsumer) {
  naive_sq<int> q;
  EXPECT_FALSE(q.offer(1));
}

TEST(NaiveSq, PollFailsWithoutProducer) {
  naive_sq<int> q;
  EXPECT_FALSE(q.poll().has_value());
}

TEST(NaiveSq, TimedOfferExpiresAndRetracts) {
  naive_sq<int> q;
  EXPECT_FALSE(q.offer(9, deadline::in(std::chrono::milliseconds(30))));
  // The offered item must have been retracted: a later poll sees nothing.
  EXPECT_FALSE(q.poll().has_value());
}

TEST(NaiveSq, TimedPollSucceedsWhenProducerArrives) {
  naive_sq<int> q;
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.put(3);
  });
  auto v = q.poll(deadline::in(std::chrono::seconds(5)));
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(NaiveSq, StringPayload) {
  naive_sq<std::string> q;
  std::thread p([&] { q.put("hello"); });
  EXPECT_EQ(q.take(), "hello");
  p.join();
}

// ---------------------------------------------------------------- hanson

TEST(HansonSq, PairHandoff) { pair_handoff<hanson_sq<int>>(); }
TEST(HansonSq, ManyHandoffs) { many_handoffs<hanson_sq<int>>(); }
TEST(HansonSq, Conservation4x4) {
  n_to_n_conservation<hanson_sq<int>>(4, 4, 500);
}
TEST(HansonSq, ProducerBlocks) {
  producer_blocks_until_consumer<hanson_sq<int>>();
}

TEST(HansonSq, NoTimedSupportByDesign) {
  // Paper §3.1/3.3: Hanson's algorithm offers no simple timeout path.
  static_assert(!hanson_sq<int>::supports_timed);
  SUCCEED();
}

TEST(HansonSq, MoveOnlyPayload) {
  hanson_sq<std::unique_ptr<int>> q;
  std::thread p([&] { q.put(std::make_unique<int>(5)); });
  auto v = q.take();
  p.join();
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 5);
}

TEST(HansonSq, SingleConsumerManyProducers) {
  hanson_sq<int> q;
  const int np = 6, per = 300;
  std::vector<std::thread> ps;
  std::atomic<long> in{0};
  for (int p = 0; p < np; ++p)
    ps.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
  long out = 0;
  for (int i = 0; i < np * per; ++i) out += q.take();
  for (auto &t : ps) t.join();
  EXPECT_EQ(out, in.load());
}

// ---------------------------------------------------------------- java5

using j5_fair = java5_sq<int, true>;
using j5_unfair = java5_sq<int, false>;

TEST(Java5Fair, PairHandoff) { pair_handoff<j5_fair>(); }
TEST(Java5Fair, ManyHandoffs) { many_handoffs<j5_fair>(); }
TEST(Java5Fair, Conservation4x4) { n_to_n_conservation<j5_fair>(4, 4, 500); }
TEST(Java5Fair, ProducerBlocks) {
  producer_blocks_until_consumer<j5_fair>();
}

TEST(Java5Unfair, PairHandoff) { pair_handoff<j5_unfair>(); }
TEST(Java5Unfair, ManyHandoffs) { many_handoffs<j5_unfair>(); }
TEST(Java5Unfair, Conservation4x4) {
  n_to_n_conservation<j5_unfair>(4, 4, 500);
}
TEST(Java5Unfair, ProducerBlocks) {
  producer_blocks_until_consumer<j5_unfair>();
}

TEST(Java5, OfferAndPollNonBlocking) {
  j5_fair q;
  EXPECT_FALSE(q.offer(1));
  EXPECT_FALSE(q.poll().has_value());
}

TEST(Java5, OfferSucceedsWithWaitingConsumer) {
  j5_fair q;
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(*q.poll(deadline::in(std::chrono::seconds(10)))); });
  // Let the consumer park.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(q.offer(5));
  c.join();
  EXPECT_EQ(got.load(), 5);
}

TEST(Java5, PollSucceedsWithWaitingProducer) {
  j5_unfair q;
  std::thread p([&] { q.put(6); });
  std::optional<int> v;
  // Poll until the producer has parked.
  for (int i = 0; i < 10000 && !v; ++i) {
    v = q.poll();
    if (!v) std::this_thread::yield();
  }
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 6);
}

TEST(Java5, TimedOfferExpires) {
  j5_fair q;
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q.offer(1, deadline::in(std::chrono::milliseconds(30))));
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(Java5, TimedPollExpires) {
  j5_unfair q;
  EXPECT_FALSE(q.poll(deadline::in(std::chrono::milliseconds(30))).has_value());
}

TEST(Java5, CancelledWaiterDoesNotCorruptLists) {
  j5_fair q;
  // Let several producers time out, then verify normal operation.
  std::vector<std::thread> ps;
  for (int i = 0; i < 4; ++i)
    ps.emplace_back([&, i] {
      EXPECT_FALSE(q.offer(i, deadline::in(std::chrono::milliseconds(10 + i))));
    });
  for (auto &t : ps) t.join();
  std::thread p([&] { q.put(42); });
  EXPECT_EQ(q.take(), 42);
  p.join();
}

TEST(Java5Fair, FifoServiceOrder) {
  // Consumers C1, C2 wait in order; producers must serve C1 first.
  j5_fair q;
  std::atomic<int> r1{-1}, r2{-1};
  std::atomic<int> started{0};
  std::thread c1([&] {
    started.fetch_add(1);
    r1.store(q.take());
  });
  while (started.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // c1 parked
  std::thread c2([&] { r2.store(q.take()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30)); // c2 parked
  q.put(1);
  c1.join();
  EXPECT_EQ(r1.load(), 1) << "fair mode must serve the oldest waiter";
  q.put(2);
  c2.join();
  EXPECT_EQ(r2.load(), 2);
}

TEST(Java5Unfair, LifoTendency) {
  // Unfair mode pushes waiters on a stack: the most recent waiter is served
  // first.
  j5_unfair q;
  std::atomic<int> r1{-1}, r2{-1};
  std::thread c1([&] { r1.store(q.take()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::thread c2([&] { r2.store(q.take()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  q.put(1); // should go to c2 (top of stack)
  q.put(2);
  c1.join();
  c2.join();
  EXPECT_EQ(r2.load(), 1) << "unfair mode serves the most recent waiter";
  EXPECT_EQ(r1.load(), 2);
}

TEST(Java5, TryPutRefReturnsValueOnFailure) {
  j5_unfair q;
  int v = 77;
  EXPECT_FALSE(q.try_put_ref(v, deadline::expired()));
  EXPECT_EQ(v, 77) << "value must be preserved on failed handoff";
}

TEST(Java5, InterruptWakesWaiter) {
  j5_fair q;
  sync::interrupt_token tok;
  std::atomic<bool> done{false};
  std::thread c([&] {
    EXPECT_FALSE(q.poll(deadline::unbounded(), &tok).has_value());
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  tok.interrupt();
  c.join();
  EXPECT_TRUE(done.load());
}

TEST(Java5, StringPayloadStress) {
  java5_sq<std::string, false> q;
  const int n = 1000;
  std::thread p([&] {
    for (int i = 0; i < n; ++i) q.put(std::to_string(i));
  });
  long sum = 0;
  for (int i = 0; i < n; ++i) sum += std::stol(q.take());
  p.join();
  EXPECT_EQ(sum, static_cast<long>(n - 1) * n / 2);
}
