// Tests for the Listing 5/6 reference implementations, including
// cross-checks against the full-featured cores (same workload, same
// conservation result).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dual_queue_basic.hpp"
#include "core/dual_stack_basic.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

// ------------------------------------------------------------ queue basic

TEST(DualQueueBasic, PairHandoff) {
  dual_queue_basic<int> q;
  std::thread p([&] { q.enqueue(17); });
  EXPECT_EQ(q.dequeue(), 17);
  p.join();
}

TEST(DualQueueBasic, EnqueueBlocksUntilDequeue) {
  dual_queue_basic<int> q;
  std::atomic<bool> done{false};
  std::thread p([&] {
    q.enqueue(1);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  EXPECT_EQ(q.dequeue(), 1);
  p.join();
}

TEST(DualQueueBasic, ReservationPathPairHandoff) {
  dual_queue_basic<int> q;
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(q.dequeue()); });
  while (q.is_empty()) std::this_thread::yield(); // reservation linked
  q.enqueue(23);
  c.join();
  EXPECT_EQ(got.load(), 23);
}

TEST(DualQueueBasic, FifoAmongWaitingProducers) {
  dual_queue_basic<int> q;
  std::thread p1([&] { q.enqueue(1); });
  while (q.is_empty()) std::this_thread::yield();
  std::thread p2([&] { q.enqueue(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.dequeue(), 1);
  EXPECT_EQ(q.dequeue(), 2);
  p1.join();
  p2.join();
}

TEST(DualQueueBasic, Conservation3x3) {
  dual_queue_basic<std::uint32_t> q;
  const int np = 3, nc = 3, per = 2000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(p * per + i + 1);
        q.enqueue(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.dequeue());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(q.is_empty());
}

TEST(DualQueueBasic, BoxedPayload) {
  dual_queue_basic<std::string> q;
  std::thread p([&] { q.enqueue("basic"); });
  EXPECT_EQ(q.dequeue(), "basic");
  p.join();
}

// ------------------------------------------------------------ stack basic

TEST(DualStackBasic, PairHandoff) {
  dual_stack_basic<int> s;
  std::thread p([&] { s.push(29); });
  EXPECT_EQ(s.pop(), 29);
  p.join();
}

TEST(DualStackBasic, PushBlocksUntilPop) {
  dual_stack_basic<int> s;
  std::atomic<bool> done{false};
  std::thread p([&] {
    s.push(1);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  EXPECT_EQ(s.pop(), 1);
  p.join();
}

TEST(DualStackBasic, FulfillingPathPairHandoff) {
  dual_stack_basic<int> s;
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(s.pop()); });
  while (s.is_empty()) std::this_thread::yield(); // reservation pushed
  s.push(31);
  c.join();
  EXPECT_EQ(got.load(), 31);
}

TEST(DualStackBasic, Conservation3x3) {
  dual_stack_basic<std::uint32_t> s;
  const int np = 3, nc = 3, per = 2000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(p * per + i + 1);
        s.push(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(s.pop());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(s.is_empty());
}

TEST(DualStackBasic, BoxedPayload) {
  dual_stack_basic<std::string> s;
  std::thread p([&] { s.push("annihilate"); });
  EXPECT_EQ(s.pop(), "annihilate");
  p.join();
}

// ------------------------------------------------- cross-implementation

// The reference and full implementations must agree on the observable
// outcome of identical workloads (sum conservation and completion).
TEST(CrossCheck, BasicQueueMatchesFullQueueOutcome) {
  const int np = 2, nc = 2, per = 1500;
  long expected = 0;
  for (int p = 0; p < np; ++p)
    for (int i = 0; i < per; ++i) expected += p * per + i + 1;

  auto run_basic = [&] {
    dual_queue_basic<std::uint32_t> q;
    std::atomic<long> out{0};
    std::vector<std::thread> ts;
    for (int p = 0; p < np; ++p)
      ts.emplace_back([&, p] {
        for (int i = 0; i < per; ++i)
          q.enqueue(static_cast<std::uint32_t>(p * per + i + 1));
      });
    for (int c = 0; c < nc; ++c)
      ts.emplace_back([&] {
        for (int i = 0; i < per; ++i) out.fetch_add(q.dequeue());
      });
    for (auto &t : ts) t.join();
    return out.load();
  };
  auto run_full = [&] {
    fair_synchronous_queue<std::uint32_t> q;
    std::atomic<long> out{0};
    std::vector<std::thread> ts;
    for (int p = 0; p < np; ++p)
      ts.emplace_back([&, p] {
        for (int i = 0; i < per; ++i)
          q.put(static_cast<std::uint32_t>(p * per + i + 1));
      });
    for (int c = 0; c < nc; ++c)
      ts.emplace_back([&] {
        for (int i = 0; i < per; ++i) out.fetch_add(q.take());
      });
    for (auto &t : ts) t.join();
    return out.load();
  };

  EXPECT_EQ(run_basic(), expected);
  EXPECT_EQ(run_full(), expected);
}

TEST(CrossCheck, BasicStackMatchesFullStackOutcome) {
  const int n = 1500;
  long expected = static_cast<long>(n) * (n + 1) / 2;

  auto run_basic = [&] {
    dual_stack_basic<std::uint32_t> s;
    std::atomic<long> out{0};
    std::thread p([&] {
      for (int i = 1; i <= n; ++i) s.push(static_cast<std::uint32_t>(i));
    });
    for (int i = 0; i < n; ++i) out.fetch_add(s.pop());
    p.join();
    return out.load();
  };
  auto run_full = [&] {
    unfair_synchronous_queue<std::uint32_t> s;
    std::atomic<long> out{0};
    std::thread p([&] {
      for (int i = 1; i <= n; ++i) s.put(static_cast<std::uint32_t>(i));
    });
    for (int i = 0; i < n; ++i) out.fetch_add(s.take());
    p.join();
    return out.load();
  };

  EXPECT_EQ(run_basic(), expected);
  EXPECT_EQ(run_full(), expected);
}
