// Tests for the bounded buffer -- and for the §1 asymmetry contrast between
// buffered and synchronous channels.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/synchronous_queue.hpp"
#include "executor/thread_pool_executor.hpp"
#include "substrate/bounded_buffer.hpp"

using namespace ssq;

TEST(BoundedBuffer, FifoSingleThreaded) {
  bounded_buffer<int> b(8);
  for (int i = 0; i < 8; ++i) b.put(i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(b.take(), i);
}

TEST(BoundedBuffer, ProducersRunAheadUpToCapacity) {
  // The paper's §1 asymmetry: producers do NOT wait until the buffer is
  // full.
  bounded_buffer<int> b(16);
  std::atomic<int> produced{0};
  std::thread p([&] {
    for (int i = 0; i < 16; ++i) {
      b.put(i);
      produced.fetch_add(1);
    }
  });
  p.join(); // must complete with no consumer at all
  EXPECT_EQ(produced.load(), 16);
  EXPECT_EQ(b.size(), 16u);
  for (int i = 0; i < 16; ++i) (void)b.take();
}

TEST(BoundedBuffer, ProducerBlocksWhenFull) {
  bounded_buffer<int> b(2);
  b.put(1);
  b.put(2);
  std::atomic<bool> third_done{false};
  std::thread p([&] {
    b.put(3);
    third_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(third_done.load());
  EXPECT_EQ(b.take(), 1);
  p.join();
  EXPECT_TRUE(third_done.load());
}

TEST(BoundedBuffer, ConsumerBlocksWhenEmpty) {
  bounded_buffer<int> b(4);
  std::atomic<bool> got{false};
  std::thread c([&] {
    EXPECT_EQ(b.take(), 9);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  b.put(9);
  c.join();
}

TEST(BoundedBuffer, OfferFailsWhenFullPollFailsWhenEmpty) {
  bounded_buffer<int> b(1);
  EXPECT_FALSE(b.poll().has_value());
  EXPECT_TRUE(b.offer(1));
  EXPECT_FALSE(b.offer(2));
  EXPECT_EQ(*b.poll(), 1);
}

TEST(BoundedBuffer, TimedVariants) {
  bounded_buffer<int> b(1);
  b.put(1);
  EXPECT_FALSE(b.offer(2, deadline::in(std::chrono::milliseconds(25))));
  (void)b.take();
  EXPECT_FALSE(b.poll(deadline::in(std::chrono::milliseconds(25))).has_value());
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b.put(5);
  });
  auto v = b.poll(deadline::in(std::chrono::seconds(5)));
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(BoundedBuffer, InterruptAbortsWait) {
  bounded_buffer<int> b(1);
  sync::interrupt_token tok;
  std::atomic<bool> aborted{false};
  std::thread c([&] {
    aborted.store(!b.poll(deadline::unbounded(), &tok).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tok.interrupt();
  c.join();
  EXPECT_TRUE(aborted.load());
}

TEST(BoundedBuffer, ConservationUnderConcurrency) {
  bounded_buffer<std::uint64_t> b(32);
  const int np = 3, nc = 3, per = 3000;
  std::atomic<std::uint64_t> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * per + i + 1;
        b.put(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(b.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_EQ(b.size(), 0u);
}

TEST(BoundedBuffer, BoxedPayload) {
  bounded_buffer<std::string> b(2);
  b.put(std::string(512, 'k'));
  EXPECT_EQ(b.take().size(), 512u);
}

TEST(BoundedBuffer, WorksAsExecutorChannel) {
  // A bounded buffer also satisfies HandoffChannel; with a buffer the
  // pool-growth heuristic changes character (offers succeed while no
  // worker is idle) -- the executor's zero-worker recheck must cover it.
  thread_pool_executor<bounded_buffer<unique_task>> *ex;
  // bounded_buffer lacks a default ctor; the executor owns its channel, so
  // wrap it in a default-constructible adapter.
  struct chan : bounded_buffer<unique_task> {
    chan() : bounded_buffer<unique_task>(64) {}
  };
  thread_pool_executor<chan> pool({0, 8, std::chrono::milliseconds(200)});
  (void)ex;
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) pool.submit([&] { done++; });
  while (done.load() < 200) std::this_thread::yield();
  EXPECT_EQ(pool.completed_count(), 200u);
}

// The §1 contrast, measured: through a synchronous queue a fast producer
// and slow consumer proceed in lock-step; through a buffer the producer
// finishes long before the consumer.
TEST(BufferingContrast, ProducersRunAheadOnlyWithBuffering) {
  const int n = 50;
  std::atomic<int> buffered_produced{0}, sync_produced{0};

  bounded_buffer<int> buf(n);
  std::thread bp([&] {
    for (int i = 0; i < n; ++i) {
      buf.put(i);
      buffered_produced.fetch_add(1);
    }
  });
  bp.join();
  EXPECT_EQ(buffered_produced.load(), n) << "buffered producer ran ahead";

  unfair_synchronous_queue<int> sq;
  std::thread sp([&] {
    for (int i = 0; i < n; ++i) {
      sq.put(i);
      sync_produced.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_LE(sync_produced.load(), 1) << "synchronous producer cannot run ahead";
  for (int i = 0; i < n; ++i) (void)sq.take();
  sp.join();
  for (int i = 0; i < n; ++i) (void)buf.take();
}
