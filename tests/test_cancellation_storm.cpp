// Adversarial cancellation storms -- the workload class that exposed the
// stale-predecessor splice bug fixed by the freeze-before-unlink protocol
// (docs/algorithms.md §4.1 Rule 3). These tests run the pattern hard, in
// both directions, on both structures, and verify full reclamation
// afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/segment_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

namespace {

item_token tok_of(int v) { return item_codec<int>::encode(v); }

// Hammer a structure with micro-patience timed ops from both sides plus a
// trickle of real traffic; conservation and reclamation must survive.
template <typename Core>
void storm(Core &core, int threads, int iters) {
  std::atomic<long> in{0}, out{0};
  std::atomic<int> net{0}; // successful puts minus successful takes
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        if ((t + i) % 2 == 0) {
          int v = t * iters + i + 1;
          item_token tk = tok_of(v);
          item_token r =
              core.xfer(tk, true, wait_kind::timed,
                        deadline::in(std::chrono::microseconds(15 + i % 40)));
          if (r != empty_token) {
            in.fetch_add(v);
            net.fetch_add(1);
          }
        } else {
          item_token r =
              core.xfer(empty_token, false, wait_kind::timed,
                        deadline::in(std::chrono::microseconds(15 + i % 40)));
          if (r != empty_token) {
            out.fetch_add(item_codec<int>::decode_consume(r));
            net.fetch_sub(1);
          }
        }
      }
    });
  }
  for (auto &t : ts) t.join();
  // Every successful put paired with exactly one successful take.
  EXPECT_EQ(net.load(), 0);
  EXPECT_EQ(in.load(), out.load());
  EXPECT_LE(core.unsafe_length(), 32u) << "cancelled-node buildup";
}

} // namespace

TEST(CancellationStorm, QueueBothDirections) {
  transfer_queue<> q;
  storm(q, 6, 4000);
}

TEST(CancellationStorm, StackBothDirections) {
  transfer_stack<> s;
  storm(s, 6, 4000);
}

TEST(CancellationStorm, QueueRepeatedRounds) {
  // Fresh queue per round: exercises construction/teardown interleaved
  // with domain reuse (the uid-guarded thread caches).
  for (int round = 0; round < 5; ++round) {
    transfer_queue<> q;
    storm(q, 4, 1500);
  }
}

TEST(CancellationStorm, StackRepeatedRounds) {
  for (int round = 0; round < 5; ++round) {
    transfer_stack<> s;
    storm(s, 4, 1500);
  }
}

TEST(CancellationStorm, QueueFullReclamation) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    transfer_queue<> q(sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    storm(q, 4, 3000);
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

TEST(CancellationStorm, StackFullReclamation) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    transfer_stack<> s(sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    storm(s, 4, 3000);
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

// ---------------------------------------------------------------------------
// Segmented core (core/segment_queue.hpp). Cancellation here is cell
// poisoning, not list splicing: a timed op that gives up CASes its cell
// WAITER -> POISONED and walks away in O(1). The storms check the same
// invariants as the linked cores -- no lost wakeups (net == 0), no value
// corruption (in == out) -- plus segment-granular reclamation: every
// poison-riddled segment still reaches done == contributions and is
// retired exactly once.
// ---------------------------------------------------------------------------

TEST(CancellationStorm, SegmentedBothDirections) {
  segment_queue<> q;
  storm(q, 6, 4000);
}

TEST(CancellationStorm, SegmentedRepeatedRounds) {
  for (int round = 0; round < 5; ++round) {
    segment_queue<> q;
    storm(q, 4, 1500);
  }
}

TEST(CancellationStorm, SegmentedFullReclamation) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    segment_queue<> q(sync::spin_policy::adaptive(),
                      mem::pooled_hp_reclaimer{&dom});
    storm(q, 4, 3000);
    dom.drain();
    // The storm's micro-patience waits must actually have poisoned cells
    // (otherwise this test exercises nothing) and the poisoning must have
    // let whole segments retire through the reclaimer seam.
    EXPECT_GT(diag::read(diag::id::cell_poison), 0u);
    EXPECT_GT(diag::read(diag::id::seg_retire), 0u);
  }
  // Queue destroyed: the still-linked suffix was freed in the dtor, so
  // every allocated segment is accounted for -- none leaked behind a
  // poisoned cell that failed to contribute.
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
  // Retired segments are a strict subset of linked-in ones: the live tail
  // (at least the current head) is freed by the dtor, never retired.
  EXPECT_LT(diag::read(diag::id::seg_retire), diag::read(diag::id::seg_alloc));
}

TEST(CancellationStorm, FacadeSurvivesInterruptStorm) {
  // Interrupt-heavy variant through the typed facade.
  synchronous_queue<int, true> q;
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<sync::interrupt_token>> toks;
  for (int i = 0; i < 4; ++i) toks.push_back(std::make_unique<sync::interrupt_token>());

  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&, i] {
      while (!stop.load(std::memory_order_acquire)) {
        if (i % 2)
          (void)q.try_put(i, deadline::in(std::chrono::milliseconds(5)),
                          toks[static_cast<std::size_t>(i)].get());
        else
          (void)q.try_take(deadline::in(std::chrono::milliseconds(5)),
                           toks[static_cast<std::size_t>(i)].get());
        toks[static_cast<std::size_t>(i)]->consume();
      }
    });
  }
  std::thread interrupter([&] {
    for (int k = 0; k < 300; ++k) {
      toks[static_cast<std::size_t>(k % 4)]->interrupt();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    stop.store(true, std::memory_order_release);
  });
  interrupter.join();
  for (auto &t : ts) t.join();
  // Queue still functional.
  std::thread p([&] { q.put(42); });
  EXPECT_EQ(q.take(), 42);
  p.join();
}
