// Tests for the closeable CSP channel (core/channel.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/channel.hpp"

using namespace ssq;

TEST(Channel, SendRecvPair) {
  channel<int> ch;
  std::thread p([&] { EXPECT_TRUE(ch.send(5)); });
  auto v = ch.recv();
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(Channel, SendBlocksUntilRecv) {
  channel<int> ch;
  std::atomic<bool> sent{false};
  std::thread p([&] {
    ch.send(1);
    sent.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_FALSE(sent.load());
  EXPECT_TRUE(ch.recv().has_value());
  p.join();
}

TEST(Channel, CloseUnblocksSender) {
  channel<int> ch;
  std::atomic<int> result{-1};
  std::thread p([&] { result.store(ch.send(1) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(result.load(), -1) << "sender should be blocked";
  ch.close();
  p.join();
  EXPECT_EQ(result.load(), 0) << "closed channel fails the send";
}

TEST(Channel, CloseUnblocksReceiver) {
  channel<int> ch;
  std::atomic<int> state{-1};
  std::thread c([&] { state.store(ch.recv().has_value() ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(state.load(), -1);
  ch.close();
  c.join();
  EXPECT_EQ(state.load(), 0) << "closed channel returns nullopt";
}

TEST(Channel, OperationsAfterCloseFailFast) {
  channel<int> ch;
  ch.close();
  auto t0 = steady_clock::now();
  EXPECT_FALSE(ch.send(1));
  EXPECT_FALSE(ch.recv().has_value());
  EXPECT_FALSE(ch.try_send(2, deadline::in(std::chrono::seconds(10))));
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5));
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, CloseIsIdempotent) {
  channel<int> ch;
  ch.close();
  ch.close();
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, CloseWakesManyWaiters) {
  channel<int> ch;
  const int n = 6;
  std::atomic<int> drained{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < n; ++i)
    ts.emplace_back([&, i] {
      if (i % 2) {
        if (!ch.send(i)) drained.fetch_add(1);
      } else {
        if (!ch.recv().has_value()) drained.fetch_add(1);
      }
    });
  // Senders and receivers may pair among themselves; the rest must all be
  // released by close.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ch.close();
  for (auto &t : ts) t.join();
  // Everyone exited; pairings + drains account for all n.
  EXPECT_LE(drained.load(), n);
  SUCCEED();
}

TEST(Channel, StreamThenClose) {
  channel<std::string> ch;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i)
      ASSERT_TRUE(ch.send(std::to_string(i)));
    ch.close();
  });
  int got = 0;
  while (auto v = ch.recv()) ++got;
  producer.join();
  EXPECT_EQ(got, 100);
}

TEST(Channel, TimedRecvHonorsDeadline) {
  channel<int> ch;
  auto t0 = steady_clock::now();
  EXPECT_FALSE(ch.try_recv(deadline::in(std::chrono::milliseconds(30))).has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(Channel, UnfairVariantWorks) {
  channel<int, false> ch;
  std::thread p([&] { ch.send(7); });
  EXPECT_EQ(*ch.recv(), 7);
  p.join();
  ch.close();
  EXPECT_FALSE(ch.send(1));
}
