// Unit tests for the synchronous-queue oracle (check/oracle.hpp) on
// hand-built histories, plus "teeth" tests: deliberately broken toy
// implementations driven through the real recording workload must be
// flagged. The latter is the mutation-testing acceptance gate for the
// harness -- an oracle that passes broken queues is worthless.
#include <gtest/gtest.h>

#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "check/driver.hpp"
#include "check/history.hpp"
#include "check/oracle.hpp"

using namespace ssq;
using namespace ssq::check;

namespace {

event ev(std::uint32_t tid, op_role role, op_status st, std::uint64_t inv,
         std::uint64_t ret, std::uint64_t given, std::uint64_t got,
         wait_kind wk = wait_kind::timed) {
  event e;
  e.thread = tid;
  e.role = role;
  e.status = st;
  e.invoke = inv;
  e.ret = ret;
  e.given = given;
  e.got = got;
  e.wk = wk;
  return e;
}

// Same, with a lane attribution (multi-lane fabric histories).
event evl(std::uint32_t tid, op_role role, op_status st, std::uint64_t inv,
          std::uint64_t ret, std::uint64_t given, std::uint64_t got,
          std::uint32_t lane, wait_kind wk = wait_kind::timed) {
  event e = ev(tid, role, st, inv, ret, given, got, wk);
  e.lane = lane;
  return e;
}

bool has_violation(const report &r, const char *needle) {
  for (const auto &v : r.violations)
    if (v.what.find(needle) != std::string::npos) return true;
  return false;
}

} // namespace

// ------------------------------------------------------------ happy paths

TEST(Oracle, AcceptsMatchedOverlappingPairs) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 4, 7, 0),
      ev(1, op_role::consume, op_status::ok, 2, 3, 0, 7),
      ev(0, op_role::produce, op_status::ok, 5, 8, 9, 0),
      ev(1, op_role::consume, op_status::ok, 6, 7, 0, 9),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(r.ok()) << summarize(r);
  EXPECT_EQ(r.pairs, 2u);
}

TEST(Oracle, AcceptsCancelledOpsWithoutTransfers) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::timeout, 1, 2, 5, 0),
      ev(1, op_role::consume, op_status::miss, 3, 4, 0, 0),
      ev(2, op_role::produce, op_status::interrupted, 5, 6, 6, 0),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(r.ok()) << summarize(r);
  EXPECT_EQ(r.cancelled, 3u);
}

// ------------------------------------------------------------- violations

TEST(Oracle, FlagsDuplicateConsume) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 4, 7, 0),
      ev(1, op_role::consume, op_status::ok, 2, 3, 0, 7),
      ev(2, op_role::consume, op_status::ok, 5, 6, 0, 7),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "consumed twice")) << summarize(r);
}

TEST(Oracle, FlagsLostItem) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 2, 7, 0),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "lost item")) << summarize(r);
  rules lax;
  lax.require_all_consumed = false;
  EXPECT_TRUE(check_history(h, lax).ok());
}

TEST(Oracle, FlagsCancelledProduceDelivered) {
  // The cancellation-vs-fulfillment race: producer reported timeout but its
  // value showed up at a consumer anyway.
  std::vector<event> h{
      ev(0, op_role::produce, op_status::timeout, 1, 2, 7, 0),
      ev(1, op_role::consume, op_status::ok, 3, 4, 0, 7),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "cancelled produce")) << summarize(r);
}

TEST(Oracle, FlagsNeverProducedValue) {
  std::vector<event> h{
      ev(1, op_role::consume, op_status::ok, 3, 4, 0, 99),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "never produced")) << summarize(r);
}

TEST(Oracle, FlagsFailedConsumeWithValue) {
  std::vector<event> h{
      ev(1, op_role::consume, op_status::timeout, 3, 4, 0, 42),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "failed consume")) << summarize(r);
}

TEST(Oracle, FlagsSynchronyViolation) {
  // Producer returned (stamp 2) before the consumer even arrived (stamp 3):
  // a synchronous handoff cannot do that.
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 2, 7, 0),
      ev(1, op_role::consume, op_status::ok, 3, 4, 0, 7),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "synchrony")) << summarize(r);
  // Async producers are exempt: they leave before the handshake.
  h[0].wk = wait_kind::async;
  EXPECT_TRUE(check_history(h, rules{}).ok());
}

TEST(Oracle, FlagsConsumeBeforeProduceInvoked) {
  std::vector<event> h{
      ev(1, op_role::consume, op_status::ok, 1, 2, 0, 7),
      ev(0, op_role::produce, op_status::ok, 3, 4, 7, 0, wait_kind::async),
  };
  report r = check_history(h, rules{});
  EXPECT_TRUE(has_violation(r, "before its produce")) << summarize(r);
}

TEST(Oracle, FlagsFifoInversionForAsyncProducers) {
  // A enqueued strictly before B (A.ret=2 < B.inv=10) yet A can only have
  // been delivered after B: A's delivery window is [50,60], B's [20,30].
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 2, 7, 0, wait_kind::async),
      ev(0, op_role::produce, op_status::ok, 10, 11, 8, 0, wait_kind::async),
      ev(1, op_role::consume, op_status::ok, 20, 30, 0, 8),
      ev(1, op_role::consume, op_status::ok, 50, 60, 0, 7),
  };
  rules r;
  r.fifo = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "FIFO")) << summarize(rep);
  // Same history without the FIFO rule is clean (async exempts synchrony).
  EXPECT_TRUE(check_history(h, rules{}).ok());
}

TEST(Oracle, AcceptsFifoOrderForAsyncProducers) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 2, 7, 0, wait_kind::async),
      ev(0, op_role::produce, op_status::ok, 10, 11, 8, 0, wait_kind::async),
      ev(1, op_role::consume, op_status::ok, 20, 30, 0, 7),
      ev(1, op_role::consume, op_status::ok, 50, 60, 0, 8),
  };
  rules r;
  r.fifo = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
}

// ------------------------------------------------- per-lane FIFO (fabric)

TEST(Oracle, LanesAcceptCrossLaneInversionButNotGlobalFifo) {
  // Two async producers on different lanes delivered out of global order:
  // legal under the relaxed per-lane spec, a violation under strict FIFO.
  std::vector<event> h{
      evl(0, op_role::produce, op_status::ok, 1, 2, 7, 0, 0, wait_kind::async),
      evl(0, op_role::produce, op_status::ok, 10, 11, 8, 0, 1,
          wait_kind::async),
      evl(1, op_role::consume, op_status::ok, 20, 30, 0, 8, 1),
      evl(1, op_role::consume, op_status::ok, 50, 60, 0, 7, 0),
  };
  rules lanes;
  lanes.fifo_lanes = true;
  EXPECT_TRUE(check_history(h, lanes).ok()) << summarize(check_history(h, lanes));
  rules strict;
  strict.fifo = true;
  EXPECT_TRUE(has_violation(check_history(h, strict), "FIFO"));
}

TEST(Oracle, LanesFlagSameLaneInversion) {
  // The same inversion within ONE lane must still be caught.
  std::vector<event> h{
      evl(0, op_role::produce, op_status::ok, 1, 2, 7, 0, 3, wait_kind::async),
      evl(0, op_role::produce, op_status::ok, 10, 11, 8, 0, 3,
          wait_kind::async),
      evl(1, op_role::consume, op_status::ok, 20, 30, 0, 8, 3),
      evl(1, op_role::consume, op_status::ok, 50, 60, 0, 7, 3),
  };
  rules r;
  r.fifo_lanes = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "FIFO")) << summarize(rep);
  EXPECT_TRUE(has_violation(rep, "lane 3")) << summarize(rep);
}

TEST(Oracle, LanesFlagPairLaneMismatch) {
  // Producer says lane 0, consumer says lane 1: the attribution itself is
  // part of the relaxed contract.
  std::vector<event> h{
      evl(0, op_role::produce, op_status::ok, 1, 4, 7, 0, 0),
      evl(1, op_role::consume, op_status::ok, 2, 3, 0, 7, 1),
  };
  rules r;
  r.fifo_lanes = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "disagrees")) << summarize(rep);
}

TEST(Oracle, LanesFlagUnattributedPair) {
  std::vector<event> h{
      ev(0, op_role::produce, op_status::ok, 1, 4, 7, 0),
      evl(1, op_role::consume, op_status::ok, 2, 3, 0, 7, 0),
  };
  rules r;
  r.fifo_lanes = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "no lane attribution")) << summarize(rep);
}

TEST(Oracle, LanesExemptSentinelPairsFromFifo) {
  // An elimination handoff and a bulk delivery may overtake lane traffic;
  // both sides carry the sentinel, so they are FIFO-exempt but still
  // pairing-checked.
  std::vector<event> h{
      evl(0, op_role::produce, op_status::ok, 1, 2, 7, 0, 0,
          wait_kind::async),
      evl(0, op_role::produce, op_status::ok, 10, 11, 8, 0, lane_bulk,
          wait_kind::async),
      evl(1, op_role::consume, op_status::ok, 20, 30, 0, 8, lane_bulk),
      evl(1, op_role::consume, op_status::ok, 50, 60, 0, 7, 0),
      evl(2, op_role::produce, op_status::ok, 70, 90, 9, 0, lane_elim),
      evl(3, op_role::consume, op_status::ok, 71, 89, 0, 9, lane_elim),
  };
  rules r;
  r.fifo_lanes = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
}

TEST(Oracle, LanesFlagAsymmetricSentinel) {
  // One side claims an elimination handoff, the other a lane pairing: the
  // exchange mechanisms must agree.
  std::vector<event> h{
      evl(0, op_role::produce, op_status::ok, 1, 4, 7, 0, lane_elim),
      evl(1, op_role::consume, op_status::ok, 2, 3, 0, 7, 2),
  };
  rules r;
  r.fifo_lanes = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "disagrees")) << summarize(rep);
}

// --------------------------------------------------------------- exchanger

TEST(Oracle, ExchangerAcceptsSymmetricPair) {
  std::vector<event> h{
      ev(0, op_role::exchange, op_status::ok, 1, 4, 7, 8),
      ev(1, op_role::exchange, op_status::ok, 2, 3, 8, 7),
  };
  rules r;
  r.exchange = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_EQ(rep.pairs, 1u);
}

TEST(Oracle, ExchangerFlagsAsymmetry) {
  // 0 got 8 from 1, but 1 claims it got 9 (not 0's 7).
  std::vector<event> h{
      ev(0, op_role::exchange, op_status::ok, 1, 4, 7, 8),
      ev(1, op_role::exchange, op_status::ok, 2, 3, 8, 9),
      ev(2, op_role::exchange, op_status::ok, 2, 3, 9, 8),
  };
  rules r;
  r.exchange = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "asymmetric") ||
              has_violation(rep, "nobody offered"))
      << summarize(rep);
}

TEST(Oracle, ExchangerFlagsNonOverlap) {
  std::vector<event> h{
      ev(0, op_role::exchange, op_status::ok, 1, 2, 7, 8),
      ev(1, op_role::exchange, op_status::ok, 3, 4, 8, 7),
  };
  rules r;
  r.exchange = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "overlap")) << summarize(rep);
}

TEST(Oracle, ExchangerFlagsCancelledWithValue) {
  std::vector<event> h{
      ev(0, op_role::exchange, op_status::timeout, 1, 2, 7, 9),
  };
  rules r;
  r.exchange = true;
  report rep = check_history(h, r);
  EXPECT_TRUE(has_violation(rep, "cancelled exchange")) << summarize(rep);
}

// ------------------------------------------------------------------ teeth
//
// Mutation test: an intentionally broken "synchronous" queue driven through
// the real recording workload must be flagged by the oracle. This is the
// acceptance gate: if these fail, the harness has no teeth.

namespace {

// A buffered queue masquerading as synchronous: offer() succeeds
// immediately (stashing the value), poll() takes from the buffer. Violates
// synchrony -- a producer can return long before any consumer arrives.
class buffered_impostor {
 public:
  bool offer(std::uint64_t v, deadline) {
    std::lock_guard<std::mutex> g(mu_);
    buf_.push_back(v);
    return true;
  }
  std::optional<std::uint64_t> poll(deadline dl) {
    for (;;) {
      {
        std::lock_guard<std::mutex> g(mu_);
        if (!buf_.empty()) {
          std::uint64_t v = buf_.front();
          buf_.pop_front();
          return v;
        }
      }
      if (dl.expired_now()) return std::nullopt;
      std::this_thread::yield();
    }
  }

 private:
  std::mutex mu_;
  std::deque<std::uint64_t> buf_;
};

// An async (buffering, LTQ-like) queue that hands values out in LIFO
// order: violates FIFO pairing without violating synchrony.
class lifo_impostor {
 public:
  void put(std::uint64_t v) {
    std::lock_guard<std::mutex> g(mu_);
    buf_.push_back(v);
  }
  bool try_transfer(std::uint64_t, deadline) { return false; }
  std::optional<std::uint64_t> poll(deadline) {
    std::lock_guard<std::mutex> g(mu_);
    if (buf_.empty()) return std::nullopt;
    std::uint64_t v = buf_.back(); // LIFO: the seeded ordering bug
    buf_.pop_back();
    return v;
  }

 private:
  std::mutex mu_;
  std::deque<std::uint64_t> buf_;
};

} // namespace

TEST(OracleTeeth, BufferedImpostorFailsSynchrony) {
  auto q = std::make_shared<buffered_impostor>();
  checked_ops ops = make_checked_ops(q, /*fair=*/false);
  driver_cfg cfg;
  cfg.threads = 2;
  cfg.seed = 11;
  cfg.duration = std::chrono::milliseconds(300);
  cfg.max_ops_per_thread = 4000;
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  run_mixed(ops, cfg, rec);
  report rep = check_history(rec.collect(), rules{});
  ASSERT_FALSE(rep.ok()) << "oracle accepted a buffered (non-synchronous) "
                            "impostor: the harness has no teeth";
  EXPECT_TRUE(has_violation(rep, "synchrony")) << summarize(rep);
}

TEST(OracleTeeth, LifoImpostorFailsFifo) {
  // Deterministic drive: two async puts in program order, then two polls.
  // LIFO delivery inverts them; the FIFO sweep must notice.
  lifo_impostor q;
  recorder rec(1);
  {
    op_scope s(rec, 0, op_role::produce, wait_kind::async);
    q.put(1);
    s.commit(op_status::ok, 1, 0);
  }
  {
    op_scope s(rec, 0, op_role::produce, wait_kind::async);
    q.put(2);
    s.commit(op_status::ok, 2, 0);
  }
  for (int i = 0; i < 2; ++i) {
    op_scope s(rec, 0, op_role::consume, wait_kind::now);
    auto got = q.poll(deadline::expired());
    ASSERT_TRUE(got.has_value());
    s.commit(op_status::ok, 0, *got);
  }
  rules r;
  r.fifo = true;
  report rep = check_history(rec.collect(), r);
  ASSERT_FALSE(rep.ok()) << "oracle accepted LIFO delivery under FIFO rules";
  EXPECT_TRUE(has_violation(rep, "FIFO")) << summarize(rep);
}

TEST(OracleTeeth, LifoImpostorFailsFifoUnderConcurrentLoad) {
  // Same impostor through the full concurrent workload (all-async
  // producers); the sweep must still catch inversions in a noisy history.
  auto q = std::make_shared<lifo_impostor>();
  checked_ops ops = make_checked_transfer_ops(q);
  driver_cfg cfg;
  cfg.threads = 2;
  cfg.seed = 5;
  cfg.duration = std::chrono::milliseconds(300);
  cfg.max_ops_per_thread = 4000;
  cfg.async_pct = 100;
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  run_mixed(ops, cfg, rec);
  rules r;
  r.fifo = true;
  report rep = check_history(rec.collect(), r);
  EXPECT_FALSE(rep.ok()) << "oracle accepted a LIFO impostor under load";
}

TEST(Oracle, DumpHistoryWritesSortedReplayableLines) {
  std::vector<event> h{
      ev(1, op_role::consume, op_status::ok, 2, 3, 0, 7),
      ev(0, op_role::produce, op_status::ok, 1, 4, 7, 0),
  };
  std::FILE *f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  dump_history(f, h);
  std::rewind(f);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line),
            "# tid role wk status invoke ret given got lane\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  // Sorted by invoke stamp: the produce (invoke=1) comes first.
  EXPECT_EQ(std::string(line), "0 produce timed ok 1 4 7 0 -\n");
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), "1 consume timed ok 2 3 0 7 -\n");
  std::fclose(f);
}

TEST(OracleTeeth, LossyImpostorFlagged) {
  // Hand-built: producer ok, value vanishes.
  recorder rec(1);
  {
    op_scope s(rec, 0, op_role::produce, wait_kind::timed);
    s.commit(op_status::ok, 1, 0);
  }
  report rep = check_history(rec.collect(), rules{});
  EXPECT_TRUE(has_violation(rep, "lost item")) << summarize(rep);
}
