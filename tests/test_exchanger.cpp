// Tests for the elimination components: exchanger, elimination_arena, and
// the eliminating synchronous queue.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/elimination_arena.hpp"
#include "core/eliminating_sq.hpp"
#include "core/exchanger.hpp"

using namespace ssq;

// ------------------------------------------------------------- exchanger

TEST(Exchanger, PairSwapsValues) {
  exchanger<int> ex;
  std::atomic<int> a{-1}, b{-1};
  std::thread ta([&] { a.store(ex.exchange(1)); });
  std::thread tb([&] { b.store(ex.exchange(2)); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 2);
  EXPECT_EQ(b.load(), 1);
}

TEST(Exchanger, TimedExchangeExpiresAlone) {
  exchanger<int> ex;
  auto t0 = steady_clock::now();
  auto r = ex.exchange_until(5, deadline::in(std::chrono::milliseconds(30)));
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(Exchanger, BoxedPayloadSwap) {
  exchanger<std::string> ex;
  std::string a, b;
  std::thread ta([&] { a = ex.exchange("from-a"); });
  std::thread tb([&] { b = ex.exchange("from-b"); });
  ta.join();
  tb.join();
  EXPECT_EQ(a, "from-b");
  EXPECT_EQ(b, "from-a");
}

TEST(Exchanger, EvenCrowdAllPairUp) {
  // 2k threads exchange; every offered value must come back exactly once.
  exchanger<int> ex;
  const int n = 8;
  std::vector<int> got(n, -1);
  std::vector<std::thread> ts;
  for (int i = 0; i < n; ++i)
    ts.emplace_back([&, i] { got[static_cast<std::size_t>(i)] = ex.exchange(i); });
  for (auto &t : ts) t.join();
  std::multiset<int> all(got.begin(), got.end());
  for (int i = 0; i < n; ++i) EXPECT_EQ(all.count(i), 1u);
  for (int i = 0; i < n; ++i)
    EXPECT_NE(got[static_cast<std::size_t>(i)], i)
        << "a thread cannot receive its own value";
}

TEST(Exchanger, SequentialRounds) {
  exchanger<int> ex;
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> a{-1};
    std::thread t([&] { a.store(ex.exchange(round)); });
    int b = ex.exchange(round + 1000);
    t.join();
    EXPECT_EQ(a.load(), round + 1000);
    EXPECT_EQ(b, round);
  }
}

// ------------------------------------------------------- elimination arena

TEST(EliminationArena, ComplementaryPairEliminates) {
  elimination_arena<4> arena;
  auto pol = sync::spin_policy::adaptive();
  std::atomic<int> got{-1};
  std::thread consumer([&] {
    item_token r = arena.try_eliminate(
        empty_token, false, deadline::in(std::chrono::seconds(5)), pol);
    if (r != empty_token) got.store(item_codec<int>::decode_consume(r));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  item_token t = item_codec<int>::encode(55);
  item_token r =
      arena.try_eliminate(t, true, deadline::in(std::chrono::seconds(5)), pol);
  consumer.join();
  if (r != empty_token) {
    EXPECT_EQ(got.load(), 55);
  } else {
    // Producer missed (probed a different slot): consumer must have missed
    // too, and the token remains ours.
    item_codec<int>::dispose(t);
    EXPECT_EQ(got.load(), -1);
  }
}

TEST(EliminationArena, LoneThreadTimesOut) {
  elimination_arena<4> arena;
  auto pol = sync::spin_policy::adaptive();
  item_token r = arena.try_eliminate(
      empty_token, false, deadline::in(std::chrono::milliseconds(20)), pol);
  EXPECT_EQ(r, empty_token);
}

TEST(EliminationArena, SameModeNeverPairs) {
  // Two producers must never exchange with each other.
  elimination_arena<1> arena; // force the same slot
  auto pol = sync::spin_policy::adaptive();
  item_token t1 = item_codec<int>::encode(1);
  item_token t2 = item_codec<int>::encode(2);
  std::atomic<item_token> r1{empty_token}, r2{empty_token};
  std::thread a([&] {
    r1.store(arena.try_eliminate(t1, true,
                                 deadline::in(std::chrono::milliseconds(40)),
                                 pol));
  });
  std::thread b([&] {
    r2.store(arena.try_eliminate(t2, true,
                                 deadline::in(std::chrono::milliseconds(40)),
                                 pol));
  });
  a.join();
  b.join();
  // At most... in fact exactly zero can succeed (no consumer exists).
  EXPECT_EQ(r1.load(), empty_token);
  EXPECT_EQ(r2.load(), empty_token);
  item_codec<int>::dispose(t1);
  item_codec<int>::dispose(t2);
}

// ------------------------------------------------------- eliminating SQ

TEST(EliminatingSq, PairHandoff) {
  eliminating_sq<int> q;
  std::thread p([&] { q.put(5); });
  EXPECT_EQ(q.take(), 5);
  p.join();
}

TEST(EliminatingSq, ManyHandoffsConserve) {
  eliminating_sq<int> q;
  const int n = 3000;
  std::thread p([&] {
    for (int i = 0; i < n; ++i) q.put(i);
  });
  long sum = 0;
  for (int i = 0; i < n; ++i) sum += q.take();
  p.join();
  EXPECT_EQ(sum, static_cast<long>(n - 1) * n / 2);
}

TEST(EliminatingSq, NToNConservation) {
  eliminating_sq<int> q;
  const int np = 3, nc = 3, per = 1500;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
}

TEST(EliminatingSq, OfferPollBypassArena) {
  eliminating_sq<int> q;
  EXPECT_FALSE(q.offer(1));
  EXPECT_FALSE(q.poll().has_value());
  EXPECT_FALSE(q.poll(deadline::in(std::chrono::milliseconds(15))).has_value());
}

TEST(EliminatingSq, BoxedPayload) {
  eliminating_sq<std::string> q;
  std::thread p([&] { q.put("eliminated"); });
  EXPECT_EQ(q.take(), "eliminated");
  p.join();
}
