// Tests for the ThreadPoolExecutor analogue over several handoff channels.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baselines/java5_sq.hpp"
#include "core/synchronous_queue.hpp"
#include "executor/thread_pool_executor.hpp"

using namespace ssq;

using new_unfair_q = synchronous_queue<unique_task, false>;
using new_fair_q = synchronous_queue<unique_task, true>;
using j5_fair_q = java5_sq<unique_task, true>;
using j5_unfair_q = java5_sq<unique_task, false>;

// ------------------------------------------------------------ unique_task

TEST(UniqueTask, RunsCapturedCallable) {
  int x = 0;
  unique_task t([&] { x = 7; });
  ASSERT_TRUE(static_cast<bool>(t));
  t();
  EXPECT_EQ(x, 7);
}

TEST(UniqueTask, MoveOnlyCapture) {
  auto p = std::make_unique<int>(3);
  unique_task t([q = std::move(p)] { EXPECT_EQ(*q, 3); });
  t();
}

TEST(UniqueTask, DefaultIsEmpty) {
  unique_task t;
  EXPECT_FALSE(static_cast<bool>(t));
}

TEST(UniqueTask, MoveTransfersOwnership) {
  int x = 0;
  unique_task a([&] { ++x; });
  unique_task b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(x, 1);
}

// ------------------------------------------------------------- executor

template <typename Q>
class ExecutorOverChannels : public ::testing::Test {};

using Channels =
    ::testing::Types<new_unfair_q, new_fair_q, j5_fair_q, j5_unfair_q>;
TYPED_TEST_SUITE(ExecutorOverChannels, Channels);

TYPED_TEST(ExecutorOverChannels, RunsAllTasks) {
  thread_pool_executor<TypeParam> ex(
      {0, 128, std::chrono::milliseconds(200)});
  std::atomic<int> done{0};
  const int n = 400;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(ex.submit([&] { done++; }));
  while (done.load() < n) std::this_thread::yield();
  EXPECT_EQ(ex.completed_count(), static_cast<std::uint64_t>(n));
}

TYPED_TEST(ExecutorOverChannels, ReusesIdleWorkers) {
  thread_pool_executor<TypeParam> ex({0, 256, std::chrono::seconds(10)});
  std::atomic<int> done{0};
  const int n = 300;
  // Sequential short tasks: with a generous keep-alive the pool must not
  // spawn a worker per task.
  for (int i = 0; i < n; ++i) {
    ex.submit([&] { done++; });
    while (done.load() <= i) std::this_thread::yield();
  }
  EXPECT_LT(ex.spawned_count(), static_cast<std::uint64_t>(n / 2))
      << "idle workers must be reused via the handoff channel";
}

TYPED_TEST(ExecutorOverChannels, KeepAliveShrinksPool) {
  thread_pool_executor<TypeParam> ex({0, 64, std::chrono::milliseconds(40)});
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i)
    ex.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done++;
    });
  while (done.load() < 16) std::this_thread::yield();
  // All workers idle now; keep-alive must retire them.
  auto dl = deadline::in(std::chrono::seconds(30));
  while (ex.pool_size() != 0 && !dl.expired_now())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ex.pool_size(), 0u);
}

TYPED_TEST(ExecutorOverChannels, ShutdownRejectsNewWork) {
  thread_pool_executor<TypeParam> ex({0, 16, std::chrono::seconds(5)});
  std::atomic<int> done{0};
  ex.submit([&] { done++; });
  while (done.load() < 1) std::this_thread::yield();
  ex.shutdown();
  EXPECT_FALSE(ex.submit([&] { done++; }));
  ex.join();
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(ex.pool_size(), 0u);
}

TYPED_TEST(ExecutorOverChannels, ShutdownWakesIdleWorkers) {
  auto t0 = steady_clock::now();
  {
    thread_pool_executor<TypeParam> ex({0, 8, std::chrono::hours(1)});
    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) ex.submit([&] { done++; });
    while (done.load() < 4) std::this_thread::yield();
    // Destructor performs shutdown + join; workers hold a 1h keep-alive and
    // must be interrupted out of it.
  }
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(30))
      << "idle workers were not interrupted on shutdown";
}

TYPED_TEST(ExecutorOverChannels, ThrowingTaskDoesNotKillPool) {
  thread_pool_executor<TypeParam> ex({0, 16, std::chrono::seconds(5)});
  std::atomic<int> done{0};
  ex.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 50; ++i) ex.submit([&] { done++; });
  while (done.load() < 50) std::this_thread::yield();
  EXPECT_EQ(ex.task_exception_count(), 1u);
  EXPECT_EQ(ex.completed_count(), 50u);
}

TEST(Executor, MaxPoolSizeIsRespected) {
  // At the cap, execute() blocks until a worker frees (synchronous channel,
  // no buffering), so submissions must come from their own threads.
  thread_pool_executor<new_unfair_q> ex({0, 3, std::chrono::seconds(10)});
  std::atomic<int> running{0}, peak{0}, release{0}, done{0};
  const int n = 9;
  std::vector<std::thread> submitters;
  for (int i = 0; i < n; ++i)
    submitters.emplace_back([&] {
      ex.submit([&] {
        int r = running.fetch_add(1) + 1;
        int p = peak.load();
        while (r > p && !peak.compare_exchange_weak(p, r)) {
        }
        while (!release.load()) std::this_thread::yield();
        running.fetch_sub(1);
        done++;
      });
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(ex.largest_pool_size(), 3u);
  release.store(1);
  for (auto &t : submitters) t.join();
  while (done.load() < n) std::this_thread::yield();
  EXPECT_LE(peak.load(), 3);
}

TEST(Executor, CoreWorkersSurviveKeepAlive) {
  thread_pool_executor<new_unfair_q> ex({2, 8, std::chrono::milliseconds(30)});
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) ex.submit([&] { done++; });
  while (done.load() < 8) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  EXPECT_LE(ex.pool_size(), 2u) << "extra workers retire";
  EXPECT_GE(ex.pool_size(), 1u) << "core workers persist";
  // Core workers still serve new work.
  std::atomic<int> more{0};
  ex.submit([&] { more++; });
  while (more.load() < 1) std::this_thread::yield();
}

TEST(Executor, ParallelSubmittersStress) {
  thread_pool_executor<new_fair_q> ex({0, 64, std::chrono::milliseconds(300)});
  std::atomic<int> done{0};
  const int nsub = 4, per = 500;
  std::vector<std::thread> subs;
  for (int s = 0; s < nsub; ++s)
    subs.emplace_back([&] {
      for (int i = 0; i < per; ++i) ex.submit([&] { done++; });
    });
  for (auto &t : subs) t.join();
  while (done.load() < nsub * per) std::this_thread::yield();
  EXPECT_EQ(ex.completed_count(), static_cast<std::uint64_t>(nsub * per));
}
