// Tests for the N-lane sharded handoff fabric (core/fabric.hpp): lane-count
// policy, single-lane equivalence with the plain facade contract, d-choice
// pairing under skewed thread counts, bulk spill/detach completeness,
// cancellation storms with a full-reclamation assertion, and select over a
// fabric-cored queue (polling path).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/fabric.hpp"
#include "core/select.hpp"
#include "core/synchronous_queue.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

namespace {

using unfair_fab = fabric_synchronous_queue<std::uint64_t>;
using fair_fab = fair_fabric_synchronous_queue<std::uint64_t>;

item_token tok_of(int v) { return item_codec<int>::encode(v); }

} // namespace

// ------------------------------------------------------------ configuration

TEST(Fabric, LaneCountPolicy) {
  unfair_fab one{fabric_config{1}};
  EXPECT_EQ(one.core().lane_count(), 1u);
  EXPECT_FALSE(one.core().fair());

  fair_fab four{fabric_config{4}};
  EXPECT_EQ(four.core().lane_count(), 4u);
  EXPECT_TRUE(four.core().fair());

  // Auto (lanes = 0): min(hardware_concurrency, 8), at least 1.
  unfair_fab aut{fabric_config{}};
  EXPECT_GE(aut.core().lane_count(), 1u);
  EXPECT_LE(aut.core().lane_count(), 8u);

  // Default-constructed facade resolves the same auto policy.
  unfair_fab dflt;
  EXPECT_EQ(dflt.core().lane_count(), aut.core().lane_count());
}

// ------------------------------------------------- single-lane equivalence

TEST(Fabric, SingleLaneBehavesLikePlainQueue) {
  unfair_fab q{fabric_config{1}};

  // Non-blocking ops against an empty queue fail, exactly like any core.
  EXPECT_FALSE(q.offer(1));
  EXPECT_FALSE(q.poll().has_value());
  EXPECT_TRUE(q.is_empty());

  // Timed ops expire without a counterpart.
  EXPECT_FALSE(q.try_put(2, deadline::in(std::chrono::milliseconds(5))));
  EXPECT_FALSE(
      q.try_take(deadline::in(std::chrono::milliseconds(5))).has_value());

  // Cross-thread synchronous handoff, both directions.
  std::thread p([&] { q.put(42); });
  EXPECT_EQ(q.take(), 42u);
  p.join();

  std::thread c([&] { EXPECT_EQ(q.take(), 43u); });
  q.put(43);
  c.join();
  EXPECT_TRUE(q.is_empty());
}

TEST(Fabric, SingleLanePingPongConservation) {
  for (std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    unfair_fab q{fabric_config{lanes}};
    const int n = 2000;
    std::atomic<std::uint64_t> got_sum{0};
    std::thread c([&] {
      for (int i = 0; i < n; ++i) got_sum.fetch_add(q.take());
    });
    std::uint64_t put_sum = 0;
    for (int i = 1; i <= n; ++i) {
      q.put(static_cast<std::uint64_t>(i));
      put_sum += static_cast<std::uint64_t>(i);
    }
    c.join();
    EXPECT_EQ(got_sum.load(), put_sum) << "lanes=" << lanes;
    EXPECT_TRUE(q.is_empty());
  }
}

// ------------------------------------------- d-choice pairing under skew

TEST(Fabric, DChoicePairingUnderSkewedCounts) {
  // Many producers, few consumers, more lanes than consumers: d-choice
  // probing plus the full-lane scan must pair everyone; no items lost, no
  // consumer starved forever.
  unfair_fab q{fabric_config{4}};
  const int producers = 6, consumers = 2;
  const int per_producer = 500;
  const int total = producers * per_producer;

  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> ts;
  for (int c = 0; c < consumers; ++c) {
    ts.emplace_back([&] {
      for (;;) {
        if (consumed.load(std::memory_order_acquire) >= total) return;
        auto v = q.try_take(deadline::in(std::chrono::milliseconds(50)));
        if (v) {
          consumed_sum.fetch_add(*v);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  std::uint64_t produced_sum = 0;
  std::vector<std::thread> ps;
  for (int p = 0; p < producers; ++p) {
    ps.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i)
        q.put(static_cast<std::uint64_t>(p * per_producer + i + 1));
    });
    for (int i = 0; i < per_producer; ++i)
      produced_sum += static_cast<std::uint64_t>(p * per_producer + i + 1);
  }
  for (auto &t : ps) t.join();
  for (auto &t : ts) t.join();
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(consumed_sum.load(), produced_sum);
  EXPECT_TRUE(q.is_empty());
}

TEST(Fabric, FairModeSkewedCounts) {
  // The round-robin pairing must stay live when ranks get misaligned by
  // timeouts: odd counts + short-patience noise ops.
  fair_fab q{fabric_config{3}};
  const int total = 1500;
  std::atomic<int> consumed{0};
  // Micro-patience noise: mostly times out (bumping the round-robin rank
  // without pairing), but any win still counts toward the total.
  std::thread noise([&] {
    for (int i = 0; i < 300; ++i)
      if (q.try_take(deadline::in(std::chrono::microseconds(50))))
        consumed.fetch_add(1, std::memory_order_acq_rel);
  });
  std::thread c([&] {
    while (consumed.load(std::memory_order_acquire) < total)
      if (q.try_take(deadline::in(std::chrono::milliseconds(20))))
        consumed.fetch_add(1, std::memory_order_acq_rel);
  });
  std::vector<std::thread> ps;
  for (int p = 0; p < 3; ++p)
    ps.emplace_back([&] {
      for (int i = 0; i < total / 3; ++i) q.put(1);
    });
  for (auto &t : ps) t.join();
  noise.join();
  c.join();
  EXPECT_EQ(consumed.load(), total);
}

// --------------------------------------------------- bulk spill / detach

TEST(Fabric, BulkDetachDrainCompleteness) {
  // Async puts with nobody waiting spill; every spilled item must come
  // back out exactly once through the bulk stash, oldest-first per run.
  unfair_fab q{fabric_config{2}};
  const std::uint64_t n = 500;
  for (std::uint64_t v = 1; v <= n; ++v) q.put_async(v);
  EXPECT_EQ(q.unsafe_length(), n);
  EXPECT_FALSE(q.is_empty());

  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    auto v = q.poll();
    ASSERT_TRUE(v.has_value()) << "lost spilled item after " << i;
    EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
  }
  EXPECT_FALSE(q.poll().has_value());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(q.is_empty());
  EXPECT_EQ(q.unsafe_length(), 0u);
}

TEST(Fabric, BulkDetachConcurrentProducersAndConsumers) {
  // Spill from many async producers while consumers drain concurrently:
  // the detach exchange, thread-local reversal, and stash pops must not
  // lose or duplicate anything.
  fair_fab q{fabric_config{4}};
  const int producers = 4, per_producer = 1000;
  const int total = producers * per_producer;
  std::vector<std::thread> ps;
  for (int p = 0; p < producers; ++p)
    ps.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i)
        q.put_async(static_cast<std::uint64_t>(p * per_producer + i + 1));
    });
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> got{0};
  std::vector<std::thread> cs;
  for (int c = 0; c < 2; ++c)
    cs.emplace_back([&] {
      while (got.load(std::memory_order_acquire) < total) {
        auto v = q.try_take(deadline::in(std::chrono::milliseconds(20)));
        if (v) {
          sum.fetch_add(*v);
          got.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  for (auto &t : ps) t.join();
  for (auto &t : cs) t.join();
  EXPECT_EQ(got.load(), total);
  EXPECT_EQ(sum.load(),
            static_cast<std::uint64_t>(total) * (total + 1) / 2);
  EXPECT_TRUE(q.is_empty());
}

TEST(Fabric, TeardownDisposesSpilledTokens) {
  // Boxed payloads spilled and never consumed must go through the token
  // disposer in the destructor (leak-checked under ASan).
  synchronous_queue<std::string, false, mem::pooled_hp_reclaimer,
                    core_kind::fabric>
      q{fabric_config{2}};
  for (int i = 0; i < 64; ++i)
    q.put_async(std::string(128, static_cast<char>('a' + i % 26)));
  EXPECT_EQ(q.unsafe_length(), 64u);
  // Destructor runs here.
}

// ------------------------------------------------- cancellation / reclaim

TEST(Fabric, CancellationStormFullReclamation) {
  // Micro-patience timed ops from both sides, a slice of async spill
  // traffic, and interrupts -- then everything must reclaim: every
  // fab_node and every lane-queue node allocated is freed once the domain
  // drains and the fabric is destroyed.
  diag::reset_all();
  {
    mem::hazard_domain dom;
    fabric<segment_queue<>, mem::pooled_hp_reclaimer> fab(
        fabric_config{4}, sync::spin_policy::adaptive(),
        mem::pooled_hp_reclaimer{&dom});
    std::atomic<long> in{0}, out{0};
    std::atomic<int> net{0};
    std::vector<std::thread> ts;
    const int threads = 6, iters = 3000;
    for (int t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        for (int i = 0; i < iters; ++i) {
          if ((t + i) % 2 == 0) {
            int v = t * iters + i + 1;
            if (i % 16 == 0) {
              // Async slice: spills when no consumer is camped.
              fab.xfer(tok_of(v), true, wait_kind::async);
              in.fetch_add(v);
              net.fetch_add(1);
            } else {
              item_token r = fab.xfer(
                  tok_of(v), true, wait_kind::timed,
                  deadline::in(std::chrono::microseconds(15 + i % 40)));
              if (r != empty_token) {
                in.fetch_add(v);
                net.fetch_add(1);
              }
            }
          } else {
            item_token r = fab.xfer(
                empty_token, false, wait_kind::timed,
                deadline::in(std::chrono::microseconds(15 + i % 40)));
            if (r != empty_token) {
              out.fetch_add(item_codec<int>::decode_consume(r));
              net.fetch_sub(1);
            }
          }
        }
      });
    }
    for (auto &t : ts) t.join();
    // Drain the async leftovers so conservation closes.
    for (;;) {
      item_token r = fab.xfer(empty_token, false, wait_kind::timed,
                              deadline::in(std::chrono::milliseconds(50)));
      if (r == empty_token) break;
      out.fetch_add(item_codec<int>::decode_consume(r));
      net.fetch_sub(1);
    }
    EXPECT_EQ(net.load(), 0);
    EXPECT_EQ(in.load(), out.load());
    dom.drain();
  }
  // Fabric destroyed, domain drained: full reclamation, nothing parked
  // behind a hazard or lost in a spill run.
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

// ------------------------------------------------------------------ select

TEST(Fabric, SelectTakeOverFabricQueues) {
  // The fabric is not a registering core (no cross-lane reservation
  // protocol), so select must drive it through the polling path.
  unfair_fab a{fabric_config{2}};
  fair_fab b{fabric_config{2}};
  std::thread p([&] { b.put(42); });
  auto r = select_take<std::uint64_t>(deadline::in(std::chrono::seconds(10)),
                                      a, b);
  p.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 42u);

  auto t0 = steady_clock::now();
  auto miss = select_take<std::uint64_t>(
      deadline::in(std::chrono::milliseconds(40)), a, b);
  EXPECT_FALSE(miss.has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(35));
}

TEST(Fabric, SelectPutIntoFabricQueue) {
  unfair_fab a{fabric_config{2}};
  fair_fab b{fabric_config{2}};
  std::atomic<std::uint64_t> got{0};
  std::thread c([&] { got.store(b.take()); });
  std::uint64_t v = 9;
  auto idx = select_put(v, deadline::in(std::chrono::seconds(10)), a, b);
  c.join();
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(got.load(), 9u);
}
