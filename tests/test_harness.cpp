// Tests for the benchmark harness: stats, tables, options, and the handoff
// runner (run against a real queue so the harness itself is validated).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/synchronous_queue.hpp"
#include "harness/options.hpp"
#include "harness/runner.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace ssq;
using namespace ssq::harness;

// ---------------------------------------------------------------- stats

TEST(Stats, EmptyInput) {
  auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, SingleSample) {
  auto s = summarize({5.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownDistribution) {
  auto s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, 2.138, 0.01); // sample stddev
}

TEST(Stats, MedianOddCount) {
  auto s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.125), 15.0); // between ranks
}

TEST(Stats, PercentileEdgeCases) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(percentile(empty, 0.5), 0.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);
  std::vector<double> unsorted{3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(unsorted, 0.5), 2.0) << "must sort input";
  EXPECT_DOUBLE_EQ(percentile(unsorted, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(unsorted, 2.0), 3.0);
}

// ---------------------------------------------------------------- table

TEST(Table, FormatsAndWritesCsv) {
  table t({"N", "algo_a", "algo_b"});
  t.add_row({"1", table::fmt(1234.56, 1), table::fmt(7.0, 1)});
  t.add_row({"2", "8.0", "9.5"});
  std::string path = ::testing::TempDir() + "/ssq_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));

  FILE *f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "N,algo_a,algo_b\n");
  ASSERT_NE(std::fgets(line, sizeof line, f), nullptr);
  EXPECT_STREQ(line, "1,1234.6,7.0\n");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(table::fmt(3.0, 0), "3");
}

// ---------------------------------------------------------------- options

TEST(Options, ParsesKeyValues) {
  const char *argv[] = {"prog", "--reps=5", "--csv=out.csv", "--verbose"};
  auto o = options::parse(4, const_cast<char **>(argv));
  EXPECT_EQ(o.get_int("reps", 1), 5);
  EXPECT_EQ(o.get("csv", ""), "out.csv");
  EXPECT_TRUE(o.has("verbose"));
  EXPECT_FALSE(o.has("missing"));
  EXPECT_EQ(o.get_int("missing", 42), 42);
}

TEST(Options, ParsesIntLists) {
  const char *argv[] = {"prog", "--threads=1,2,4,8"};
  auto o = options::parse(2, const_cast<char **>(argv));
  auto v = o.get_int_list("threads", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 8);
  auto dflt = o.get_int_list("none", {3});
  ASSERT_EQ(dflt.size(), 1u);
  EXPECT_EQ(dflt[0], 3);
}

TEST(Options, ParsesDoubles) {
  const char *argv[] = {"prog", "--scale=2.5"};
  auto o = options::parse(2, const_cast<char **>(argv));
  EXPECT_DOUBLE_EQ(o.get_double("scale", 1.0), 2.5);
}

// ---------------------------------------------------------------- runner

TEST(Runner, SplitQuotaIsExact) {
  auto q = split_quota(10, 3);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0] + q[1] + q[2], 10u);
  EXPECT_EQ(q[0], 4u);
  EXPECT_EQ(q[1], 3u);
  EXPECT_EQ(q[2], 3u);
}

TEST(Runner, RunThreadsTimedMeasuresWallClock) {
  auto secs = run_threads_timed({[] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }});
  EXPECT_GE(secs, 0.045);
  EXPECT_LT(secs, 10.0);
}

TEST(Runner, HandoffRunChecksums) {
  synchronous_queue<std::uint64_t, false> q;
  auto r = run_handoff(q, 2, 2, 2000);
  EXPECT_TRUE(r.checksum_ok);
  EXPECT_EQ(r.transfers, 2000u);
  EXPECT_GT(r.ns_per_transfer, 0.0);
}

TEST(Runner, HandoffAsymmetricTopologies) {
  synchronous_queue<std::uint64_t, true> q;
  auto r1 = run_handoff(q, 1, 3, 900);
  EXPECT_TRUE(r1.checksum_ok);
  auto r2 = run_handoff(q, 3, 1, 900);
  EXPECT_TRUE(r2.checksum_ok);
}
