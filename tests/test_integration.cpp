// Cross-module integration tests: multi-stage pipelines, executor +
// TransferQueue composition, end-to-end shutdown, and a randomized soak of
// the whole public surface.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/exchanger.hpp"
#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "executor/thread_pool_executor.hpp"
#include "support/rng.hpp"

using namespace ssq;

TEST(Integration, ThreeStagePipelineDrainsInOrder) {
  // tokenizer -> mapper -> reducer over fair queues: per-stage FIFO
  // composition must preserve global order.
  fair_synchronous_queue<int> s1, s2;
  std::vector<int> out;
  const int n = 500;

  std::thread stage1([&] {
    for (int i = 0; i < n; ++i) s1.put(i);
    s1.put(-1);
  });
  std::thread stage2([&] {
    for (;;) {
      int v = s1.take();
      s2.put(v < 0 ? v : v * 2);
      if (v < 0) return;
    }
  });
  std::thread stage3([&] {
    for (;;) {
      int v = s2.take();
      if (v < 0) return;
      out.push_back(v);
    }
  });
  stage1.join();
  stage2.join();
  stage3.join();

  ASSERT_EQ(out.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * i);
  EXPECT_TRUE(s1.is_empty());
  EXPECT_TRUE(s2.is_empty());
}

TEST(Integration, BackpressureLimitsInFlightItems) {
  // With synchronous coupling, a stalled sink must stall the source after
  // at most one in-flight item per stage.
  unfair_synchronous_queue<int> q;
  std::atomic<int> produced{0};
  std::atomic<bool> release{false};
  std::thread src([&] {
    for (int i = 0; i < 10; ++i) {
      q.put(i);
      produced.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(produced.load(), 1) << "synchronous queue must not buffer";
  std::thread sink([&] {
    while (!release.load()) std::this_thread::yield();
    for (int i = 0; i < 10; ++i) (void)q.take();
  });
  release.store(true);
  src.join();
  sink.join();
  EXPECT_EQ(produced.load(), 10);
}

TEST(Integration, ExecutorOverLinkedTransferQueue) {
  // The LTQ accepts tasks without blocking submitters (buffered channel):
  // the pool degenerates gracefully to a single-worker queue drain when
  // max_pool_size is 1.
  thread_pool_executor<linked_transfer_queue<unique_task>> ex(
      {0, 1, std::chrono::milliseconds(200)});
  std::atomic<int> order_errors{0}, last{-1}, done{0};
  const int n = 200;
  for (int i = 0; i < n; ++i)
    ex.submit([&, i] {
      if (last.exchange(i) != i - 1) order_errors.fetch_add(1);
      done.fetch_add(1);
    });
  while (done.load() < n) std::this_thread::yield();
  EXPECT_EQ(order_errors.load(), 0)
      << "single worker over FIFO channel must preserve submit order";
  EXPECT_LE(ex.largest_pool_size(), 1u);
}

TEST(Integration, FanOutFanInWithExchangerBarrier) {
  // Two workers process halves of a workload, then swap digests through
  // the exchanger to cross-verify (a rendezvous barrier with data).
  unfair_synchronous_queue<int> feed;
  exchanger<std::uint64_t> swap;
  std::atomic<bool> agree{false};

  auto worker = [&](int quota, std::uint64_t *others_sum) {
    std::uint64_t sum = 0;
    for (int i = 0; i < quota; ++i) sum += static_cast<std::uint64_t>(feed.take());
    *others_sum = swap.exchange(sum);
  };
  std::uint64_t a_sees = 0, b_sees = 0, a_sum = 0, b_sum = 0;
  std::thread wa([&] { worker(50, &a_sees); });
  std::thread wb([&] { worker(50, &b_sees); });
  std::uint64_t total = 0;
  for (int i = 0; i < 100; ++i) {
    feed.put(i);
    total += static_cast<std::uint64_t>(i);
  }
  wa.join();
  wb.join();
  // Each saw the other's digest; the two digests must sum to the feed.
  a_sum = b_sees; // what B computed, reported to A... (swapped)
  b_sum = a_sees;
  agree.store(a_sum + b_sum == total);
  EXPECT_TRUE(agree.load());
}

TEST(Integration, GracefulShutdownUnderLoad) {
  auto t0 = steady_clock::now();
  std::atomic<int> done{0};
  {
    thread_pool_executor<synchronous_queue<unique_task, false>> ex(
        {0, 32, std::chrono::seconds(30)});
    for (int i = 0; i < 100; ++i)
      ex.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1);
      });
    while (done.load() < 100) std::this_thread::yield();
    ex.shutdown();
    ex.join();
    EXPECT_EQ(ex.pool_size(), 0u);
  }
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(60));
  EXPECT_EQ(done.load(), 100);
}

TEST(Integration, RandomizedSoakAllOperations) {
  // Randomized mix of every public operation on both queue flavors;
  // validates conservation under arbitrary interleavings of sync, timed,
  // and non-blocking paths.
  synchronous_queue<std::uint64_t, true> fair;
  synchronous_queue<std::uint64_t, false> unfair;
  std::atomic<std::uint64_t> in{0}, out{0};
  std::atomic<int> consumed{0};
  const int total_target = 4000;
  std::atomic<std::uint64_t> seq{1};
  std::atomic<bool> producers_done{false};

  auto producer = [&](std::uint64_t seed) {
    xoshiro256 rng(seed);
    for (int i = 0; i < total_target / 4; ++i) {
      std::uint64_t v = seq.fetch_add(1);
      bool use_fair = rng.chance(1, 2);
      for (;;) {
        bool sent;
        switch (rng.below(3)) {
          case 0:
            if (use_fair)
              fair.put(v);
            else
              unfair.put(v);
            sent = true;
            break;
          case 1:
            sent = use_fair
                       ? fair.try_put(v, std::chrono::milliseconds(1))
                       : unfair.try_put(v, std::chrono::milliseconds(1));
            break;
          default:
            sent = use_fair ? fair.offer(v) : unfair.offer(v);
            break;
        }
        if (sent) break;
      }
      in.fetch_add(v);
    }
  };
  auto consumer = [&](std::uint64_t seed) {
    xoshiro256 rng(seed);
    while (consumed.load() < total_target) {
      bool use_fair = rng.chance(1, 2);
      std::optional<std::uint64_t> v;
      switch (rng.below(2)) {
        case 0:
          v = use_fair ? fair.try_take(std::chrono::milliseconds(1))
                       : unfair.try_take(std::chrono::milliseconds(1));
          break;
        default:
          v = use_fair ? fair.poll() : unfair.poll();
          break;
      }
      if (v) {
        out.fetch_add(*v);
        consumed.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) ts.emplace_back(producer, 1000 + i);
  for (int i = 0; i < 4; ++i) ts.emplace_back(consumer, 2000 + i);
  for (auto &t : ts) t.join();
  producers_done.store(true);
  EXPECT_EQ(in.load(), out.load());
  EXPECT_EQ(consumed.load(), total_target);
}

TEST(Integration, ManyQueuesShareTheGlobalHazardDomain) {
  // Dozens of short-lived queues sharing the global domain must not
  // interfere (retired nodes of one must not pin another's reclamation).
  for (int round = 0; round < 30; ++round) {
    synchronous_queue<int, false> q;
    std::thread p([&] {
      for (int i = 0; i < 50; ++i) q.put(i);
    });
    for (int i = 0; i < 50; ++i) (void)q.take();
    p.join();
  }
  mem::hazard_domain::global().drain();
  EXPECT_LT(mem::hazard_domain::global().approx_retired(), 1000u);
}
