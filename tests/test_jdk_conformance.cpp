// JDK SynchronousQueue specification conformance.
//
// The paper's algorithms shipped as java.util.concurrent.SynchronousQueue
// in Java 6; this suite checks the behaviours the JDK javadoc *specifies*
// (many sourced from the JSR-166 TCK), against both fairness modes.
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <thread>
#include <vector>

#include "core/synchronous_queue.hpp"

using namespace ssq;

template <typename Q>
class JdkSpec : public ::testing::Test {};

using Modes = ::testing::Types<synchronous_queue<int, true>,
                               synchronous_queue<int, false>>;
TYPED_TEST_SUITE(JdkSpec, Modes);

// "A synchronous queue does not have any internal capacity, not even a
// capacity of one."
TYPED_TEST(JdkSpec, SizeIsAlwaysZero) {
  TypeParam q;
  EXPECT_EQ(q.size(), 0u);
  std::thread p([&] { q.put(1); });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  EXPECT_EQ(q.size(), 0u) << "waiting producers are not contents";
  (void)q.take();
  p.join();
}

TYPED_TEST(JdkSpec, RemainingCapacityIsAlwaysZero) {
  TypeParam q;
  EXPECT_EQ(q.remaining_capacity(), 0u);
}

// "peek ... always returns null" / "isEmpty always returns true".
TYPED_TEST(JdkSpec, PeekIsAlwaysEmpty) {
  TypeParam q;
  EXPECT_FALSE(q.peek().has_value());
  EXPECT_TRUE(q.empty());
  std::thread p([&] { q.put(2); });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  EXPECT_FALSE(q.peek().has_value()) << "peek must not observe a waiter";
  (void)q.take();
  p.join();
}

// "poll() ... returns null unless another thread is currently making an
// element available."
TYPED_TEST(JdkSpec, ZeroTimeoutPollIsImmediate) {
  TypeParam q;
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q.poll().has_value());
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(1));
}

// "offer(e) ... succeeds only if another thread is waiting to receive it."
TYPED_TEST(JdkSpec, OfferNeedsAReceiver) {
  TypeParam q;
  EXPECT_FALSE(q.offer(1));
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(*q.try_take(std::chrono::seconds(20))); });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  EXPECT_TRUE(q.offer(7));
  c.join();
  EXPECT_EQ(got.load(), 7);
}

// drainTo "transfers elements only if a producer is already waiting".
TYPED_TEST(JdkSpec, DrainToTakesOnlyWaitingProducers) {
  TypeParam q;
  std::vector<int> out;
  EXPECT_EQ(q.drain_to(std::back_inserter(out)), 0u);

  std::vector<std::thread> ps;
  for (int i = 0; i < 3; ++i) ps.emplace_back([&, i] { q.put(i + 1); });
  while (q.unsafe_length() < 3) std::this_thread::yield();
  std::size_t n = q.drain_to(std::back_inserter(out));
  for (auto &t : ps) t.join();
  EXPECT_EQ(n, 3u);
  long sum = 0;
  for (int v : out) sum += v;
  EXPECT_EQ(sum, 6);
}

TYPED_TEST(JdkSpec, DrainToHonorsMaxElements) {
  TypeParam q;
  std::vector<std::thread> ps;
  for (int i = 0; i < 4; ++i) ps.emplace_back([&, i] { q.put(i + 1); });
  while (q.unsafe_length() < 4) std::this_thread::yield();
  std::vector<int> out;
  EXPECT_EQ(q.drain_to(std::back_inserter(out), 2), 2u);
  EXPECT_EQ(out.size(), 2u);
  // The remaining two producers are still waiting.
  EXPECT_EQ(q.drain_to(std::back_inserter(out)), 2u);
  for (auto &t : ps) t.join();
}

// Timed poll returns the element if one becomes available within patience.
TYPED_TEST(JdkSpec, TimedPollReceivesLateProducer) {
  TypeParam q;
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    q.put(5);
  });
  auto v = q.try_take(std::chrono::seconds(20));
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

// Interruptible blocking (Java: put/take throw InterruptedException).
TYPED_TEST(JdkSpec, BlockedTakeIsInterruptible) {
  TypeParam q;
  sync::interrupt_token tok;
  std::atomic<bool> aborted{false};
  std::thread c([&] {
    aborted.store(!q.try_take(deadline::unbounded(), &tok).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  tok.interrupt();
  c.join();
  EXPECT_TRUE(aborted.load());
}

TYPED_TEST(JdkSpec, BlockedPutIsInterruptible) {
  TypeParam q;
  sync::interrupt_token tok;
  std::atomic<bool> aborted{false};
  std::thread p([&] {
    aborted.store(!q.try_put(1, deadline::unbounded(), &tok));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  tok.interrupt();
  p.join();
  EXPECT_TRUE(aborted.load());
}

// The fairness contract: "ordering is not guaranteed [unfair]; a queue
// constructed with fairness set to true grants threads access in FIFO
// order."
TEST(JdkSpecFairness, FairModeIsFifo) {
  synchronous_queue<int, true> q;
  std::atomic<int> first{-1};
  std::thread c1([&] { first.store(q.take()); });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  std::thread c2([&] { (void)q.take(); });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  q.put(10);
  q.put(20);
  c1.join();
  c2.join();
  EXPECT_EQ(first.load(), 10);
}

// JDK behaviour inherited by our port: a timed offer with a waiting
// consumer completes without consuming any patience.
TYPED_TEST(JdkSpec, TimedOfferFastPathWithWaitingConsumer) {
  TypeParam q;
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(*q.try_take(std::chrono::seconds(20))); });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  auto t0 = steady_clock::now();
  EXPECT_TRUE(q.try_put(3, std::chrono::seconds(20)));
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5));
  c.join();
  EXPECT_EQ(got.load(), 3);
}
