// Synchrony and linearizability evidence tests.
//
// A synchronous queue gives us an unusually strong, *checkable* temporal
// property: a put and the take that receives its value must overlap in real
// time (neither can return before the pairing happened -- "threads shake
// hands and leave in pairs", §1). We record [invocation, response]
// intervals with the steady clock on both sides of every transfer and
// verify interval intersection for every matched pair, across all
// implementations.
//
// For the fair queue we additionally check the §2.2 ordering property on
// *sequentially issued* requests: if consumer A's take provably returned a
// reservation into the queue before consumer B's take was invoked, A must
// be served first.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

namespace {

struct op_record {
  std::uint64_t value;
  steady_clock::time_point start;
  steady_clock::time_point end;
};

// Run np producers / nc consumers, recording intervals; verify that each
// value's put interval intersects its take interval.
template <typename Q>
void check_interval_overlap(int np, int nc, int per) {
  Q q;
  const int total = np * per;
  std::vector<std::vector<op_record>> puts(static_cast<std::size_t>(np)),
      takes(static_cast<std::size_t>(nc));

  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      auto &log = puts[static_cast<std::size_t>(p)];
      log.reserve(static_cast<std::size_t>(per));
      for (int i = 0; i < per; ++i) {
        std::uint64_t v =
            (static_cast<std::uint64_t>(p + 1) << 32) | static_cast<std::uint64_t>(i);
        op_record r;
        r.value = v;
        r.start = steady_clock::now();
        q.put(v);
        r.end = steady_clock::now();
        log.push_back(r);
      }
    });
  int cq = total / nc;
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&, c] {
      auto &log = takes[static_cast<std::size_t>(c)];
      int quota = cq + (c < total % nc ? 1 : 0);
      log.reserve(static_cast<std::size_t>(quota));
      for (int i = 0; i < quota; ++i) {
        op_record r;
        r.start = steady_clock::now();
        r.value = q.take();
        r.end = steady_clock::now();
        log.push_back(r);
      }
    });
  for (auto &t : ts) t.join();

  std::map<std::uint64_t, op_record> put_by_value;
  for (auto &log : puts)
    for (auto &r : log) {
      auto [it, fresh] = put_by_value.emplace(r.value, r);
      ASSERT_TRUE(fresh) << "duplicate produced value";
      (void)it;
    }

  int checked = 0;
  for (auto &log : takes)
    for (auto &r : log) {
      auto it = put_by_value.find(r.value);
      ASSERT_NE(it, put_by_value.end()) << "took a value never put";
      const op_record &p = it->second;
      // Intersection: put.start <= take.end && take.start <= put.end.
      EXPECT_LE(p.start, r.end)
          << "value taken before its put was even invoked";
      EXPECT_LE(r.start, p.end)
          << "put returned before its consumer had arrived -- "
             "synchrony violated";
      put_by_value.erase(it);
      ++checked;
    }
  EXPECT_EQ(checked, total);
  EXPECT_TRUE(put_by_value.empty()) << "some puts were never consumed";
}

} // namespace

TEST(Synchrony, NewUnfairIntervalsOverlap) {
  check_interval_overlap<synchronous_queue<std::uint64_t, false>>(3, 3, 800);
}

TEST(Synchrony, NewFairIntervalsOverlap) {
  check_interval_overlap<synchronous_queue<std::uint64_t, true>>(3, 3, 800);
}

TEST(Synchrony, Java5FairIntervalsOverlap) {
  check_interval_overlap<java5_sq<std::uint64_t, true>>(3, 3, 500);
}

TEST(Synchrony, Java5UnfairIntervalsOverlap) {
  check_interval_overlap<java5_sq<std::uint64_t, false>>(3, 3, 500);
}

TEST(Synchrony, NaiveIntervalsOverlap) {
  check_interval_overlap<naive_sq<std::uint64_t>>(2, 2, 300);
}

TEST(Synchrony, AsymmetricTopologies) {
  check_interval_overlap<synchronous_queue<std::uint64_t, false>>(1, 4, 600);
  check_interval_overlap<synchronous_queue<std::uint64_t, true>>(4, 1, 600);
}

// Hanson's queue is synchronous for the *pairing*, but its producer can
// return one handshake late (the sync semaphore is released by the consumer
// before take() returns). We still require value-conservation and that no
// take completes before its put started.
TEST(Synchrony, HansonNoTimeTravel) {
  hanson_sq<std::uint64_t> q;
  const int per = 500;
  std::vector<op_record> puts, takes;
  puts.reserve(per);
  takes.reserve(per);
  std::thread p([&] {
    for (int i = 0; i < per; ++i) {
      op_record r;
      r.value = static_cast<std::uint64_t>(i) + 1;
      r.start = steady_clock::now();
      q.put(r.value);
      r.end = steady_clock::now();
      puts.push_back(r);
    }
  });
  for (int i = 0; i < per; ++i) {
    op_record r;
    r.start = steady_clock::now();
    r.value = q.take();
    r.end = steady_clock::now();
    takes.push_back(r);
  }
  p.join();
  std::map<std::uint64_t, op_record> by_value;
  for (auto &r : puts) by_value.emplace(r.value, r);
  for (auto &r : takes) {
    auto it = by_value.find(r.value);
    ASSERT_NE(it, by_value.end());
    EXPECT_LE(it->second.start, r.end);
  }
}

// §2.2 ordering for the fair queue, with *provably ordered* requests:
// request A is linked (observable via unsafe_length) before request B is
// issued, so their linearization order is certain.
TEST(FairOrdering, SequencedRequestsServedInOrder) {
  for (int round = 0; round < 20; ++round) {
    fair_synchronous_queue<int> q;
    std::atomic<int> ra{-1}, rb{-1};
    std::thread a([&] { ra.store(q.take()); });
    while (q.unsafe_length() < 1) std::this_thread::yield();
    std::thread b([&] { rb.store(q.take()); });
    while (q.unsafe_length() < 2) std::this_thread::yield();
    q.put(1);
    q.put(2);
    a.join();
    b.join();
    ASSERT_EQ(ra.load(), 1) << "FIFO violated in round " << round;
    ASSERT_EQ(rb.load(), 2);
  }
}

// And the mirror: sequenced producers are consumed in order by sequenced
// consumers.
TEST(FairOrdering, SequencedProducersConsumedInOrder) {
  for (int round = 0; round < 20; ++round) {
    fair_synchronous_queue<int> q;
    std::thread p1([&] { q.put(101); });
    while (q.unsafe_length() < 1) std::this_thread::yield();
    std::thread p2([&] { q.put(202); });
    while (q.unsafe_length() < 2) std::this_thread::yield();
    ASSERT_EQ(q.take(), 101);
    ASSERT_EQ(q.take(), 202);
    p1.join();
    p2.join();
  }
}
