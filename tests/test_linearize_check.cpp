// Bounded linearizability checks: the recorded mixed workload
// (check/driver.hpp) over every implementation x both hazard-pointer
// reclaimers, validated by the synchronous-queue oracle. These are the
// ctest-sized versions of `torture --check=linearize`; the workload itself
// mixes every wait_kind (now / short-timed at the now-equivalence edge /
// long-timed / async where the structure offers it).
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "check/driver.hpp"
#include "check/oracle.hpp"
#include "check/schedule_fuzz.hpp"
#include "core/channel.hpp"
#include "core/eliminating_sq.hpp"
#include "core/exchanger.hpp"
#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;
using namespace ssq::check;

namespace {

driver_cfg small_cfg(std::uint64_t seed) {
  driver_cfg cfg;
  cfg.threads = 4;
  cfg.seed = seed;
  cfg.duration = std::chrono::milliseconds(400);
  cfg.max_ops_per_thread = 2000;
  return cfg;
}

template <typename Q>
void expect_clean_run(std::shared_ptr<Q> q, bool fair, std::uint64_t seed,
                      sync::interrupt_token *tok = nullptr) {
  checked_ops ops = make_checked_ops(q, fair, tok);
  driver_cfg cfg = small_cfg(seed);
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  driver_stats st;
  run_mixed(ops, cfg, rec, &st);
  rules r;
  // Lane-attributed impls promise FIFO per pairing lane, not globally
  // (check/oracle.hpp P4').
  r.fifo = fair && !ops.lanes;
  r.fifo_lanes = fair && ops.lanes;
  report rep = check_history(rec.collect(), r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(rep.pairs, 0u) << "workload transferred nothing";
}

} // namespace

// ------------------------------------------- dual queue / dual stack matrix

TEST(LinearizeCheck, FairPooledHp) {
  expect_clean_run(
      std::make_shared<
          synchronous_queue<std::uint64_t, true, mem::pooled_hp_reclaimer>>(),
      true, 101);
}

TEST(LinearizeCheck, FairPlainHp) {
  expect_clean_run(
      std::make_shared<
          synchronous_queue<std::uint64_t, true, mem::hp_reclaimer>>(),
      true, 102);
}

// Segmented core (core/segment_queue.hpp): FIFO pairing by cell index; the
// oracle's FIFO rule is load-bearing here.
TEST(LinearizeCheck, SegmentedPooledHp) {
  expect_clean_run(
      std::make_shared<segmented_synchronous_queue<std::uint64_t>>(), true,
      112);
}

TEST(LinearizeCheck, SegmentedPlainHp) {
  expect_clean_run(
      std::make_shared<
          synchronous_queue<std::uint64_t, true, mem::hp_reclaimer,
                            core_kind::segmented>>(),
      true, 113);
}

TEST(LinearizeCheck, UnfairPooledHp) {
  expect_clean_run(
      std::make_shared<
          synchronous_queue<std::uint64_t, false, mem::pooled_hp_reclaimer>>(),
      false, 103);
}

TEST(LinearizeCheck, UnfairPlainHp) {
  expect_clean_run(
      std::make_shared<
          synchronous_queue<std::uint64_t, false, mem::hp_reclaimer>>(),
      false, 104);
}

// ------------------------------------------------------------- baselines

TEST(LinearizeCheck, Java5Fair) {
  expect_clean_run(std::make_shared<java5_sq<std::uint64_t, true>>(), true,
                   105);
}

TEST(LinearizeCheck, Java5Unfair) {
  expect_clean_run(std::make_shared<java5_sq<std::uint64_t, false>>(), false,
                   106);
}

TEST(LinearizeCheck, Naive) {
  expect_clean_run(std::make_shared<naive_sq<std::uint64_t>>(), false, 107);
}

TEST(LinearizeCheck, Eliminating) {
  expect_clean_run(std::make_shared<eliminating_sq<std::uint64_t>>(), false,
                   108);
}

// The fair flavor: elimination handoffs may overtake the FIFO dual queue,
// so the relaxed per-lane rule (core pairings = lane 0, arena = exempt)
// is what keeps this checkable at all.
TEST(LinearizeCheck, EliminatingFair) {
  expect_clean_run(std::make_shared<fair_eliminating_sq<std::uint64_t>>(),
                   true, 116);
}

// ------------------------------------------------------------------ fabric

// Multi-lane fabric, fair mode: FIFO per lane + round-robin pairing; the
// async workload slice drives the spill/bulk-detach path (lane_bulk pairs).
TEST(LinearizeCheck, FabricFairFourLanes) {
  expect_clean_run(
      std::make_shared<fair_fabric_synchronous_queue<std::uint64_t>>(
          fabric_config{4}),
      true, 117);
}

TEST(LinearizeCheck, FabricUnfairFourLanes) {
  expect_clean_run(
      std::make_shared<fabric_synchronous_queue<std::uint64_t>>(
          fabric_config{4}),
      false, 118);
}

// Degenerate lane count: a 1-lane fair fabric must satisfy the per-lane
// spec trivially (every non-exempt pairing on lane 0).
TEST(LinearizeCheck, FabricFairSingleLane) {
  expect_clean_run(
      std::make_shared<fair_fabric_synchronous_queue<std::uint64_t>>(
          fabric_config{1}),
      true, 119);
}

// ------------------------------------------- elimination arena regression
//
// Satellite of the withdraw-vs-claim audit (core/elimination_arena.hpp):
// seeded schedule perturbation around arena.claim.pre / arena.handoff /
// arena.withdraw widens the window where a claimer has won the slot CAS
// but not yet published `got`, while the owner is timing out. The audit's
// conclusion (no unprotected deref: classification never touches the node,
// the settle loops keep the frame alive) is pinned by running the checked
// workload with near-arena-sized patience under several seeds. Without
// SSQ_SCHEDULE_FUZZ compiled in the perturbation points are no-ops and
// this degrades to a plain stress run -- still a valid regression test.
TEST(LinearizeCheck, EliminationArenaWithdrawClaimFuzz) {
  for (std::uint64_t seed : {1201ull, 1202ull, 1203ull}) {
#if defined(SSQ_SCHEDULE_FUZZ)
    fuzz::config fc;
    fc.seed = seed;
    fuzz::enable(fc);
#endif
    auto q = std::make_shared<eliminating_sq<std::uint64_t>>(
        std::chrono::microseconds(50));
    checked_ops ops = make_checked_ops(q, false);
    driver_cfg cfg = small_cfg(seed);
    cfg.max_patience_us = 100; // timed ops expire inside the arena window
    recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
                 cfg.max_ops_per_thread);
    run_mixed(ops, cfg, rec);
    report rep = check_history(rec.collect(), rules{});
    EXPECT_TRUE(rep.ok()) << "seed " << seed << "\n" << summarize(rep);
#if defined(SSQ_SCHEDULE_FUZZ)
    fuzz::disable();
#endif
  }
}

// ----------------------------------------------- ltq / channel / exchanger

TEST(LinearizeCheck, LinkedTransferQueueAsync) {
  auto q = std::make_shared<linked_transfer_queue<std::uint64_t>>();
  checked_ops ops = make_checked_transfer_ops(q);
  driver_cfg cfg = small_cfg(109);
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  driver_stats st;
  run_mixed(ops, cfg, rec, &st);
  rules r;
  r.fifo = true; // the FIFO check has real teeth here: async producers
  report rep = check_history(rec.collect(), r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(rep.pairs, 0u);
}

TEST(LinearizeCheck, Channel) {
  auto ch = std::make_shared<channel<std::uint64_t>>();
  checked_ops ops = make_checked_channel_ops(ch);
  driver_cfg cfg = small_cfg(110);
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  run_mixed(ops, cfg, rec);
  rules r;
  r.fifo = true;
  report rep = check_history(rec.collect(), r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
}

TEST(LinearizeCheck, Exchanger) {
  exchanger<std::uint64_t> x;
  driver_cfg cfg = small_cfg(111);
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  report rep = run_exchanger(x, cfg, rec);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
}

// ------------------------------------------- cancellation-heavy clean paths

TEST(LinearizeCheck, CancellationStormFairCleanPaths) {
  // Regression lock on transfer_queue::clean(): tiny patience makes the
  // tail a cancelled node most of the time, so nearly every cancellation
  // exercises the clean_me deferred-splice handoff and the
  // stale-predecessor abort; park_only arms a park_slot on every wait, so
  // node recycling stresses episode hygiene too. The oracle (not just
  // conservation) must stay clean: a mis-splice that detaches a *live*
  // node shows up as a lost item, a double-splice as a duplication, a
  // cancel/fulfill double-win as a cancelled-value delivery.
  auto q = std::make_shared<
      synchronous_queue<std::uint64_t, true, mem::pooled_hp_reclaimer>>(
      sync::spin_policy::park_only());
  checked_ops ops = make_checked_ops(q, true);
  driver_cfg cfg = small_cfg(113);
  cfg.max_patience_us = 300; // almost everything cancels
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  driver_stats st;
  run_mixed(ops, cfg, rec, &st);
  rules r;
  r.fifo = true;
  report rep = check_history(rec.collect(), r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(rep.cancelled, 0u) << "storm produced no cancellations";
}

TEST(LinearizeCheck, CancellationStormUnfairCleanPaths) {
  // Same storm against the dual stack's clean()/past-node compare path.
  auto q = std::make_shared<
      synchronous_queue<std::uint64_t, false, mem::pooled_hp_reclaimer>>(
      sync::spin_policy::park_only());
  checked_ops ops = make_checked_ops(q, false);
  driver_cfg cfg = small_cfg(114);
  cfg.max_patience_us = 300;
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  run_mixed(ops, cfg, rec);
  report rep = check_history(rec.collect(), rules{});
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(rep.cancelled, 0u);
}

TEST(LinearizeCheck, UnfairHelperPopStress) {
  // Regression lock on transfer_stack::pop_pair(): the matched partner
  // beneath a fulfilling node must be hazard-protected before it is
  // dereferenced. The helper-finished-our-match path used to reach
  // pop_pair with no hazard covering the partner; a concurrent thread
  // completing the same pop could retire-and-free it first
  // (heap-use-after-free under TSan, found by the 30s schedule-fuzz
  // torture run). Plain hp (eager frees) + spin_only (waiters stay on-CPU
  // inside xfer, maximizing concurrent helping) recreate that shape; run
  // under TSan/ASan this is the bounded version of the catcher.
  auto q = std::make_shared<
      synchronous_queue<std::uint64_t, false, mem::hp_reclaimer>>(
      sync::spin_policy::spin_only());
  checked_ops ops = make_checked_ops(q, false);
  driver_cfg cfg = small_cfg(115);
  cfg.duration = std::chrono::milliseconds(800);
  cfg.max_patience_us = 200; // heavy cancellation: cancelled partners get
                             // spliced while pops race over them
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  run_mixed(ops, cfg, rec);
  report rep = check_history(rec.collect(), rules{});
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(rep.pairs, 0u);
}

// --------------------------------------------------- interruption mid-run

TEST(LinearizeCheck, InterruptMidRunStaysLinearizable) {
  // Fire an interrupt token halfway through: every op cancelled by it must
  // record `interrupted` and must not transfer (oracle P2).
  auto q = std::make_shared<synchronous_queue<std::uint64_t, true>>();
  sync::interrupt_token tok;
  checked_ops ops = make_checked_ops(q, true, &tok);
  driver_cfg cfg = small_cfg(112);
  recorder rec(static_cast<std::size_t>(cfg.threads) + 1,
               cfg.max_ops_per_thread);
  std::thread firer([&] {
    std::this_thread::sleep_for(cfg.duration / 2);
    tok.interrupt();
  });
  driver_stats st;
  run_mixed(ops, cfg, rec, &st);
  firer.join();
  rules r;
  r.fifo = true;
  report rep = check_history(rec.collect(), r);
  EXPECT_TRUE(rep.ok()) << summarize(rep);
  EXPECT_GT(st.interrupts.load(), 0u) << "interrupt never observed";
}
