// Tests for the queue-based spin locks (MCS, CLH -- paper ref 13) and the
// elimination-backoff stack (paper ref 4).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "substrate/eb_stack.hpp"
#include "sync/queue_locks.hpp"

using namespace ssq;
using namespace ssq::sync;

// ---------------------------------------------------------------- MCS

TEST(McsLock, UncontendedAcquireRelease) {
  mcs_lock lk;
  mcs_lock::node n;
  EXPECT_FALSE(lk.is_locked());
  lk.lock(n);
  EXPECT_TRUE(lk.is_locked());
  lk.unlock(n);
  EXPECT_FALSE(lk.is_locked());
}

TEST(McsLock, TryLockSemantics) {
  mcs_lock lk;
  mcs_lock::node a, b;
  EXPECT_TRUE(lk.try_lock(a));
  EXPECT_FALSE(lk.try_lock(b)) << "held lock must refuse try_lock";
  lk.unlock(a);
  EXPECT_TRUE(lk.try_lock(b));
  lk.unlock(b);
}

TEST(McsLock, MutualExclusionStress) {
  mcs_lock lk;
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        mcs_guard g(lk);
        ++counter;
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(counter, 80000);
  EXPECT_FALSE(lk.is_locked());
}

TEST(McsLock, NodeIsReusable) {
  mcs_lock lk;
  mcs_lock::node n;
  for (int i = 0; i < 100; ++i) {
    lk.lock(n);
    lk.unlock(n);
  }
  EXPECT_FALSE(lk.is_locked());
}

TEST(McsLock, FifoHandoffOrder) {
  // MCS grants strictly in queue order: stage waiters one at a time and
  // record service order.
  mcs_lock lk;
  const int n = 6;
  std::vector<int> order;
  std::mutex om;
  mcs_lock::node main_node;
  lk.lock(main_node);
  std::vector<std::thread> ts;
  std::atomic<int> queued{0};
  for (int i = 0; i < n; ++i) {
    ts.emplace_back([&, i] {
      mcs_lock::node me;
      queued.fetch_add(1);
      lk.lock(me);
      {
        std::lock_guard<std::mutex> g(om);
        order.push_back(i);
      }
      lk.unlock(me);
    });
    // Wait until thread i is (almost certainly) enqueued before spawning
    // i+1: it bumps `queued` just before lock(); give it time to reach the
    // tail exchange.
    while (queued.load() <= i) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  lk.unlock(main_node);
  for (auto &t : ts) t.join();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "MCS must be FIFO";
}

// ---------------------------------------------------------------- CLH

TEST(ClhLock, UncontendedAcquireRelease) {
  clh_lock lk;
  clh_lock::handle h;
  lk.lock(h);
  lk.unlock(h);
  SUCCEED();
}

TEST(ClhLock, HandleRecyclesAcrossAcquisitions) {
  clh_lock lk;
  clh_lock::handle h;
  for (int i = 0; i < 1000; ++i) {
    lk.lock(h);
    lk.unlock(h);
  }
  SUCCEED();
}

TEST(ClhLock, MutualExclusionStress) {
  clh_lock lk;
  long counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      clh_lock::handle h;
      for (int i = 0; i < 20000; ++i) {
        lk.lock(h);
        ++counter;
        lk.unlock(h);
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(counter, 80000);
}

TEST(ClhLock, ManyShortLivedHandles) {
  clh_lock lk;
  for (int round = 0; round < 50; ++round) {
    std::thread t([&] {
      clh_lock::handle h;
      lk.lock(h);
      lk.unlock(h);
    });
    t.join();
  }
  SUCCEED();
}

// --------------------------------------------------------------- EB stack

TEST(EbStack, LifoSingleThreaded) {
  elimination_backoff_stack<int> s;
  for (int i = 0; i < 10; ++i) s.push(i);
  for (int i = 9; i >= 0; --i) {
    auto v = s.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(s.pop().has_value());
  EXPECT_TRUE(s.empty());
}

TEST(EbStack, EmptyPopDoesNotWait) {
  elimination_backoff_stack<int> s;
  auto t0 = steady_clock::now();
  EXPECT_FALSE(s.pop().has_value());
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(1));
}

TEST(EbStack, BoxedPayload) {
  elimination_backoff_stack<std::string> s;
  s.push(std::string(300, 'e'));
  auto v = s.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 300u);
}

TEST(EbStack, ConcurrentConservation) {
  mem::epoch_domain dom;
  elimination_backoff_stack<std::uint32_t> s(std::chrono::microseconds(20),
                                             dom);
  const int np = 3, nc = 3, per = 4000;
  const int total = np * per;
  std::atomic<long> in{0}, out{0};
  std::atomic<int> got{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(p * per + i + 1);
        s.push(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      while (got.load() < total) {
        auto v = s.pop();
        if (v) {
          out.fetch_add(*v);
          got.fetch_add(1);
        }
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(s.empty());
}

TEST(EbStack, DestructorFreesRemaining) {
  auto s = std::make_unique<elimination_backoff_stack<std::string>>();
  for (int i = 0; i < 50; ++i) s->push(std::to_string(i));
  // ASan CI verifies the destructor path.
}
