// Tests for the reclamation layer: hazard pointers, epochs, life_cycle,
// deferred reclaimer. These validate the guarantees the dual structures
// lean on in place of Java's GC.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "memory/epoch.hpp"
#include "memory/hazard.hpp"
#include "memory/reclaim.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;
using mem::epoch_domain;
using mem::hazard_domain;

namespace {

// A canary object that poisons itself on destruction so use-after-free is
// detectable without ASan.
struct canary {
  static constexpr std::uint64_t alive_mark = 0xA11CE5ULL;
  std::uint64_t mark = alive_mark;
  std::atomic<int> *free_count;

  explicit canary(std::atomic<int> *fc) : free_count(fc) {}
  ~canary() {
    mark = 0xDEAD;
    if (free_count) free_count->fetch_add(1);
  }
  bool alive() const { return mark == alive_mark; }
};

} // namespace

// ------------------------------------------------------------- hazard

TEST(Hazard, RetireWithoutHazardFreesOnScan) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  dom.retire(new canary(&freed));
  dom.scan();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(dom.approx_retired(), 0u);
}

TEST(Hazard, ProtectedNodeSurvivesScan) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  auto *c = new canary(&freed);
  std::atomic<canary *> shared{c};
  {
    hazard_domain::hazard hz(dom);
    canary *p = hz.protect(shared);
    ASSERT_EQ(p, c);
    dom.retire(c);
    dom.scan();
    EXPECT_EQ(freed.load(), 0) << "hazard must pin the node";
    EXPECT_TRUE(p->alive());
  }
  dom.scan();
  EXPECT_EQ(freed.load(), 1) << "released hazard frees on next scan";
}

TEST(Hazard, ProtectFollowsConcurrentUpdates) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  auto *a = new canary(&freed);
  auto *b = new canary(&freed);
  std::atomic<canary *> shared{a};
  hazard_domain::hazard hz(dom);
  canary *got = hz.protect(shared);
  EXPECT_EQ(got, a);
  shared.store(b);
  canary *got2 = hz.protect(shared);
  EXPECT_EQ(got2, b);
  delete a;
  delete b;
}

TEST(Hazard, MultipleSlotsPerThread) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  std::vector<canary *> nodes;
  std::vector<std::atomic<canary *>> cells(hazard_domain::slots_per_record);
  for (auto &cell : cells) {
    auto *c = new canary(&freed);
    nodes.push_back(c);
    cell.store(c);
  }
  {
    std::vector<std::unique_ptr<hazard_domain::hazard>> guards;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      guards.push_back(std::make_unique<hazard_domain::hazard>(dom));
      guards.back()->protect(cells[i]);
    }
    for (auto *c : nodes) dom.retire(c);
    dom.scan();
    EXPECT_EQ(freed.load(), 0);
  }
  dom.drain();
  EXPECT_EQ(freed.load(), static_cast<int>(nodes.size()));
}

TEST(Hazard, ClearReleasesProtection) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  auto *c = new canary(&freed);
  std::atomic<canary *> shared{c};
  hazard_domain::hazard hz(dom);
  hz.protect(shared);
  dom.retire(c);
  hz.clear();
  dom.scan();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Hazard, ThreadExitOrphansAreAdopted) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  std::thread t([&] {
    // Retire from a thread that exits immediately: its retirees must not be
    // stranded.
    for (int i = 0; i < 10; ++i) dom.retire(new canary(&freed));
  });
  t.join();
  dom.drain();
  EXPECT_EQ(freed.load(), 10);
}

TEST(Hazard, RecordsAreRecycledAcrossThreads) {
  hazard_domain dom;
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      hazard_domain::hazard hz(dom);
      std::atomic<int *> dummy{nullptr};
      hz.protect(dummy);
    });
    t.join();
  }
  // Sequential threads reuse the released record instead of growing the
  // list without bound.
  EXPECT_LE(dom.record_count(), 2u);
}

TEST(Hazard, ExternalRootPinsItsTarget) {
  hazard_domain dom;
  std::atomic<int> freed{0};
  auto *c = new canary(&freed);
  std::atomic<void *> root{c};
  dom.add_root(&root);
  dom.retire(c);
  dom.scan();
  EXPECT_EQ(freed.load(), 0) << "root-referenced node must survive";
  root.store(nullptr);
  dom.scan();
  EXPECT_EQ(freed.load(), 1);
  dom.remove_root(&root);
}

TEST(Hazard, GarbageIsBounded) {
  // The amortized threshold must keep unreclaimed garbage bounded even
  // under sustained retirement with no manual scans.
  hazard_domain dom;
  std::atomic<int> freed{0};
  for (int i = 0; i < 100000; ++i) dom.retire(new canary(&freed));
  EXPECT_LT(dom.approx_retired(), 5000u);
  dom.drain();
  EXPECT_EQ(freed.load(), 100000);
}

TEST(Hazard, ConcurrentStress) {
  // Readers chase a shared pointer under hazard while writers swap and
  // retire; canaries must never be observed dead while protected.
  hazard_domain dom;
  std::atomic<int> freed{0};
  std::atomic<canary *> shared{new canary(&freed)};
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        hazard_domain::hazard hz(dom);
        canary *p = hz.protect(shared);
        if (p && !p->alive()) violations.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) {
      auto *fresh = new canary(&freed);
      canary *old = shared.exchange(fresh);
      dom.retire(old);
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto &t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  dom.retire(shared.load());
  dom.drain();
  EXPECT_EQ(freed.load(), 20001);
}

// ------------------------------------------------------------- epoch

TEST(Epoch, RetireThenCollectFrees) {
  epoch_domain dom;
  std::atomic<int> freed{0};
  {
    epoch_domain::guard g(dom);
    dom.retire(new canary(&freed));
  }
  dom.drain();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Epoch, PinnedThreadBlocksAdvance) {
  epoch_domain dom;
  std::atomic<int> freed{0};
  std::atomic<bool> pinned{false}, release{false};

  std::thread straggler([&] {
    epoch_domain::guard g(dom);
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  std::uint64_t e0 = dom.global_epoch();
  {
    epoch_domain::guard g(dom);
    dom.retire(new canary(&freed));
  }
  // The straggler pins e0; at most one advance can complete, and a node
  // retired at >= e0 must not be freed.
  for (int i = 0; i < 10; ++i) dom.collect();
  EXPECT_LE(dom.global_epoch(), e0 + 1);
  EXPECT_EQ(freed.load(), 0);

  release.store(true);
  straggler.join();
  dom.drain();
  EXPECT_EQ(freed.load(), 1);
}

TEST(Epoch, EpochAdvancesWhenQuiescent) {
  epoch_domain dom;
  std::uint64_t e0 = dom.global_epoch();
  dom.collect();
  dom.collect();
  EXPECT_GT(dom.global_epoch(), e0);
}

TEST(Epoch, ManyRetiresAreEventuallyFreed) {
  epoch_domain dom;
  std::atomic<int> freed{0};
  for (int i = 0; i < 10000; ++i) {
    epoch_domain::guard g(dom);
    dom.retire(new canary(&freed));
  }
  dom.drain();
  EXPECT_EQ(freed.load(), 10000);
}

TEST(Epoch, ConcurrentPinUnpinStress) {
  epoch_domain dom;
  std::atomic<int> freed{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        epoch_domain::guard g(dom);
        auto *c = new canary(&freed);
        if (!c->alive()) violations.fetch_add(1);
        dom.retire(c);
      }
    });
  }
  for (auto &t : ts) t.join();
  dom.drain();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(freed.load(), 20000);
}

TEST(Epoch, DestructorFreesLeftovers) {
  std::atomic<int> freed{0};
  {
    epoch_domain dom;
    epoch_domain::guard g(dom);
    for (int i = 0; i < 50; ++i) dom.retire(new canary(&freed));
  }
  EXPECT_EQ(freed.load(), 50);
}

// ------------------------------------------------------------- life_cycle

TEST(LifeCycle, UnlinkThenReleaseRetiresOnce) {
  mem::life_cycle lc;
  EXPECT_FALSE(lc.mark_unlinked()) << "owner not yet done";
  EXPECT_TRUE(lc.mark_released()) << "second party retires";
}

TEST(LifeCycle, ReleaseThenUnlinkRetiresOnce) {
  mem::life_cycle lc;
  EXPECT_FALSE(lc.mark_released());
  EXPECT_TRUE(lc.mark_unlinked());
}

TEST(LifeCycle, DoubleUnlinkIsIdempotent) {
  mem::life_cycle lc;
  EXPECT_FALSE(lc.mark_released());
  EXPECT_TRUE(lc.mark_unlinked());
  EXPECT_FALSE(lc.mark_unlinked()) << "second unlinker must not retire again";
}

TEST(LifeCycle, PresetReleasedLeavesOnlyUnlink) {
  mem::life_cycle lc;
  lc.preset_released();
  EXPECT_TRUE(lc.mark_unlinked());
}

TEST(LifeCycle, ExactlyOneRetirerUnderRace) {
  for (int round = 0; round < 2000; ++round) {
    mem::life_cycle lc;
    std::atomic<int> retires{0};
    std::thread a([&] {
      if (lc.mark_unlinked()) retires.fetch_add(1);
    });
    std::thread b([&] {
      if (lc.mark_released()) retires.fetch_add(1);
    });
    a.join();
    b.join();
    ASSERT_EQ(retires.load(), 1);
  }
}

// ------------------------------------------------------------- deferred

TEST(Deferred, FreesEverythingAtDestruction) {
  std::atomic<int> freed{0};
  {
    mem::deferred_reclaimer rec;
    for (int i = 0; i < 100; ++i) rec.retire(new canary(&freed));
    EXPECT_EQ(freed.load(), 0) << "deferred means deferred";
  }
  EXPECT_EQ(freed.load(), 100);
}

TEST(Deferred, SlotProtectIsAPlainRead) {
  mem::deferred_reclaimer rec;
  std::atomic<int *> cell{nullptr};
  int x = 5;
  cell.store(&x);
  mem::deferred_reclaimer::slot s(rec);
  EXPECT_EQ(s.protect(cell), &x);
}

TEST(Deferred, ConcurrentRetire) {
  std::atomic<int> freed{0};
  {
    mem::deferred_reclaimer rec;
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t)
      ts.emplace_back([&] {
        for (int i = 0; i < 5000; ++i) rec.retire(new canary(&freed));
      });
    for (auto &t : ts) t.join();
  }
  EXPECT_EQ(freed.load(), 20000);
}
