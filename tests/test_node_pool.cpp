// node_pool unit tests: recycling behavior, alignment, the bounded overflow
// ring, the thread-exit orphan protocol, and the pool's interleaving with
// hazard-pointer scans (the ASan CI target).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/transfer_queue.hpp"
#include "memory/hazard.hpp"
#include "memory/node_pool.hpp"
#include "memory/reclaim.hpp"
#include "support/codec.hpp"

using namespace ssq;
using mem::node_pool;

namespace {

node_pool::config small_cfg() {
  node_pool::config c{/*block_size=*/64};
  c.magazine_cap = 8;
  c.ring_cap = 16;
  c.chunk_blocks = 4;
  return c;
}

item_token tok_of(std::uintptr_t v) {
  return reinterpret_cast<item_token>(v << 2); // distinct from empty_token
}

} // namespace

TEST(NodePool, MagazineIsLifo) {
  node_pool pool(small_cfg());
  void *a = pool.allocate();
  void *b = pool.allocate();
  ASSERT_NE(a, b);
  pool.deallocate(a);
  pool.deallocate(b);
  // The most recently freed block (still cache-warm) comes back first.
  EXPECT_EQ(pool.allocate(), b);
  EXPECT_EQ(pool.allocate(), a);
  pool.deallocate(a);
  pool.deallocate(b);
}

TEST(NodePool, BlocksAreCachelineAligned) {
  node_pool pool(small_cfg());
  EXPECT_GE(pool.stride(), std::size_t{64});
  EXPECT_EQ(pool.stride() % cacheline_size, 0u);
  std::vector<void *> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(pool.allocate());
  std::set<void *> distinct(blocks.begin(), blocks.end());
  EXPECT_EQ(distinct.size(), blocks.size());
  for (void *p : blocks)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % cacheline_size, 0u)
        << "block not cache-line aligned";
  for (void *p : blocks) pool.deallocate(p);
}

TEST(NodePool, CrossThreadRecyclingReusesChunks) {
  node_pool pool(small_cfg());
  std::vector<void *> blocks;
  for (int i = 0; i < 12; ++i) blocks.push_back(pool.allocate());
  const std::size_t chunks_before = pool.chunk_count();
  ASSERT_GT(chunks_before, 0u);

  // Free every block on another thread (consumer-retires-producer's-nodes
  // pattern); its magazine flushes to the shared side at thread exit.
  std::thread t([&] {
    for (void *p : blocks) pool.deallocate(p);
  });
  t.join();

  // Re-allocating must be satisfied from recycled blocks, not new chunks.
  std::set<void *> seen(blocks.begin(), blocks.end());
  std::vector<void *> again;
  for (int i = 0; i < 12; ++i) again.push_back(pool.allocate());
  EXPECT_EQ(pool.chunk_count(), chunks_before);
  for (void *p : again) EXPECT_TRUE(seen.count(p)) << "expected a recycled block";
  for (void *p : again) pool.deallocate(p);
}

TEST(NodePool, OverflowRingIsBoundedAndSpillsToOrphans) {
  node_pool::config c{/*block_size=*/64};
  c.magazine_cap = 4;
  c.ring_cap = 4; // tiny: force overflow
  c.chunk_blocks = 8;
  node_pool pool(c);

  const std::size_t cap = pool.ring_capacity();
  std::vector<void *> blocks;
  for (std::size_t i = 0; i < 3 * cap; ++i) blocks.push_back(pool.allocate());
  // Remote-free everything (carve leftovers may already sit in the ring):
  // the ring must stay at capacity and the excess must land in the orphan
  // list instead of growing the ring.
  const std::size_t shared_before = pool.ring_size() + pool.orphan_count();
  for (void *p : blocks) pool.deallocate_remote(p);
  EXPECT_LE(pool.ring_size(), cap);
  EXPECT_EQ(pool.ring_size() + pool.orphan_count(),
            shared_before + blocks.size());

  // And every one of them is adoptable again: re-allocating the same count
  // must not carve new chunks.
  const std::size_t chunks_before = pool.chunk_count();
  for (std::size_t i = 0; i < blocks.size(); ++i) (void)pool.allocate();
  EXPECT_EQ(pool.chunk_count(), chunks_before);
}

TEST(NodePool, ThreadExitFlushesMagazinesForAdoption) {
  node_pool pool(small_cfg());
  std::set<void *> freed_by_thread;
  std::thread t([&] {
    // Allocate and free entirely within the thread: the blocks end up in
    // the thread's magazine, which must not die with the thread.
    std::vector<void *> mine;
    for (int i = 0; i < 6; ++i) mine.push_back(pool.allocate());
    for (void *p : mine) {
      freed_by_thread.insert(p);
      pool.deallocate(p);
    }
  });
  t.join();

  // The exited thread's blocks are now in the ring/orphan list; this
  // thread's allocations adopt them before carving anything new.
  const std::size_t chunks_before = pool.chunk_count();
  std::vector<void *> got;
  bool adopted = false;
  for (int i = 0; i < 6; ++i) {
    void *p = pool.allocate();
    if (freed_by_thread.count(p)) adopted = true;
    got.push_back(p);
  }
  EXPECT_TRUE(adopted) << "no block from the exited thread was recycled";
  EXPECT_EQ(pool.chunk_count(), chunks_before);
  for (void *p : got) pool.deallocate(p);
}

TEST(NodePool, GlobalPoolsAreSharedPerSizeClass) {
  node_pool &a = node_pool::global_for(64, 64);
  node_pool &b = node_pool::global_for(64, 64);
  node_pool &c = node_pool::global_for(128, 64);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);

  void *p = a.allocate();
  node_pool::deallocate_global(64, 64, p);
  EXPECT_EQ(a.allocate(), p); // routed back into the same class, LIFO
  a.deallocate(p);
}

TEST(NodePool, ThreadChurnManyShortLivedThreads) {
  // Regression target for the orphan protocol under thread churn: every
  // thread leaves blocks behind; footprint must stay bounded by reuse.
  node_pool pool(small_cfg());
  for (int round = 0; round < 16; ++round) {
    std::thread t([&] {
      std::vector<void *> mine;
      for (int i = 0; i < 8; ++i) mine.push_back(pool.allocate());
      for (void *p : mine) pool.deallocate(p);
    });
    t.join();
  }
  // 16 threads x 8 live blocks each, all serialized: a handful of chunks
  // (first thread's carves) must have satisfied everyone.
  EXPECT_LE(pool.chunk_count(), 4u);
}

// The ASan CI target: pooled reclamation interleaved with explicit hazard
// scans. A block must only re-enter circulation via the reclaimer's deleter
// (post-scan); a premature recycle is a use-after-free ASan would flag.
TEST(NodePool, PooledReclaimerInterleavedWithDrain) {
  mem::hazard_domain dom;
  {
    transfer_queue<> q(sync::spin_policy::adaptive(),
                       mem::pooled_hp_reclaimer{&dom});
    std::atomic<bool> stop{false};
    std::thread drainer([&] {
      while (!stop.load(std::memory_order_acquire)) dom.drain();
    });
    std::thread producer([&] {
      for (std::uintptr_t i = 1; i <= 2000; ++i)
        (void)q.xfer(tok_of(i), true, wait_kind::sync);
    });
    for (int i = 0; i < 2000; ++i)
      (void)q.xfer(empty_token, false, wait_kind::sync);
    producer.join();
    stop.store(true, std::memory_order_release);
    drainer.join();
    dom.drain();
  }
}
