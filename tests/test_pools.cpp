// Tests for the convenience pool configurations (executor/pools.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "executor/pools.hpp"

using namespace ssq;

TEST(CachedPool, GrowsAndShrinks) {
  cached_thread_pool pool(
      {0, std::size_t{1} << 20, std::chrono::milliseconds(60)});
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      done++;
    });
  while (done.load() < 32) std::this_thread::yield();
  EXPECT_GE(pool.largest_pool_size(), 1u);
  auto dl = deadline::in(std::chrono::seconds(30));
  while (pool.pool_size() != 0 && !dl.expired_now())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(pool.pool_size(), 0u) << "cached pool must drain to zero";
}

TEST(CachedPool, DefaultConfigHasNoCoreThreads) {
  auto cfg = cached_pool_config();
  EXPECT_EQ(cfg.core_pool_size, 0u);
  EXPECT_GE(cfg.max_pool_size, std::size_t{1} << 20);
}

TEST(FixedPool, NeverExceedsConfiguredSize) {
  fixed_thread_pool pool(fixed_pool_config(2));
  std::atomic<int> running{0}, peak{0}, done{0};
  const int n = 24;
  for (int i = 0; i < n; ++i)
    pool.submit([&] {
      int r = running.fetch_add(1) + 1;
      int p = peak.load();
      while (r > p && !peak.compare_exchange_weak(p, r)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      running.fetch_sub(1);
      done++;
    });
  while (done.load() < n) std::this_thread::yield();
  EXPECT_LE(peak.load(), 2);
  EXPECT_LE(pool.largest_pool_size(), 2u);
}

TEST(FixedPool, BuffersBursts) {
  // Submissions never block (buffered channel) even with all workers busy.
  fixed_thread_pool pool(fixed_pool_config(1));
  std::atomic<int> done{0};
  std::atomic<bool> gate{false};
  pool.submit([&] {
    while (!gate.load()) std::this_thread::yield();
    done++;
  });
  auto t0 = steady_clock::now();
  for (int i = 0; i < 100; ++i) pool.submit([&] { done++; });
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5))
      << "fixed-pool submit must not block";
  gate.store(true);
  while (done.load() < 101) std::this_thread::yield();
}

TEST(FairCachedPool, RunsWorkload) {
  fair_cached_thread_pool pool(cached_pool_config(std::chrono::milliseconds(200)));
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) pool.submit([&] { done++; });
  while (done.load() < 200) std::this_thread::yield();
  EXPECT_EQ(pool.completed_count(), 200u);
}
