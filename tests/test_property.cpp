// Cross-implementation property battery.
//
// Every synchronous-queue implementation in the repository -- the three
// baselines, the two new algorithms, and the elimination variant -- must
// satisfy the same semantic contract. The battery sweeps each property
// across implementations and producer/consumer topologies with
// INSTANTIATE_TEST_SUITE_P, so a regression in any one algorithm fails a
// precisely named test instance.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "core/eliminating_sq.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

namespace {

// Type-erased adapter so gtest params can range over implementations.
struct sq_adapter {
  virtual ~sq_adapter() = default;
  virtual void put(std::uint64_t v) = 0;
  virtual std::uint64_t take() = 0;
  virtual bool offer(std::uint64_t v, deadline dl) = 0;
  virtual std::optional<std::uint64_t> poll(deadline dl) = 0;
};

template <typename Q>
struct basic_adapter final : sq_adapter {
  Q q;
  void put(std::uint64_t v) override { q.put(v); }
  std::uint64_t take() override { return q.take(); }
  bool offer(std::uint64_t v, deadline dl) override { return q.offer(v, dl); }
  std::optional<std::uint64_t> poll(deadline dl) override {
    return q.poll(dl);
  }
};

// Hanson supports only the total operations (paper §3.3).
struct hanson_adapter final : sq_adapter {
  hanson_sq<std::uint64_t> q;
  void put(std::uint64_t v) override { q.put(v); }
  std::uint64_t take() override { return q.take(); }
  bool offer(std::uint64_t, deadline) override { return false; }
  std::optional<std::uint64_t> poll(deadline) override { return std::nullopt; }
};

struct impl_param {
  const char *name;
  bool supports_timed;
  bool is_fair;
  std::function<std::unique_ptr<sq_adapter>()> make;
};

const impl_param kImpls[] = {
    {"NaiveSQ", true, false,
     [] { return std::make_unique<basic_adapter<naive_sq<std::uint64_t>>>(); }},
    {"HansonSQ", false, false,
     [] { return std::make_unique<hanson_adapter>(); }},
    {"Java5Fair", true, true,
     [] {
       return std::make_unique<basic_adapter<java5_sq<std::uint64_t, true>>>();
     }},
    {"Java5Unfair", true, false,
     [] {
       return std::make_unique<basic_adapter<java5_sq<std::uint64_t, false>>>();
     }},
    {"NewFair", true, true,
     [] {
       return std::make_unique<
           basic_adapter<synchronous_queue<std::uint64_t, true>>>();
     }},
    {"NewUnfair", true, false,
     [] {
       return std::make_unique<
           basic_adapter<synchronous_queue<std::uint64_t, false>>>();
     }},
    {"Eliminating", true, false,
     [] {
       return std::make_unique<basic_adapter<eliminating_sq<std::uint64_t>>>();
     }},
};

struct topo {
  int np, nc;
};
const topo kTopos[] = {{1, 1}, {2, 2}, {4, 4}, {1, 4}, {4, 1}};

struct battery_param {
  const impl_param *impl;
  topo t;
};

std::string param_name(
    const ::testing::TestParamInfo<battery_param> &info) {
  return std::string(info.param.impl->name) + "_" +
         std::to_string(info.param.t.np) + "p" +
         std::to_string(info.param.t.nc) + "c";
}

std::vector<battery_param> all_params() {
  std::vector<battery_param> out;
  for (const auto &impl : kImpls)
    for (const auto &t : kTopos) out.push_back({&impl, t});
  return out;
}

class SqBattery : public ::testing::TestWithParam<battery_param> {};

} // namespace

// Property 1: conservation -- the multiset of values taken equals the
// multiset put (checked via order-insensitive sum and xor fingerprints).
TEST_P(SqBattery, ConservationUnderConcurrency) {
  auto [impl, t] = GetParam();
  auto q = impl->make();
  const int per = 400;
  const int total = t.np * per;
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0}, in_xor{0}, out_xor{0};

  std::vector<std::thread> ts;
  for (int p = 0; p < t.np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v =
            (static_cast<std::uint64_t>(p + 1) << 32) | static_cast<std::uint64_t>(i);
        q->put(v);
        in_sum.fetch_add(v);
        in_xor.fetch_xor(v);
      }
    });
  int cq = total / t.nc;
  for (int c = 0; c < t.nc; ++c)
    ts.emplace_back([&, c] {
      int quota = cq + (c < total % t.nc ? 1 : 0);
      for (int i = 0; i < quota; ++i) {
        std::uint64_t v = q->take();
        out_sum.fetch_add(v);
        out_xor.fetch_xor(v);
      }
    });
  for (auto &th : ts) th.join();
  EXPECT_EQ(in_sum.load(), out_sum.load());
  EXPECT_EQ(in_xor.load(), out_xor.load());
}

// Property 2: synchrony -- put returns only after some take accepted the
// value (verified by a put that must still be blocked while no consumer has
// arrived).
TEST_P(SqBattery, PutWaitsForConsumer) {
  auto [impl, t] = GetParam();
  (void)t;
  auto q = impl->make();
  std::atomic<bool> put_done{false};
  std::thread p([&] {
    q->put(1);
    put_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_FALSE(put_done.load());
  EXPECT_EQ(q->take(), 1u);
  p.join();
  EXPECT_TRUE(put_done.load());
}

// Property 3: poll/offer are faithful partial-method totalizations -- they
// never succeed against an absent counterpart.
TEST_P(SqBattery, OfferPollFailAlone) {
  auto [impl, t] = GetParam();
  (void)t;
  if (!impl->supports_timed) GTEST_SKIP() << "no timed ops (Hanson)";
  auto q = impl->make();
  EXPECT_FALSE(q->offer(1, deadline::expired()));
  EXPECT_FALSE(q->poll(deadline::expired()).has_value());
  // The failed offer must not have left residue a poll could see.
  EXPECT_FALSE(q->poll(deadline::expired()).has_value());
}

// Property 4: timed operations respect their patience, within scheduling
// slop, and leave the structure clean.
TEST_P(SqBattery, TimedOpsHonorPatience) {
  auto [impl, t] = GetParam();
  (void)t;
  if (!impl->supports_timed) GTEST_SKIP() << "no timed ops (Hanson)";
  auto q = impl->make();
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q->offer(1, deadline::in(std::chrono::milliseconds(30))));
  auto elapsed = steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  t0 = steady_clock::now();
  EXPECT_FALSE(q->poll(deadline::in(std::chrono::milliseconds(30))).has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
}

// Property 5: a queue remains fully functional after a burst of timeouts
// and cancellations (cancelled-waiter cleanup does not corrupt state).
TEST_P(SqBattery, UsableAfterTimeoutBurst) {
  auto [impl, t] = GetParam();
  (void)t;
  if (!impl->supports_timed) GTEST_SKIP() << "no timed ops (Hanson)";
  auto q = impl->make();
  // Phase 1: only producers -> every timed offer must expire.
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.emplace_back([&, i] {
        EXPECT_FALSE(
            q->offer(99, deadline::in(std::chrono::milliseconds(5 + i))));
      });
    for (auto &th : ts) th.join();
  }
  // Phase 2: only consumers -> every timed poll must expire.
  {
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.emplace_back([&, i] {
        EXPECT_FALSE(
            q->poll(deadline::in(std::chrono::milliseconds(5 + i))).has_value());
      });
    for (auto &th : ts) th.join();
  }
  std::thread p([&] { q->put(7); });
  EXPECT_EQ(q->take(), 7u);
  p.join();
}

// Property 6: values are delivered exactly once even when producers and
// consumers race through timed paths.
TEST_P(SqBattery, TimedTrafficExactlyOnce) {
  auto [impl, t] = GetParam();
  if (!impl->supports_timed) GTEST_SKIP() << "no timed ops (Hanson)";
  auto q = impl->make();
  const int per = 250;
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0};
  std::atomic<int> delivered{0};
  std::atomic<int> producers_done{0};

  std::vector<std::thread> ts;
  for (int p = 0; p < t.np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v =
            (static_cast<std::uint64_t>(p + 1) << 32) | static_cast<std::uint64_t>(i);
        while (!q->offer(v, deadline::in(std::chrono::milliseconds(5)))) {
        }
        in_sum.fetch_add(v);
      }
      producers_done.fetch_add(1);
    });
  const int total = t.np * per;
  for (int c = 0; c < t.nc; ++c)
    ts.emplace_back([&] {
      while (delivered.load() < total) {
        auto v = q->poll(deadline::in(std::chrono::milliseconds(5)));
        if (v) {
          out_sum.fetch_add(*v);
          delivered.fetch_add(1);
        }
      }
    });
  for (auto &th : ts) th.join();
  EXPECT_EQ(delivered.load(), total);
  EXPECT_EQ(in_sum.load(), out_sum.load());
}

INSTANTIATE_TEST_SUITE_P(AllImpls, SqBattery,
                         ::testing::ValuesIn(all_params()), param_name);
