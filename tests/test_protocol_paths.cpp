// Targeted exercises of specific protocol paths that generic stress rarely
// lands on deterministically: the clean_me deferral under concurrency, the
// stack's fulfiller-retract path, helper completion of stalled
// fulfillments, and the freeze protocol's observable effects.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

namespace {
item_token tok_of(int v) { return item_codec<int>::encode(v); }
int val_of(item_token t) { return item_codec<int>::decode_consume(t); }
} // namespace

// --------------------------------------------------------- queue: clean_me

TEST(ProtocolQueue, ConsecutiveTailCancellationsResolve) {
  // Each timed producer that cancels at the tail defers its splice through
  // clean_me; the next cleaner must finish the previous deferral. Repeat
  // enough times that every cancellation (except possibly the last) is
  // provably collected.
  transfer_queue<> q;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(q.xfer(tok_of(i + 1), true, wait_kind::timed,
                     deadline::in(std::chrono::milliseconds(3))),
              empty_token);
    EXPECT_LE(q.unsafe_length(), 2u)
        << "deferred cleaning must keep garbage O(1), iteration " << i;
  }
}

TEST(ProtocolQueue, ConcurrentTailCancellations) {
  // Many threads cancelling at the tail simultaneously race on clean_me
  // registration and resolution.
  transfer_queue<> q;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i)
      ts.emplace_back([&] {
        EXPECT_EQ(q.xfer(tok_of(1), true, wait_kind::timed,
                         deadline::in(std::chrono::milliseconds(2))),
                  empty_token);
      });
    for (auto &t : ts) t.join();
  }
  // Flush the (at most one) remaining deferred node with real traffic.
  q.xfer(tok_of(9), true, wait_kind::async);
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), 9);
  EXPECT_LE(q.unsafe_length(), 2u);
}

TEST(ProtocolQueue, CancelledInFrontOfLiveWaiter) {
  // Producer A (timed, cancels) linked before producer B (sync): B's data
  // must be delivered despite the dead node ahead of it.
  transfer_queue<> q;
  std::thread a([&] {
    EXPECT_EQ(q.xfer(tok_of(1), true, wait_kind::timed,
                     deadline::in(std::chrono::milliseconds(30))),
              empty_token);
  });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  std::thread b([&] {
    EXPECT_NE(q.xfer(tok_of(2), true, wait_kind::sync,
                     deadline::in(std::chrono::seconds(20))),
              empty_token);
  });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  a.join(); // A has cancelled; its node is interior garbage or spliced
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::sync)), 2);
  b.join();
  EXPECT_LE(q.unsafe_length(), 1u);
}

TEST(ProtocolQueue, AlternatingCancelAndFulfillAtHead) {
  // Interleave cancelled reservations with live ones; producers must skip
  // the corpses in FIFO order of the survivors.
  transfer_queue<> q;
  std::atomic<int> got1{-1}, got2{-1};
  std::thread dead1([&] {
    EXPECT_EQ(q.xfer(empty_token, false, wait_kind::timed,
                     deadline::in(std::chrono::milliseconds(25))),
              empty_token);
  });
  while (q.unsafe_length() < 1) std::this_thread::yield();
  std::thread live1([&] {
    got1.store(val_of(q.xfer(empty_token, false, wait_kind::sync)));
  });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  std::thread dead2([&] {
    EXPECT_EQ(q.xfer(empty_token, false, wait_kind::timed,
                     deadline::in(std::chrono::milliseconds(25))),
              empty_token);
  });
  while (q.unsafe_length() < 3) std::this_thread::yield();
  std::thread live2([&] {
    got2.store(val_of(q.xfer(empty_token, false, wait_kind::sync)));
  });
  dead1.join();
  dead2.join(); // both cancelled
  q.xfer(tok_of(100), true, wait_kind::sync);
  q.xfer(tok_of(200), true, wait_kind::sync);
  live1.join();
  live2.join();
  EXPECT_EQ(got1.load(), 100) << "FIFO among surviving reservations";
  EXPECT_EQ(got2.load(), 200);
}

// --------------------------------------------------------- stack: retract

TEST(ProtocolStack, FulfillerRetractsWhenWaiterCancels) {
  // A fulfiller pushes its fulfilling node above a reservation that
  // cancels at just that moment; with no other waiters beneath, the
  // fulfiller must retract and then wait as an ordinary producer.
  transfer_stack<> s;
  for (int round = 0; round < 10; ++round) {
    std::thread waiter([&] {
      (void)s.xfer(empty_token, false, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(2 + round % 3)));
    });
    // Producer arrives around the cancellation; with now-mode it either
    // pairs or fails fast -- never wedges.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    item_token t = tok_of(round + 1);
    item_token r = s.xfer(t, true, wait_kind::timed,
                          deadline::in(std::chrono::milliseconds(8)));
    waiter.join();
    if (r == empty_token) {
      // Both sides gave up; stack must be clean enough to reuse.
      EXPECT_LE(s.unsafe_length(), 2u);
    }
  }
  // Final sanity rendezvous.
  std::thread c([&] {
    EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::sync)), 42);
  });
  while (s.is_empty()) std::this_thread::yield();
  s.xfer(tok_of(42), true, wait_kind::sync);
  c.join();
}

TEST(ProtocolStack, FulfillerSkipsCancelledStackOfWaiters) {
  // A pile of cancelled reservations with one live one at the bottom: the
  // fulfilling node must splice through all corpses and reach it.
  transfer_stack<> s;
  std::atomic<int> got{-1};
  std::thread live([&] {
    got.store(val_of(s.xfer(empty_token, false, wait_kind::sync)));
  });
  while (s.unsafe_length() < 1) std::this_thread::yield();
  std::vector<std::thread> dead;
  for (int i = 0; i < 4; ++i) {
    dead.emplace_back([&] {
      EXPECT_EQ(s.xfer(empty_token, false, wait_kind::timed,
                       deadline::in(std::chrono::milliseconds(20))),
                empty_token);
    });
  }
  for (auto &t : dead) t.join(); // four corpses above the live waiter
  s.xfer(tok_of(55), true, wait_kind::sync);
  live.join();
  EXPECT_EQ(got.load(), 55);
  EXPECT_LE(s.unsafe_length(), 5u);
}

TEST(ProtocolStack, ManyHelpersOneFulfillment) {
  // A crowd of same-mode producers arrives while one fulfillment is in
  // flight: they must all help complete it before making progress, and all
  // eventually pair up.
  transfer_stack<> s;
  const int n = 6;
  std::atomic<long> out{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < n; ++i)
    consumers.emplace_back([&] {
      out.fetch_add(val_of(s.xfer(empty_token, false, wait_kind::sync)));
    });
  while (s.unsafe_length() < static_cast<std::size_t>(n))
    std::this_thread::yield();
  std::vector<std::thread> producers;
  long in = 0;
  for (int i = 0; i < n; ++i) {
    in += i + 1;
    producers.emplace_back([&, i] {
      s.xfer(tok_of(i + 1), true, wait_kind::sync);
    });
  }
  for (auto &t : producers) t.join();
  for (auto &t : consumers) t.join();
  EXPECT_EQ(out.load(), in);
  EXPECT_TRUE(s.is_empty());
}

// ------------------------------------------------- freeze-protocol effects

TEST(ProtocolFreeze, SplicedNodesAreNotDoubleRetired) {
  // Heavy cancel+traffic churn; the alloc/free accounting proves every
  // node is retired exactly once (a double retire would double-free under
  // ASan and skew the counters here).
  diag::reset_all();
  {
    mem::hazard_domain dom;
    transfer_queue<> q(sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t)
      ts.emplace_back([&, t] {
        for (int i = 0; i < 2000; ++i) {
          if (t % 2)
            (void)q.xfer(tok_of(i + 1), true, wait_kind::timed,
                         deadline::in(std::chrono::microseconds(30)));
          else
            (void)q.xfer(empty_token, false, wait_kind::timed,
                         deadline::in(std::chrono::microseconds(30)));
        }
      });
    for (auto &t : ts) t.join();
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

TEST(ProtocolFreeze, QueueSurvivesInterleavedSpliceAndPop) {
  // The exact geometry of the original UAF: a cancelled node whose
  // predecessor gets popped while its owner is cleaning. Run it many times.
  for (int round = 0; round < 50; ++round) {
    transfer_queue<> q;
    // Buffer one async datum so the queue has a non-dummy head.
    q.xfer(tok_of(1), true, wait_kind::async);
    std::thread canceller([&] {
      (void)q.xfer(tok_of(2), true, wait_kind::timed,
                   deadline::in(std::chrono::microseconds(200 * (round % 5))));
    });
    std::thread consumer([&] {
      // Pops the async datum -- advancing head right around the splice.
      (void)val_of(q.xfer(empty_token, false, wait_kind::sync));
    });
    canceller.join();
    consumer.join();
    // Drain whatever remains.
    item_token r = q.xfer(empty_token, false, wait_kind::now);
    if (r != empty_token) (void)val_of(r);
  }
  SUCCEED();
}
