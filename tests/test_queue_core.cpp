// White-box tests for the synchronous dual queue core (transfer_queue):
// token protocol, wait modes, cancellation cleaning (including the clean_me
// deferral), reclamation accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/transfer_queue.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

namespace {

item_token tok_of(int v) { return item_codec<int>::encode(v); }
int val_of(item_token t) { return item_codec<int>::decode_consume(t); }

} // namespace

TEST(TransferQueue, NowModeFailsOnEmpty) {
  transfer_queue<> q;
  EXPECT_EQ(q.xfer(tok_of(1), true, wait_kind::now), empty_token);
  EXPECT_EQ(q.xfer(empty_token, false, wait_kind::now), empty_token);
  EXPECT_TRUE(q.is_empty());
}

TEST(TransferQueue, AsyncProducerDoesNotWait) {
  transfer_queue<> q;
  item_token t = tok_of(5);
  EXPECT_EQ(q.xfer(t, true, wait_kind::async), t);
  EXPECT_FALSE(q.is_empty());
  EXPECT_TRUE(q.head_is_data());
  item_token r = q.xfer(empty_token, false, wait_kind::now);
  EXPECT_EQ(val_of(r), 5);
  EXPECT_TRUE(q.is_empty());
}

TEST(TransferQueue, AsyncPreservesFifo) {
  transfer_queue<> q;
  for (int i = 0; i < 100; ++i) q.xfer(tok_of(i), true, wait_kind::async);
  EXPECT_EQ(q.unsafe_length(), 100u);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), i);
}

TEST(TransferQueue, TimedConsumerExpires) {
  transfer_queue<> q;
  auto t0 = steady_clock::now();
  EXPECT_EQ(q.xfer(empty_token, false, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(30))),
            empty_token);
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
}

TEST(TransferQueue, TimedProducerExpires) {
  transfer_queue<> q;
  item_token t = tok_of(1);
  EXPECT_EQ(q.xfer(t, true, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(30))),
            empty_token);
  // Caller still owns the token (inline here, nothing to free).
}

TEST(TransferQueue, SyncPairRendezvous) {
  transfer_queue<> q;
  std::thread p([&] {
    item_token t = tok_of(11);
    EXPECT_EQ(q.xfer(t, true, wait_kind::sync), t);
  });
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::sync)), 11);
  p.join();
}

TEST(TransferQueue, CancelledNodeIsCleanedFromInterior) {
  transfer_queue<> q;
  // Build [D1, D2] async, then a timed consumer is irrelevant... instead:
  // park a timed producer behind an async one, let it cancel, verify the
  // interior node is spliced out.
  q.xfer(tok_of(1), true, wait_kind::async);
  std::thread timed([&] {
    EXPECT_EQ(q.xfer(tok_of(2), true, wait_kind::timed,
                     deadline::in(std::chrono::milliseconds(40))),
              empty_token);
  });
  // Wait until the timed producer is linked (length 2), then let it cancel.
  while (q.unsafe_length() < 2) std::this_thread::yield();
  // Append a third so the cancelled node is interior when cleaned.
  timed.join();
  q.xfer(tok_of(3), true, wait_kind::async);
  // Consume: must see 1 then 3; the cancelled 2 must be skipped.
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), 1);
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), 3);
  EXPECT_EQ(q.xfer(empty_token, false, wait_kind::now), empty_token);
}

TEST(TransferQueue, CancelledTailIsDeferredThenCollected) {
  diag::reset_all();
  transfer_queue<> q;
  // A timed producer alone in the queue cancels at the tail: clean() must
  // take the clean_me deferral path (it cannot splice the tail).
  EXPECT_EQ(q.xfer(tok_of(1), true, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(20))),
            empty_token);
  EXPECT_GE(diag::read(diag::id::clean_call), 1u);
  // The cancelled node lingers (deferred)...
  EXPECT_LE(q.unsafe_length(), 1u);
  // ...but ordinary traffic flows past it and collects it.
  q.xfer(tok_of(7), true, wait_kind::async);
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), 7);
  EXPECT_EQ(q.xfer(empty_token, false, wait_kind::now), empty_token);
  EXPECT_LE(q.unsafe_length(), 1u);
}

TEST(TransferQueue, OfferStormDoesNotAccumulateGarbage) {
  // Paper Pragmatics: "items offered at a very high rate, but with a very
  // low time-out patience" must not build up cancelled nodes.
  transfer_queue<> q;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        item_token tk = tok_of(i);
        if (q.xfer(tk, true, wait_kind::timed,
                   deadline::in(std::chrono::microseconds(20))) == empty_token)
          ; // inline token, nothing to dispose
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_LE(q.unsafe_length(), 16u)
      << "cancelled-node cleaning failed to bound buildup";
}

TEST(TransferQueue, MixedModeStressConserves) {
  transfer_queue<> q;
  const int np = 3, nc = 3, per = 3000;
  std::atomic<long> in{0}, out{0};
  std::atomic<int> consumed{0};
  const int total = np * per;
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        for (;;) {
          item_token tk = tok_of(v);
          wait_kind wk = (i % 3 == 0) ? wait_kind::timed : wait_kind::sync;
          item_token r =
              q.xfer(tk, true, wk, deadline::in(std::chrono::milliseconds(2)));
          if (r != empty_token) break;
        }
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      while (consumed.load() < total) {
        item_token r = q.xfer(empty_token, false, wait_kind::timed,
                              deadline::in(std::chrono::milliseconds(2)));
        if (r != empty_token) {
          out.fetch_add(val_of(r));
          consumed.fetch_add(1);
        }
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_LE(q.unsafe_length(), 16u);
}

TEST(TransferQueue, NodesAreReclaimed) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    transfer_queue<> q(sync::spin_policy::adaptive(),
                       mem::pooled_hp_reclaimer{&dom});
    std::thread p([&] {
      for (int i = 0; i < 2000; ++i) q.xfer(tok_of(i), true, wait_kind::sync);
    });
    for (int i = 0; i < 2000; ++i)
      (void)val_of(q.xfer(empty_token, false, wait_kind::sync));
    p.join();
    dom.drain();
    // Everything retired must eventually be freed (destructor covers the
    // remainder; canary poisoning is exercised by ASan CI builds).
  }
  auto alloc = diag::read(diag::id::node_alloc);
  auto freed = diag::read(diag::id::node_free);
  EXPECT_EQ(alloc, freed) << "allocated nodes must all be freed or retired";
}

TEST(TransferQueue, InterruptCancelsWaiter) {
  transfer_queue<> q;
  sync::interrupt_token tok;
  std::atomic<bool> failed{false};
  std::thread c([&] {
    item_token r = q.xfer(empty_token, false, wait_kind::timed,
                          deadline::unbounded(), &tok);
    failed.store(r == empty_token);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tok.interrupt();
  c.join();
  EXPECT_TRUE(failed.load());
  // Queue remains usable.
  q.xfer(tok_of(1), true, wait_kind::async);
  EXPECT_EQ(val_of(q.xfer(empty_token, false, wait_kind::now)), 1);
}

TEST(TransferQueue, DestructorDisposesBufferedData) {
  // Boxed payloads buffered at destruction must be released through the
  // disposer (checked by ASan in sanitizer CI, and by box counters here).
  diag::reset_all();
  {
    transfer_queue<> q;
    q.set_token_disposer(
        [](item_token t) { item_codec<std::string>::dispose(t); });
    for (int i = 0; i < 10; ++i)
      q.xfer(item_codec<std::string>::encode(std::string(100, 'x')), true,
             wait_kind::async);
  }
  EXPECT_EQ(diag::read(diag::id::box_alloc), diag::read(diag::id::box_free));
}

TEST(TransferQueue, FifoAcrossManyAsyncProducers) {
  transfer_queue<> q;
  // Sequential per-producer order must survive concurrent async appends.
  const int np = 4, per = 2000;
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i)
        q.xfer(tok_of(p * per + i), true, wait_kind::async);
    });
  for (auto &t : ts) t.join();
  std::vector<int> last(np, -1);
  for (int i = 0; i < np * per; ++i) {
    int v = val_of(q.xfer(empty_token, false, wait_kind::now));
    int p = v / per;
    EXPECT_GT(v % per, last[p]) << "per-producer FIFO violated";
    last[p] = v % per;
  }
}
