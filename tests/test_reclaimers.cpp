// Reclaimer-policy sweep: the full functional battery must hold for every
// (structure, reclaimer) combination, since the reclaimer is a template
// policy a downstream user can swap.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/synchronous_queue.hpp"
#include "memory/reclaim.hpp"

using namespace ssq;

template <typename Q>
class ReclaimerSweep : public ::testing::Test {};

using Combos = ::testing::Types<
    synchronous_queue<int, true, mem::hp_reclaimer>,
    synchronous_queue<int, false, mem::hp_reclaimer>,
    synchronous_queue<int, true, mem::deferred_reclaimer>,
    synchronous_queue<int, false, mem::deferred_reclaimer>,
    synchronous_queue<int, true, mem::pooled_hp_reclaimer>,
    synchronous_queue<int, false, mem::pooled_hp_reclaimer>,
    synchronous_queue<int, true, mem::pooled_deferred_reclaimer>,
    synchronous_queue<int, false, mem::pooled_deferred_reclaimer>>;
TYPED_TEST_SUITE(ReclaimerSweep, Combos);

TYPED_TEST(ReclaimerSweep, PairHandoff) {
  TypeParam q;
  std::thread p([&] { q.put(3); });
  EXPECT_EQ(q.take(), 3);
  p.join();
}

TYPED_TEST(ReclaimerSweep, ManyTransfersConserve) {
  TypeParam q;
  const int n = 4000;
  std::thread p([&] {
    for (int i = 0; i < n; ++i) q.put(i);
  });
  long sum = 0;
  for (int i = 0; i < n; ++i) sum += q.take();
  p.join();
  EXPECT_EQ(sum, static_cast<long>(n - 1) * n / 2);
}

TYPED_TEST(ReclaimerSweep, TimeoutAndCancellation) {
  TypeParam q;
  EXPECT_FALSE(q.try_put(1, std::chrono::milliseconds(10)));
  EXPECT_FALSE(q.try_take(std::chrono::milliseconds(10)).has_value());
  // Still usable.
  std::thread p([&] { q.put(9); });
  EXPECT_EQ(q.take(), 9);
  p.join();
}

TYPED_TEST(ReclaimerSweep, ConcurrentConservation) {
  TypeParam q;
  const int np = 3, nc = 3, per = 1500;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
}

TYPED_TEST(ReclaimerSweep, CancellationStormStaysBounded) {
  TypeParam q;
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 1500; ++i)
        (void)q.try_put(i, std::chrono::microseconds(20));
    });
  for (auto &t : ts) t.join();
  EXPECT_LE(q.unsafe_length(), 16u);
}

// hp-specific: quantitative reclamation via a private domain.
TEST(ReclaimerAccounting, PrivateDomainFreesEverything) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    synchronous_queue<int, true, mem::hp_reclaimer> q(
        sync::spin_policy::adaptive(), mem::hp_reclaimer{&dom});
    std::thread p([&] {
      for (int i = 0; i < 3000; ++i) q.put(i);
    });
    for (int i = 0; i < 3000; ++i) (void)q.take();
    p.join();
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

TEST(ReclaimerAccounting, HpBoundsGarbageUnderLoad) {
  mem::hazard_domain dom;
  synchronous_queue<int, false, mem::hp_reclaimer> q(
      sync::spin_policy::adaptive(), mem::hp_reclaimer{&dom});
  std::thread p([&] {
    for (int i = 0; i < 20000; ++i) q.put(i);
  });
  for (int i = 0; i < 20000; ++i) (void)q.take();
  p.join();
  // Amortized scans must keep unreclaimed garbage bounded even mid-run.
  EXPECT_LT(dom.approx_retired(), 4096u);
}

TEST(ReclaimerAccounting, PooledPrivateDomainFreesEverything) {
  // The alloc/free balance must be reclaimer-independent: pooled create and
  // retire bump the same counters as the heap policy (deleters never bump),
  // so the identity proves nodes leave the structure exactly once whether
  // they return to the heap or to a magazine.
  diag::reset_all();
  {
    mem::hazard_domain dom;
    synchronous_queue<int, true, mem::pooled_hp_reclaimer> q(
        sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    std::thread p([&] {
      for (int i = 0; i < 3000; ++i) q.put(i);
    });
    for (int i = 0; i < 3000; ++i) (void)q.take();
    p.join();
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

TEST(ReclaimerAccounting, PooledRecyclesInSteadyState) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    synchronous_queue<int, true, mem::pooled_hp_reclaimer> q(
        sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    std::thread p([&] {
      for (int i = 0; i < 3000; ++i) q.put(i);
    });
    for (int i = 0; i < 3000; ++i) (void)q.take();
    p.join();
    dom.drain();
  }
  // In steady state the pool must serve allocations from recycled blocks,
  // not fresh chunks: 6000 transfers through a near-empty queue touch only
  // a handful of distinct nodes.
  EXPECT_GT(diag::read(diag::id::pool_recycle),
            diag::read(diag::id::pool_fresh));
}

TEST(ReclaimerAccounting, DeferredFreesOnlyAtDestruction) {
  diag::reset_all();
  auto before_retire = diag::read(diag::id::node_retire);
  {
    synchronous_queue<int, true, mem::deferred_reclaimer> q;
    std::thread p([&] {
      for (int i = 0; i < 500; ++i) q.put(i);
    });
    for (int i = 0; i < 500; ++i) (void)q.take();
    p.join();
    EXPECT_GT(diag::read(diag::id::node_retire), before_retire)
        << "nodes were retired to the tombstone list";
  }
  // ASan CI verifies no leak after destruction.
}
