// Segmented waiter-cell core (core/segment_queue.hpp): cell protocol,
// segment churn/reaping, the facade and channel hookups, and the
// registering select path that only this core supports.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "core/channel.hpp"
#include "core/segment_queue.hpp"
#include "core/select.hpp"
#include "core/synchronous_queue.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

using seg_q = segmented_synchronous_queue<int>;

// ------------------------------------------------------------- basic handoff

TEST(SegmentQueue, BlockingPutTake) {
  seg_q q;
  std::thread p([&] { q.put(41); });
  EXPECT_EQ(q.take(), 41);
  p.join();
  EXPECT_TRUE(q.is_empty());
  EXPECT_EQ(q.unsafe_length(), 0u);
}

TEST(SegmentQueue, FifoPairingAcrossSegmentBoundaries) {
  // One producer, one consumer, 5x the segment size: pairing follows the
  // monotonic cell index, so order must be exactly FIFO even as the
  // rendezvous point walks across segment boundaries.
  seg_q q;
  const int n = 5 * static_cast<int>(segment_queue<>::seg_cells);
  std::thread p([&] {
    for (int i = 0; i < n; ++i) q.put(i);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(q.take(), i);
  p.join();
}

TEST(SegmentQueue, NowOpsFailOnEmpty) {
  seg_q q;
  EXPECT_FALSE(q.offer(1));
  EXPECT_FALSE(q.poll().has_value());
  // Failed now-ops must not install anything a later op could pair with.
  EXPECT_TRUE(q.is_empty());
  std::thread p([&] { q.put(7); });
  EXPECT_EQ(q.take(), 7);
  p.join();
}

TEST(SegmentQueue, NowOpsSucceedAgainstWaitingPeer) {
  seg_q q;
  std::thread p([&] { q.put(13); });
  // Wait until the producer is visibly parked in its cell.
  while (q.is_empty()) std::this_thread::yield();
  std::optional<int> v;
  // The waiter may be mid-install; the counter pre-check can race it once,
  // so poll in a bounded loop rather than asserting the first one.
  for (int i = 0; i < 100000 && !v; ++i) v = q.poll();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 13);
  p.join();
}

// --------------------------------------------------------- timed + interrupt

TEST(SegmentQueue, TimedExpiryPoisonsAndHandsValueBack) {
  seg_q q;
  int v = 99;
  EXPECT_FALSE(q.try_put_ref(v, deadline::in(std::chrono::milliseconds(20))));
  EXPECT_EQ(v, 99); // value moved back out on cancellation
  EXPECT_FALSE(q.try_take(std::chrono::milliseconds(20)).has_value());
  // Poisoned cells burn indices, not liveness: the queue still pairs.
  EXPECT_TRUE(q.is_empty());
  std::thread p([&] { q.put(3); });
  EXPECT_EQ(q.take(), 3);
  p.join();
}

TEST(SegmentQueue, InterruptWakesWaiter) {
  seg_q q;
  sync::interrupt_token tok;
  std::thread firer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    tok.interrupt();
  });
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q.try_take(deadline::in(std::chrono::seconds(30)), &tok));
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(10));
  firer.join();
}

// ------------------------------------------------------------ async producer

TEST(SegmentQueue, AsyncProducerParksValueInCell) {
  segment_queue<> core;
  item_token t = item_codec<int>::encode(55);
  EXPECT_NE(core.xfer(t, true, wait_kind::async), empty_token);
  EXPECT_EQ(core.unsafe_length(), 1u);
  item_token r = core.xfer(empty_token, false, wait_kind::now);
  ASSERT_NE(r, empty_token);
  EXPECT_EQ(item_codec<int>::decode_consume(r), 55);
  EXPECT_TRUE(core.is_empty());
}

// --------------------------------------------------- segment churn / reaping

TEST(SegmentQueue, SegmentsRetireUnderChurn) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    seg_q q(sync::spin_policy::adaptive(), mem::pooled_hp_reclaimer{&dom});
    const int n = 20 * static_cast<int>(segment_queue<>::seg_cells);
    std::thread p([&] {
      for (int i = 0; i < n; ++i) q.put(i);
    });
    long sum = 0;
    for (int i = 0; i < n; ++i) sum += q.take();
    p.join();
    EXPECT_EQ(sum, static_cast<long>(n) * (n - 1) / 2);
    // 20 segments' worth of transfers must have reaped nearly all of them;
    // at most the live head plus one in-flight neighbor stay resident.
    EXPECT_GE(diag::read(diag::id::seg_retire), 18u);
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc), diag::read(diag::id::node_free));
}

TEST(SegmentQueue, ManyThreadsConserveValues) {
  seg_q q;
  const int threads = 4, per = 2000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < per; ++i) {
        int v = t * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.take());
    });
  }
  for (auto &th : ts) th.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(q.is_empty());
}

// -------------------------------------------------------- registering select

TEST(SegmentSelect, TakeReceivesFromReadyQueue) {
  seg_q a, b;
  std::thread p([&] { b.put(42); });
  auto r = select_take<int>(deadline::in(std::chrono::seconds(30)), a, b);
  p.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 42);
}

TEST(SegmentSelect, TakeTimesOutLeavingOnlyPoison) {
  seg_q a, b;
  auto t0 = steady_clock::now();
  auto r = select_take<int>(deadline::in(std::chrono::milliseconds(40)), a, b);
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(35));
  // The timed-out reservations were poisoned, not leaked as live waiters.
  EXPECT_TRUE(a.is_empty());
  EXPECT_TRUE(b.is_empty());
  // Both queues still rendezvous normally afterwards.
  std::thread p([&] { a.put(5); });
  EXPECT_EQ(a.take(), 5);
  p.join();
}

TEST(SegmentSelect, PutDeliversToReadyConsumer) {
  seg_q a, b;
  std::thread c([&] { EXPECT_EQ(b.take(), 9); });
  int v = 9;
  auto r = select_put(v, deadline::in(std::chrono::seconds(30)), a, b);
  c.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 1u);
}

TEST(SegmentSelect, PutTimeoutHandsValueBack) {
  seg_q a, b;
  int v = 77;
  auto r = select_put(v, deadline::in(std::chrono::milliseconds(40)), a, b);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(v, 77);
  EXPECT_TRUE(a.is_empty());
  EXPECT_TRUE(b.is_empty());
}

TEST(SegmentSelect, SelectMeetsSelect) {
  // A registered put-select and a registered take-select must find each
  // other through the reservation protocol (no polling quantum exists to
  // save them): cross-select arbitration, both arbiters must commit.
  seg_q a, b;
  std::thread putter([&] {
    int v = 123;
    auto r = select_put(v, deadline::in(std::chrono::seconds(30)), a, b);
    ASSERT_TRUE(r.has_value());
  });
  auto r = select_take<int>(deadline::in(std::chrono::seconds(30)), a, b);
  putter.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 123);
  EXPECT_TRUE(a.is_empty());
  EXPECT_TRUE(b.is_empty());
}

TEST(SegmentSelect, ManySelectorsDrainManyProducers) {
  seg_q a, b;
  const int per = 300;
  std::thread pa([&] {
    for (int i = 0; i < per; ++i) a.put(i);
  });
  std::thread pb([&] {
    for (int i = 0; i < per; ++i) b.put(1000 + i);
  });
  int from_a = 0, from_b = 0;
  long sum = 0;
  for (int i = 0; i < 2 * per; ++i) {
    auto r = select_take<int>(deadline::in(std::chrono::seconds(60)), a, b);
    ASSERT_TRUE(r.has_value());
    (r->first == 0 ? from_a : from_b)++;
    sum += r->second;
  }
  pa.join();
  pb.join();
  EXPECT_EQ(from_a, per);
  EXPECT_EQ(from_b, per);
  EXPECT_EQ(sum, (long)per * (per - 1) / 2 + (long)per * 1000 +
                     (long)per * (per - 1) / 2);
}

TEST(SegmentSelect, ConcurrentSelectorsRace) {
  // Multiple registered selectors compete for the same traffic: the loser
  // of each arbitration must re-register (its old cell was poisoned by the
  // partner) and still get its share eventually.
  seg_q a, b;
  const int items = 400;
  std::atomic<long> got{0};
  std::atomic<int> matched{0};
  std::vector<std::thread> sels;
  for (int s = 0; s < 3; ++s) {
    sels.emplace_back([&] {
      for (;;) {
        if (matched.load() >= items) return;
        auto r =
            select_take<int>(deadline::in(std::chrono::milliseconds(50)), a, b);
        if (r) {
          got.fetch_add(r->second);
          matched.fetch_add(1);
        }
      }
    });
  }
  long want = 0;
  for (int i = 0; i < items; ++i) {
    want += i;
    (i % 2 ? a : b).put(i);
  }
  for (auto &t : sels) t.join();
  EXPECT_EQ(matched.load(), items);
  EXPECT_EQ(got.load(), want);
  EXPECT_TRUE(a.is_empty());
  EXPECT_TRUE(b.is_empty());
}

// -------------------------------------------------------------- channel view

TEST(SegmentChannel, SendRecvAndClose) {
  segmented_channel<int> ch;
  std::thread p([&] { EXPECT_TRUE(ch.send(11)); });
  auto v = ch.recv();
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 11);

  std::thread blocked([&] { EXPECT_FALSE(ch.recv().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  blocked.join();
  EXPECT_FALSE(ch.send(1));
}
