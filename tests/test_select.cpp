// Tests for CSP-style alternation (core/select.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/select.hpp"
#include "core/synchronous_queue.hpp"

using namespace ssq;

using uq = synchronous_queue<int, false>;
using fq = synchronous_queue<int, true>;

TEST(SelectTake, ReceivesFromTheReadyQueue) {
  uq a;
  fq b;
  std::thread p([&] { b.put(42); });
  auto r = select_take<int>(deadline::in(std::chrono::seconds(10)), a, b);
  p.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 42);
}

TEST(SelectTake, TimesOutWhenNothingArrives) {
  uq a, b;
  auto t0 = steady_clock::now();
  auto r = select_take<int>(deadline::in(std::chrono::milliseconds(40)), a, b);
  EXPECT_FALSE(r.has_value());
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(35));
}

TEST(SelectTake, SingleQueueDegeneratesToTimedTake) {
  uq a;
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    a.put(7);
  });
  auto r = select_take<int>(deadline::in(std::chrono::seconds(10)), a);
  p.join();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->second, 7);
}

TEST(SelectTake, DrainsBothSourcesWithoutStarvation) {
  uq a;
  fq b;
  const int per = 200;
  std::thread pa([&] {
    for (int i = 0; i < per; ++i) a.put(i);
  });
  std::thread pb([&] {
    for (int i = 0; i < per; ++i) b.put(1000 + i);
  });
  int from_a = 0, from_b = 0;
  long sum = 0;
  for (int i = 0; i < 2 * per; ++i) {
    auto r = select_take<int>(deadline::in(std::chrono::seconds(60)), a, b);
    ASSERT_TRUE(r.has_value());
    (r->first == 0 ? from_a : from_b)++;
    sum += r->second;
  }
  pa.join();
  pb.join();
  EXPECT_EQ(from_a, per);
  EXPECT_EQ(from_b, per);
  long expect = 0;
  for (int i = 0; i < per; ++i) expect += i + 1000 + i;
  EXPECT_EQ(sum, expect);
}

TEST(SelectPut, DeliversToTheWaitingConsumer) {
  uq a;
  fq b;
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(b.take()); });
  int v = 9;
  auto idx = select_put(v, deadline::in(std::chrono::seconds(10)), a, b);
  c.join();
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
  EXPECT_EQ(got.load(), 9);
}

TEST(SelectPut, TimesOutAndReturnsValue) {
  uq a, b;
  int v = 1234;
  auto idx = select_put(v, deadline::in(std::chrono::milliseconds(40)), a, b);
  EXPECT_FALSE(idx.has_value());
  EXPECT_EQ(v, 1234) << "value must be handed back on failure";
}

TEST(Select, PutSelectMeetsTakeSelect) {
  // The documented worst case: both sides are selecting. They must meet
  // within a camping quantum.
  uq a;
  fq b;
  std::atomic<bool> ok{false};
  std::thread taker([&] {
    auto r = select_take<int>(deadline::in(std::chrono::seconds(60)), a, b);
    ok.store(r.has_value() && r->second == 5);
  });
  int v = 5;
  auto idx = select_put(v, deadline::in(std::chrono::seconds(60)), a, b);
  taker.join();
  ASSERT_TRUE(idx.has_value());
  EXPECT_TRUE(ok.load());
}

TEST(Select, ManyRoundsBothDirections) {
  uq a;
  fq b;
  const int rounds = 300;
  std::thread peer([&] {
    for (int i = 0; i < rounds; ++i) {
      if (i % 2) {
        int v = i;
        ASSERT_TRUE(
            select_put(v, deadline::in(std::chrono::seconds(60)), a, b));
      } else {
        ASSERT_TRUE(
            select_take<int>(deadline::in(std::chrono::seconds(60)), a, b));
      }
    }
  });
  for (int i = 0; i < rounds; ++i) {
    if (i % 2) {
      ASSERT_TRUE(
          select_take<int>(deadline::in(std::chrono::seconds(60)), a, b));
    } else {
      int v = i;
      ASSERT_TRUE(select_put(v, deadline::in(std::chrono::seconds(60)), a, b));
    }
  }
  peer.join();
}
