// White-box tests for the synchronous dual stack core (transfer_stack):
// annihilation protocol, helping, cancellation, LIFO service, reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/transfer_stack.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

namespace {

item_token tok_of(int v) { return item_codec<int>::encode(v); }
int val_of(item_token t) { return item_codec<int>::decode_consume(t); }

} // namespace

TEST(TransferStack, NowModeFailsOnEmpty) {
  transfer_stack<> s;
  EXPECT_EQ(s.xfer(tok_of(1), true, wait_kind::now), empty_token);
  EXPECT_EQ(s.xfer(empty_token, false, wait_kind::now), empty_token);
  EXPECT_TRUE(s.is_empty());
}

TEST(TransferStack, AsyncProducerDoesNotWait) {
  transfer_stack<> s;
  item_token t = tok_of(9);
  EXPECT_EQ(s.xfer(t, true, wait_kind::async), t);
  EXPECT_FALSE(s.is_empty());
  EXPECT_TRUE(s.head_is_data());
  EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::now)), 9);
  EXPECT_TRUE(s.is_empty());
}

TEST(TransferStack, AsyncIsLifo) {
  transfer_stack<> s;
  for (int i = 0; i < 50; ++i) s.xfer(tok_of(i), true, wait_kind::async);
  for (int i = 49; i >= 0; --i)
    EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::now)), i);
}

TEST(TransferStack, SyncPairRendezvous) {
  transfer_stack<> s;
  std::thread p([&] {
    item_token t = tok_of(21);
    EXPECT_EQ(s.xfer(t, true, wait_kind::sync), t);
  });
  EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::sync)), 21);
  p.join();
}

TEST(TransferStack, ReverseDirectionRendezvous) {
  // Consumer first, producer fulfills: exercises the fulfilling-node path
  // from the producer side.
  transfer_stack<> s;
  std::atomic<int> got{-1};
  std::thread c([&] {
    got.store(val_of(s.xfer(empty_token, false, wait_kind::sync)));
  });
  while (s.is_empty()) std::this_thread::yield(); // reservation linked
  item_token t = tok_of(33);
  EXPECT_EQ(s.xfer(t, true, wait_kind::sync), t);
  c.join();
  EXPECT_EQ(got.load(), 33);
}

TEST(TransferStack, TimedConsumerExpires) {
  transfer_stack<> s;
  auto t0 = steady_clock::now();
  EXPECT_EQ(s.xfer(empty_token, false, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(30))),
            empty_token);
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(25));
  EXPECT_LE(s.unsafe_length(), 1u); // cancelled node may linger briefly
}

TEST(TransferStack, TimedProducerExpires) {
  transfer_stack<> s;
  EXPECT_EQ(s.xfer(tok_of(1), true, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(30))),
            empty_token);
}

TEST(TransferStack, CancelledNodesAreShedByTraffic) {
  transfer_stack<> s;
  // Stack up several cancelled reservations.
  std::vector<std::thread> cs;
  for (int i = 0; i < 4; ++i)
    cs.emplace_back([&] {
      EXPECT_EQ(s.xfer(empty_token, false, wait_kind::timed,
                       deadline::in(std::chrono::milliseconds(20))),
                empty_token);
    });
  for (auto &t : cs) t.join();
  // New traffic must skip the garbage and pair correctly.
  std::thread c([&] {
    EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::sync)), 5);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  item_token t = tok_of(5);
  EXPECT_EQ(s.xfer(t, true, wait_kind::sync), t);
  c.join();
  EXPECT_LE(s.unsafe_length(), 5u);
}

TEST(TransferStack, NowPopSkipsCancelledTop) {
  transfer_stack<> s;
  s.xfer(tok_of(1), true, wait_kind::async);
  // A timed producer atop the async one cancels, leaving garbage at the
  // head.
  EXPECT_EQ(s.xfer(tok_of(2), true, wait_kind::timed,
                   deadline::in(std::chrono::milliseconds(15))),
            empty_token);
  // now-mode consumer must shed the cancelled node and find the datum.
  EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::now)), 1);
}

TEST(TransferStack, LifoServiceOfWaitingConsumers) {
  // Unfairness property: with two parked consumers, the most recent wins.
  transfer_stack<> s;
  std::atomic<int> r1{-1}, r2{-1};
  std::thread c1([&] {
    r1.store(val_of(s.xfer(empty_token, false, wait_kind::sync)));
  });
  while (s.unsafe_length() < 1) std::this_thread::yield();
  std::thread c2([&] {
    r2.store(val_of(s.xfer(empty_token, false, wait_kind::sync)));
  });
  while (s.unsafe_length() < 2) std::this_thread::yield();
  s.xfer(tok_of(1), true, wait_kind::sync);
  c2.join();
  EXPECT_EQ(r2.load(), 1) << "top of stack (most recent) is served first";
  s.xfer(tok_of(2), true, wait_kind::sync);
  c1.join();
  EXPECT_EQ(r1.load(), 2);
}

TEST(TransferStack, MixedModeStressConserves) {
  transfer_stack<> s;
  const int np = 3, nc = 3, per = 3000;
  std::atomic<long> in{0}, out{0};
  std::atomic<int> consumed{0};
  const int total = np * per;
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        for (;;) {
          item_token tk = tok_of(v);
          wait_kind wk = (i % 3 == 0) ? wait_kind::timed : wait_kind::sync;
          item_token r =
              s.xfer(tk, true, wk, deadline::in(std::chrono::milliseconds(2)));
          if (r != empty_token) break;
        }
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      while (consumed.load() < total) {
        item_token r = s.xfer(empty_token, false, wait_kind::timed,
                              deadline::in(std::chrono::milliseconds(2)));
        if (r != empty_token) {
          out.fetch_add(val_of(r));
          consumed.fetch_add(1);
        }
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_LE(s.unsafe_length(), 16u);
}

TEST(TransferStack, NodesAreReclaimed) {
  diag::reset_all();
  {
    mem::hazard_domain dom;
    transfer_stack<> s(sync::spin_policy::adaptive(),
                       mem::pooled_hp_reclaimer{&dom});
    std::thread p([&] {
      for (int i = 0; i < 2000; ++i) s.xfer(tok_of(i), true, wait_kind::sync);
    });
    for (int i = 0; i < 2000; ++i)
      (void)val_of(s.xfer(empty_token, false, wait_kind::sync));
    p.join();
    dom.drain();
  }
  EXPECT_EQ(diag::read(diag::id::node_alloc),
            diag::read(diag::id::node_free));
}

TEST(TransferStack, InterruptCancelsWaiter) {
  transfer_stack<> s;
  sync::interrupt_token tok;
  std::atomic<bool> failed{false};
  std::thread c([&] {
    item_token r = s.xfer(empty_token, false, wait_kind::timed,
                          deadline::unbounded(), &tok);
    failed.store(r == empty_token);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tok.interrupt();
  c.join();
  EXPECT_TRUE(failed.load());
  s.xfer(tok_of(1), true, wait_kind::async);
  EXPECT_EQ(val_of(s.xfer(empty_token, false, wait_kind::now)), 1);
}

TEST(TransferStack, HelpersCompleteStrandedFulfillment) {
  // Many threads hammering a small stack force the helping path (third
  // branch of transfer): if helping were broken this would livelock; the
  // conservation check catches value corruption.
  transfer_stack<> s;
  const int n = 4, per = 4000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < n; ++i)
    ts.emplace_back([&, i] {
      if (i % 2 == 0) {
        for (int j = 0; j < per; ++j) {
          int v = i * per + j + 1;
          s.xfer(tok_of(v), true, wait_kind::sync);
          in.fetch_add(v);
        }
      } else {
        for (int j = 0; j < per; ++j)
          out.fetch_add(val_of(s.xfer(empty_token, false, wait_kind::sync)));
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(s.is_empty());
}

TEST(TransferStack, DestructorDisposesBufferedData) {
  diag::reset_all();
  {
    transfer_stack<> s;
    s.set_token_disposer(
        [](item_token t) { item_codec<std::string>::dispose(t); });
    for (int i = 0; i < 10; ++i)
      s.xfer(item_codec<std::string>::encode(std::string(64, 'y')), true,
             wait_kind::async);
  }
  EXPECT_EQ(diag::read(diag::id::box_alloc), diag::read(diag::id::box_free));
}
