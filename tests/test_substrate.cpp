// Tests for the classic nonblocking substrates (Treiber stack, M&S queue)
// and the non-synchronous dual data structures derived from them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "substrate/dual_ds.hpp"
#include "substrate/ms_queue.hpp"
#include "substrate/treiber_stack.hpp"

using namespace ssq;

// --------------------------------------------------------------- treiber

TEST(Treiber, LifoOrderSingleThreaded) {
  treiber_stack<int> s;
  for (int i = 0; i < 10; ++i) s.push(i);
  for (int i = 9; i >= 0; --i) {
    auto v = s.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(s.pop().has_value());
}

TEST(Treiber, EmptyPopReturnsNullopt) {
  treiber_stack<std::string> s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.pop().has_value());
}

TEST(Treiber, UnsafeSizeCounts) {
  treiber_stack<int> s;
  for (int i = 0; i < 5; ++i) s.push(i);
  EXPECT_EQ(s.unsafe_size(), 5u);
}

TEST(Treiber, DestructorFreesRemaining) {
  // Leak-checked implicitly when run under ASan builds.
  auto s = std::make_unique<treiber_stack<std::string>>();
  for (int i = 0; i < 100; ++i) s->push(std::to_string(i));
}

TEST(Treiber, ConcurrentConservation) {
  mem::epoch_domain dom;
  treiber_stack<std::uint64_t> s(dom);
  const int np = 3, nc = 3, per = 5000;
  std::atomic<std::uint64_t> pushed{0}, popped{0};
  std::atomic<int> pop_count{0};
  const int total = np * per;

  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * per + i + 1;
        s.push(v);
        pushed.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      while (pop_count.load() < total) {
        auto v = s.pop();
        if (v) {
          popped.fetch_add(*v);
          pop_count.fetch_add(1);
        }
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(pushed.load(), popped.load());
  EXPECT_TRUE(s.empty());
}

// --------------------------------------------------------------- ms_queue

TEST(MsQueue, FifoOrderSingleThreaded) {
  ms_queue<int> q;
  for (int i = 0; i < 10; ++i) q.enqueue(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MsQueue, EmptyDequeueReturnsNullopt) {
  ms_queue<std::string> q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(MsQueue, InterleavedOperations) {
  ms_queue<int> q;
  q.enqueue(1);
  q.enqueue(2);
  EXPECT_EQ(*q.dequeue(), 1);
  q.enqueue(3);
  EXPECT_EQ(*q.dequeue(), 2);
  EXPECT_EQ(*q.dequeue(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(MsQueue, NonTrivialPayload) {
  ms_queue<std::string> q;
  q.enqueue(std::string(500, 'a'));
  q.enqueue(std::string(500, 'b'));
  EXPECT_EQ(q.dequeue()->front(), 'a');
  EXPECT_EQ(q.dequeue()->front(), 'b');
}

TEST(MsQueue, DestructorFreesRemaining) {
  auto q = std::make_unique<ms_queue<std::string>>();
  for (int i = 0; i < 100; ++i) q->enqueue(std::to_string(i));
}

TEST(MsQueue, PerProducerOrderIsPreserved) {
  // FIFO per producer: a consumer must see each producer's values in
  // increasing order even under interleaving.
  ms_queue<std::uint64_t> q;
  const int np = 3, per = 4000;
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i)
        q.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
    });
  std::vector<std::uint64_t> last(np, 0);
  int got = 0;
  bool order_ok = true;
  while (got < np * per) {
    auto v = q.dequeue();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    int p = static_cast<int>(*v >> 32);
    std::uint64_t seq = *v & 0xFFFFFFFFu;
    if (last[p] != 0 && seq <= last[p]) order_ok = false;
    last[p] = seq ? seq : last[p];
    ++got;
  }
  for (auto &t : ts) t.join();
  EXPECT_TRUE(order_ok);
}

TEST(MsQueue, ConcurrentConservation) {
  mem::epoch_domain dom;
  ms_queue<std::uint64_t> q(dom);
  const int np = 4, nc = 4, per = 4000;
  std::atomic<std::uint64_t> in{0}, out{0};
  std::atomic<int> count{0};
  const int total = np * per;
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * per + i + 1;
        q.enqueue(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      while (count.load() < total) {
        auto v = q.dequeue();
        if (v) {
          out.fetch_add(*v);
          count.fetch_add(1);
        }
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(q.empty());
}

// --------------------------------------------------------------- dual_ds

TEST(DualQueueDs, ProducersNeverBlock) {
  dual_queue_ds<int> q;
  // With no consumer present, enqueue must return immediately.
  auto t0 = steady_clock::now();
  for (int i = 0; i < 1000; ++i) q.enqueue(i);
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(q.dequeue(), i) << "FIFO";
}

TEST(DualQueueDs, ConsumerWaitsForProducer) {
  dual_queue_ds<int> q;
  std::atomic<bool> got{false};
  std::thread c([&] {
    EXPECT_EQ(q.dequeue(), 99);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load()) << "dequeue must block on empty";
  q.enqueue(99);
  c.join();
  EXPECT_TRUE(got.load());
}

TEST(DualQueueDs, ReservationsServedFifo) {
  // Two consumers install reservations in a known order; producers must
  // fulfill them in that order (the §2.2 dual-data-structure property).
  dual_queue_ds<int> q;
  std::atomic<int> first_result{-1}, second_result{-1};
  std::thread c1([&] { first_result.store(q.dequeue()); });
  // Ensure c1's reservation is linked before c2 arrives.
  while (q.is_empty()) std::this_thread::yield();
  std::thread c2([&] { second_result.store(q.dequeue()); });
  // Wait until both reservations are in (length-2 list).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.enqueue(1);
  q.enqueue(2);
  c1.join();
  c2.join();
  EXPECT_EQ(first_result.load(), 1) << "earlier dequeue gets earlier item";
  EXPECT_EQ(second_result.load(), 2);
}

TEST(DualQueueDs, TryDequeueIsTotalized) {
  dual_queue_ds<int> q;
  EXPECT_FALSE(q.try_dequeue().has_value()) << "fails on empty, no blocking";
  q.enqueue(5);
  auto v = q.try_dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

TEST(DualQueueDs, TimedDequeue) {
  dual_queue_ds<int> q;
  EXPECT_FALSE(
      q.try_dequeue(deadline::in(std::chrono::milliseconds(20))).has_value());
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.enqueue(7);
  });
  auto v = q.try_dequeue(deadline::in(std::chrono::seconds(5)));
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(DualStackDs, ProducersNeverBlock) {
  dual_stack_ds<int> s;
  for (int i = 0; i < 100; ++i) s.push(i);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(s.pop(), i) << "LIFO";
}

TEST(DualStackDs, ConsumerWaitsForProducer) {
  dual_stack_ds<int> s;
  std::atomic<bool> got{false};
  std::thread c([&] {
    EXPECT_EQ(s.pop(), 42);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  s.push(42);
  c.join();
}

TEST(DualStackDs, MixedStress) {
  dual_stack_ds<std::uint64_t> s;
  const int np = 3, nc = 3, per = 3000;
  std::atomic<std::uint64_t> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(s.pop());
    });
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        std::uint64_t v = static_cast<std::uint64_t>(p) * per + i + 1;
        s.push(v);
        in.fetch_add(v);
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
}
