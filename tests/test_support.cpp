// Tests for the support layer: item codec, deadlines, RNG, padding,
// diagnostics.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/cacheline.hpp"
#include "support/codec.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"
#include "support/time.hpp"

using namespace ssq;

// ---------------------------------------------------------------- codec

TEST(Codec, IntIsInlineEncoded) {
  static_assert(!item_codec<int>::boxed);
  item_token t = item_codec<int>::encode(42);
  EXPECT_NE(t, empty_token);
  EXPECT_EQ(t & 1u, 1u) << "inline tokens are odd (never aligned pointers)";
  EXPECT_EQ(item_codec<int>::decode_consume(t), 42);
}

TEST(Codec, NegativeValuesRoundTrip) {
  item_token t = item_codec<int>::encode(-123456);
  EXPECT_EQ(item_codec<int>::decode_consume(t), -123456);
}

TEST(Codec, ZeroIsNotEmptyToken) {
  // The whole point of the tag bit: value 0 must be distinguishable from
  // "no item".
  item_token t = item_codec<int>::encode(0);
  EXPECT_NE(t, empty_token);
  EXPECT_EQ(item_codec<int>::decode_consume(t), 0);
}

TEST(Codec, SmallTypesInline) {
  static_assert(!item_codec<char>::boxed);
  static_assert(!item_codec<short>::boxed);
  static_assert(!item_codec<float>::boxed);
  static_assert(!item_codec<std::uint32_t>::boxed);
  EXPECT_EQ(item_codec<char>::decode_consume(item_codec<char>::encode('x')),
            'x');
  EXPECT_FLOAT_EQ(
      item_codec<float>::decode_consume(item_codec<float>::encode(3.5f)),
      3.5f);
}

TEST(Codec, SevenByteStructInline) {
  struct seven {
    char b[7];
  };
  static_assert(!item_codec<seven>::boxed);
  seven in{};
  std::memcpy(in.b, "abcdef", 7);
  seven out = item_codec<seven>::decode_consume(item_codec<seven>::encode(in));
  EXPECT_EQ(0, std::memcmp(in.b, out.b, 7));
}

TEST(Codec, EightByteTypesAreBoxed) {
  // A full 64-bit value cannot share a word with the tag bit.
  static_assert(item_codec<std::uint64_t>::boxed);
  static_assert(item_codec<double>::boxed);
  item_token t = item_codec<std::uint64_t>::encode(0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(t & 1u, 0u) << "boxed tokens are aligned pointers";
  EXPECT_EQ(item_codec<std::uint64_t>::decode_consume(t),
            0xDEADBEEFCAFEBABEULL);
}

TEST(Codec, StringIsBoxedAndRoundTrips) {
  static_assert(item_codec<std::string>::boxed);
  std::string s(1000, 'q');
  item_token t = item_codec<std::string>::encode(s);
  EXPECT_EQ(item_codec<std::string>::decode_consume(t), s);
}

TEST(Codec, MoveOnlyTypeThroughBox) {
  using up = std::unique_ptr<int>;
  item_token t = item_codec<up>::encode(std::make_unique<int>(7));
  up p = item_codec<up>::decode_consume(t);
  ASSERT_TRUE(p);
  EXPECT_EQ(*p, 7);
}

TEST(Codec, DisposeFreesBox) {
  diag::reset_all();
  item_token t = item_codec<std::string>::encode("to-be-dropped");
  EXPECT_EQ(diag::read(diag::id::box_alloc), 1u);
  item_codec<std::string>::dispose(t);
  EXPECT_EQ(diag::read(diag::id::box_free), 1u);
}

TEST(Codec, DisposeOfEmptyIsNoop) {
  item_codec<std::string>::dispose(empty_token); // must not crash
}

TEST(Codec, DistinctValuesDistinctTokens) {
  item_token a = item_codec<int>::encode(1);
  item_token b = item_codec<int>::encode(2);
  EXPECT_NE(a, b);
  (void)item_codec<int>::decode_consume(a);
  (void)item_codec<int>::decode_consume(b);
}

// ---------------------------------------------------------------- deadline

TEST(Deadline, UnboundedNeverExpires) {
  auto dl = deadline::unbounded();
  EXPECT_TRUE(dl.is_unbounded());
  EXPECT_FALSE(dl.expired_now());
  EXPECT_EQ(dl.remaining(), nanoseconds::max());
}

TEST(Deadline, ExpiredIsImmediatelyExpired) {
  auto dl = deadline::expired();
  EXPECT_FALSE(dl.is_unbounded());
  EXPECT_TRUE(dl.expired_now());
  EXPECT_EQ(dl.remaining(), nanoseconds::zero());
}

TEST(Deadline, ZeroAndNegativeDurationsAreExpired) {
  EXPECT_TRUE(deadline::in(std::chrono::seconds(0)).expired_now());
  EXPECT_TRUE(deadline::in(std::chrono::seconds(-5)).expired_now());
  EXPECT_EQ(deadline::in(std::chrono::seconds(-5)), deadline::expired());
}

TEST(Deadline, FutureDeadlineCountsDown) {
  auto dl = deadline::in(std::chrono::milliseconds(50));
  EXPECT_FALSE(dl.expired_now());
  auto rem = dl.remaining();
  EXPECT_GT(rem, nanoseconds::zero());
  EXPECT_LE(rem, std::chrono::milliseconds(51));
}

TEST(Deadline, EventuallyExpires) {
  auto dl = deadline::in(std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(dl.expired_now());
}

TEST(Deadline, HugeDurationSaturatesToUnbounded) {
  EXPECT_TRUE(deadline::in(std::chrono::hours(1000000000)).is_unbounded());
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  xoshiro256 r(99);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  xoshiro256 r(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.chance(1, 4)) ++hits;
  EXPECT_NEAR(hits, n / 4, n / 40); // within 10% relative
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  auto a = splitmix64(s);
  auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

// ---------------------------------------------------------------- padding

TEST(Padding, PaddedOccupiesFullLines) {
  EXPECT_EQ(sizeof(padded<char>), cacheline_size);
  EXPECT_EQ(sizeof(padded_atomic<void *>), cacheline_size);
  EXPECT_EQ(alignof(padded<char>), cacheline_size);
  struct big {
    char b[70];
  };
  EXPECT_EQ(sizeof(padded<big>) % cacheline_size, 0u);
  EXPECT_GE(sizeof(padded<big>), 2 * cacheline_size);
}

TEST(Padding, AdjacentPaddedAtomicsOnDistinctLines) {
  struct pair {
    padded_atomic<int> a;
    padded_atomic<int> b;
  } p;
  auto delta = reinterpret_cast<char *>(&p.b) - reinterpret_cast<char *>(&p.a);
  EXPECT_GE(static_cast<std::size_t>(delta), cacheline_size);
}

// ---------------------------------------------------------------- diag

TEST(Diag, BumpAndReadAndReset) {
  diag::reset_all();
  EXPECT_EQ(diag::read(diag::id::park), 0u);
  diag::bump(diag::id::park);
  diag::bump(diag::id::park, 4);
  EXPECT_EQ(diag::read(diag::id::park), 5u);
  diag::reset_all();
  EXPECT_EQ(diag::read(diag::id::park), 0u);
}

TEST(Diag, SnapshotDeltas) {
  diag::reset_all();
  auto before = diag::snapshot::take();
  diag::bump(diag::id::unpark, 3);
  auto after = diag::snapshot::take();
  auto d = after - before;
  EXPECT_EQ(d[diag::id::unpark], 3u);
  EXPECT_EQ(d[diag::id::park], 0u);
}

TEST(Diag, CountersAreThreadSafe) {
  diag::reset_all();
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i)
    ts.emplace_back([] {
      for (int j = 0; j < 10000; ++j) diag::bump(diag::id::spin_retry);
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(diag::read(diag::id::spin_retry), 40000u);
}
