// Tests for the synchronization substrate: futex, park_slot, spin policy,
// backoff, semaphore, monitor, fair lock, interruption.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"
#include "sync/backoff.hpp"
#include "sync/fair_lock.hpp"
#include "sync/futex.hpp"
#include "sync/interrupt.hpp"
#include "sync/monitor.hpp"
#include "sync/park_slot.hpp"
#include "sync/semaphore.hpp"
#include "sync/spin_policy.hpp"

using namespace ssq;
using namespace ssq::sync;

// ---------------------------------------------------------------- futex

TEST(Futex, WaitReturnsWhenValueAlreadyChanged) {
  std::atomic<std::uint32_t> w{5};
  // expected=4 != current: must not block.
  EXPECT_EQ(futex_wait(&w, 4, deadline::unbounded()), futex_result::woken);
}

TEST(Futex, TimedWaitExpires) {
  std::atomic<std::uint32_t> w{0};
  auto t0 = steady_clock::now();
  auto r = futex_wait(&w, 0, deadline::in(std::chrono::milliseconds(30)));
  auto elapsed = steady_clock::now() - t0;
  EXPECT_EQ(r, futex_result::timeout);
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(Futex, WakeReleasesWaiter) {
  std::atomic<std::uint32_t> w{0};
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    while (w.load() == 0) {
      futex_wait(&w, 0, deadline::unbounded());
    }
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  w.store(1);
  futex_wake_all(&w);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(Futex, ExpiredDeadlineReturnsImmediately) {
  std::atomic<std::uint32_t> w{0};
  EXPECT_EQ(futex_wait(&w, 0, deadline::expired()), futex_result::timeout);
}

// ---------------------------------------------------------------- park_slot

TEST(ParkSlot, SignalBeforeWaitDoesNotHang) {
  park_slot s;
  s.prepare();
  s.signal();
  EXPECT_EQ(s.wait(deadline::in(std::chrono::seconds(5))),
            park_slot::wait_result::woken);
}

TEST(ParkSlot, TimedWaitExpires) {
  park_slot s;
  s.prepare();
  auto r = s.wait(deadline::in(std::chrono::milliseconds(20)));
  EXPECT_EQ(r, park_slot::wait_result::timeout);
}

TEST(ParkSlot, CrossThreadWake) {
  park_slot s;
  std::atomic<bool> cond{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cond.store(true);
    s.signal();
  });
  // Guarded-wait idiom.
  for (;;) {
    if (cond.load()) break;
    s.prepare();
    if (cond.load()) break;
    s.wait(deadline::unbounded());
  }
  waker.join();
  EXPECT_TRUE(s.was_signalled());
}

TEST(ParkSlot, InterruptWakesParkedThread) {
  park_slot s;
  interrupt_token tok;
  std::atomic<bool> interrupted{false};
  std::thread t([&] {
    s.prepare();
    auto r = s.wait(deadline::unbounded(), &tok);
    interrupted.store(r == park_slot::wait_result::interrupted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  tok.interrupt();
  t.join();
  EXPECT_TRUE(interrupted.load());
}

TEST(ParkSlot, SpinThenParkCompletesViaPredicate) {
  park_slot s;
  std::atomic<bool> cond{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    cond.store(true);
    s.signal();
  });
  auto r = spin_then_park(
      s, [&] { return cond.load(); }, [] { return true; },
      spin_policy::adaptive(), deadline::unbounded());
  setter.join();
  EXPECT_EQ(r, park_slot::wait_result::woken);
}

TEST(ParkSlot, SpinThenParkTimesOut) {
  park_slot s;
  auto r = spin_then_park(
      s, [] { return false; }, [] { return true; }, spin_policy::adaptive(),
      deadline::in(std::chrono::milliseconds(20)));
  EXPECT_EQ(r, park_slot::wait_result::timeout);
}

TEST(ParkSlot, SpinOnlyPolicyNeverParks) {
  diag::reset_all();
  park_slot s;
  std::atomic<bool> cond{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cond.store(true);
  });
  auto r = spin_then_park(
      s, [&] { return cond.load(); }, [] { return true; },
      spin_policy::spin_only(), deadline::unbounded());
  setter.join();
  EXPECT_EQ(r, park_slot::wait_result::woken);
  EXPECT_EQ(diag::read(diag::id::park), 0u);
  EXPECT_GT(diag::read(diag::id::spin_retry), 0u);
}

TEST(ParkSlot, ParkOnlyPolicyParksPromptly) {
  diag::reset_all();
  park_slot s;
  std::atomic<bool> cond{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    cond.store(true);
    s.signal();
  });
  spin_then_park(
      s, [&] { return cond.load(); }, [] { return true; },
      spin_policy::park_only(), deadline::unbounded());
  setter.join();
  EXPECT_GE(diag::read(diag::id::park), 1u);
}

// ---------------------------------------------------------------- policy

TEST(SpinPolicy, AdaptiveMatchesPaperOnUniprocessor) {
  auto pol = spin_policy::adaptive();
  if (std::thread::hardware_concurrency() <= 1) {
    EXPECT_EQ(pol.front_spins, 0) << "busy-wait is useless on a uniprocessor";
  } else {
    EXPECT_GT(pol.front_spins, 0);
    EXPECT_GT(pol.front_spins, pol.back_spins)
        << "front-of-line waiters spin longer";
  }
}

TEST(SpinPolicy, SpinOnlyIsUnbounded) {
  EXPECT_TRUE(spin_policy::spin_only().unbounded_spin());
  EXPECT_FALSE(spin_policy::park_only().unbounded_spin());
}

TEST(Backoff, LimitGrowsAndResets) {
  backoff b(42, 4, 64);
  auto l0 = b.current_limit();
  b.pause();
  b.pause();
  EXPECT_GT(b.current_limit(), l0);
  for (int i = 0; i < 20; ++i) b.pause();
  EXPECT_LE(b.current_limit(), 64u) << "truncated at max";
  b.reset();
  EXPECT_EQ(b.current_limit(), 4u);
}

// ---------------------------------------------------------------- semaphore

TEST(Semaphore, InitialPermitsAreAcquirable) {
  counting_semaphore s(2);
  EXPECT_TRUE(s.try_acquire());
  EXPECT_TRUE(s.try_acquire());
  EXPECT_FALSE(s.try_acquire());
}

TEST(Semaphore, ReleaseUnblocksAcquire) {
  counting_semaphore s(0);
  std::atomic<bool> got{false};
  std::thread t([&] {
    s.acquire();
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  s.release();
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(Semaphore, TimedAcquireExpires) {
  counting_semaphore s(0);
  EXPECT_FALSE(s.try_acquire_for(std::chrono::milliseconds(20)));
}

TEST(Semaphore, TimedAcquireSucceedsWhenReleased) {
  counting_semaphore s(0);
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    s.release();
  });
  EXPECT_TRUE(s.try_acquire_for(std::chrono::seconds(5)));
  t.join();
}

TEST(Semaphore, CountingStress) {
  counting_semaphore s(0);
  const int n = 4, per = 5000;
  std::atomic<int> acquired{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < n; ++i)
    ts.emplace_back([&] {
      for (int j = 0; j < per; ++j) s.release();
    });
  for (int i = 0; i < n; ++i)
    ts.emplace_back([&] {
      for (int j = 0; j < per; ++j) {
        s.acquire();
        acquired.fetch_add(1);
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(acquired.load(), n * per);
  EXPECT_EQ(s.value(), 0u);
}

// ---------------------------------------------------------------- monitor

TEST(Monitor, WaitNotifyAll) {
  monitor m;
  bool flag = false;
  std::thread t([&] {
    m.synchronized([&](monitor::scope &s) {
      while (!flag) s.wait();
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  m.synchronized([&](monitor::scope &s) {
    flag = true;
    s.notify_all();
  });
  t.join();
}

TEST(Monitor, TimedWaitExpires) {
  monitor m;
  bool ok = m.synchronized([&](monitor::scope &s) {
    return s.wait_until(deadline::in(std::chrono::milliseconds(20)));
  });
  EXPECT_FALSE(ok);
}

TEST(Monitor, SynchronizedReturnsValue) {
  monitor m;
  int v = m.synchronized([&](monitor::scope &) { return 41 + 1; });
  EXPECT_EQ(v, 42);
}

// ---------------------------------------------------------------- fair lock

TEST(FairLock, BasicMutualExclusion) {
  fair_lock lk;
  int counter = 0;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<fair_lock> g(lk);
        ++counter; // data race iff mutual exclusion broken (run under TSan)
      }
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(FairLock, TryLockDoesNotBarge) {
  fair_lock lk;
  lk.lock();
  EXPECT_FALSE(lk.try_lock());
  lk.unlock();
  EXPECT_TRUE(lk.try_lock());
  lk.unlock();
}

TEST(FairLock, QueueLengthObserver) {
  fair_lock lk;
  EXPECT_EQ(lk.queue_length(), 0u);
  EXPECT_FALSE(lk.is_locked());
  lk.lock();
  EXPECT_EQ(lk.queue_length(), 1u);
  EXPECT_TRUE(lk.is_locked());
  lk.unlock();
  EXPECT_FALSE(lk.is_locked());
}

TEST(FairLock, ServiceOrderMatchesArrivalOrder) {
  // Deterministic FIFO check: contenders take tickets one at a time (the
  // next thread is released only after the previous holds a ticket, which
  // we detect via queue_length), then record service order.
  fair_lock lk;
  const int n = 8;
  std::vector<int> service;
  std::mutex sm;

  lk.lock();
  std::vector<std::thread> ts;
  for (int i = 0; i < n; ++i) {
    std::uint32_t before = lk.queue_length();
    ts.emplace_back([&, i] {
      lk.lock();
      {
        std::lock_guard<std::mutex> g(sm);
        service.push_back(i);
      }
      lk.unlock();
    });
    while (lk.queue_length() == before) std::this_thread::yield();
  }
  lk.unlock();
  for (auto &t : ts) t.join();

  ASSERT_EQ(service.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(service[static_cast<std::size_t>(i)], i)
        << "fair lock served out of arrival order";
}

// ---------------------------------------------------------------- interrupt

TEST(Interrupt, FlagAndGeneration) {
  interrupt_token tok;
  EXPECT_FALSE(tok.interrupted());
  EXPECT_EQ(tok.generation(), 0u);
  tok.interrupt();
  EXPECT_TRUE(tok.interrupted());
  EXPECT_EQ(tok.generation(), 1u);
  EXPECT_TRUE(tok.consume());
  EXPECT_FALSE(tok.interrupted());
  EXPECT_FALSE(tok.consume());
}

TEST(Interrupt, DeliveryLatencyIsBounded) {
  park_slot s;
  interrupt_token tok;
  std::atomic<double> latency_ms{-1};
  std::thread t([&] {
    s.prepare();
    auto t0 = steady_clock::now();
    s.wait(deadline::unbounded(), &tok);
    latency_ms.store(
        std::chrono::duration<double, std::milli>(steady_clock::now() - t0)
            .count());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto t0 = steady_clock::now();
  tok.interrupt();
  t.join();
  auto total =
      std::chrono::duration<double, std::milli>(steady_clock::now() - t0)
          .count();
  EXPECT_LT(total, 500.0) << "interrupt must be observed within quanta";
}
