// Tests for the typed facade (synchronous_queue) and the TransferQueue
// extension (linked_transfer_queue), including the paper's semantic
// properties: synchrony, fairness (§2.2 ordering example), timeout.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "support/diagnostics.hpp"

using namespace ssq;

template <typename Q>
class SyncQueueBothModes : public ::testing::Test {};

using BothModes = ::testing::Types<synchronous_queue<int, true>,
                                   synchronous_queue<int, false>>;
TYPED_TEST_SUITE(SyncQueueBothModes, BothModes);

TYPED_TEST(SyncQueueBothModes, PairHandoff) {
  TypeParam q;
  std::thread p([&] { q.put(5); });
  EXPECT_EQ(q.take(), 5);
  p.join();
}

TYPED_TEST(SyncQueueBothModes, PutBlocksUntilTake) {
  TypeParam q;
  std::atomic<bool> done{false};
  std::thread p([&] {
    q.put(1);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load()) << "synchronous put must wait for its consumer";
  EXPECT_EQ(q.take(), 1);
  p.join();
  EXPECT_TRUE(done.load());
}

TYPED_TEST(SyncQueueBothModes, TakeBlocksUntilPut) {
  TypeParam q;
  std::atomic<bool> done{false};
  std::thread c([&] {
    EXPECT_EQ(q.take(), 2);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load());
  q.put(2);
  c.join();
}

TYPED_TEST(SyncQueueBothModes, OfferRequiresWaitingConsumer) {
  TypeParam q;
  EXPECT_FALSE(q.offer(1)) << "no consumer -> offer fails";
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(*q.try_take(std::chrono::seconds(10))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(q.offer(9)) << "waiting consumer -> offer succeeds";
  c.join();
  EXPECT_EQ(got.load(), 9);
}

TYPED_TEST(SyncQueueBothModes, PollRequiresWaitingProducer) {
  TypeParam q;
  EXPECT_FALSE(q.poll().has_value());
  std::thread p([&] { q.put(4); });
  std::optional<int> v;
  while (!v) {
    v = q.poll();
    if (!v) std::this_thread::yield();
  }
  p.join();
  EXPECT_EQ(*v, 4);
}

TYPED_TEST(SyncQueueBothModes, TimedOpsExpire) {
  TypeParam q;
  EXPECT_FALSE(q.try_put(1, std::chrono::milliseconds(20)));
  EXPECT_FALSE(q.try_take(std::chrono::milliseconds(20)).has_value());
}

TYPED_TEST(SyncQueueBothModes, TimedOpsSucceedWithCounterpart) {
  TypeParam q;
  std::thread p([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(q.try_put(8, std::chrono::seconds(10)));
  });
  auto v = q.try_take(std::chrono::seconds(10));
  p.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 8);
}

TYPED_TEST(SyncQueueBothModes, InterruptAbortsWait) {
  TypeParam q;
  sync::interrupt_token tok;
  std::atomic<bool> aborted{false};
  std::thread c([&] {
    aborted.store(!q.try_take(deadline::unbounded(), &tok).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tok.interrupt();
  c.join();
  EXPECT_TRUE(aborted.load());
}

TYPED_TEST(SyncQueueBothModes, NToNConservation) {
  TypeParam q;
  const int np = 3, nc = 3, per = 3000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        q.put(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
  EXPECT_TRUE(q.is_empty());
}

TYPED_TEST(SyncQueueBothModes, TryPutRefRestoresValue) {
  TypeParam q;
  int v = 31337;
  EXPECT_FALSE(q.try_put_ref(v, deadline::expired()));
  EXPECT_EQ(v, 31337);
}

// Boxed payloads (strings) through both modes.
template <typename Q>
class SyncQueueBoxed : public ::testing::Test {};
using BoxedModes = ::testing::Types<synchronous_queue<std::string, true>,
                                    synchronous_queue<std::string, false>>;
TYPED_TEST_SUITE(SyncQueueBoxed, BoxedModes);

TYPED_TEST(SyncQueueBoxed, RoundTrip) {
  TypeParam q;
  std::thread p([&] { q.put(std::string(2000, 'z')); });
  EXPECT_EQ(q.take(), std::string(2000, 'z'));
  p.join();
}

TYPED_TEST(SyncQueueBoxed, FailedTimedPutDoesNotLeakBox) {
  diag::reset_all();
  TypeParam q;
  EXPECT_FALSE(q.try_put(std::string("gone"), std::chrono::milliseconds(10)));
  EXPECT_EQ(diag::read(diag::id::box_alloc), diag::read(diag::id::box_free));
}

TYPED_TEST(SyncQueueBoxed, MoveOnlyPayloadCompiles) {
  // unique_ptr through the synchronous queue exercises the box-move path.
  synchronous_queue<std::unique_ptr<int>, TypeParam::is_fair> q;
  std::thread p([&] { q.put(std::make_unique<int>(77)); });
  auto v = q.take();
  p.join();
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 77);
}

// ------------------------------------------------------- fairness (§2.2)

TEST(Fairness, FairModeServesOldestRequestFirst) {
  // The dual-data-structure ordering example from §2.2: A's dequeue request
  // linearizes before B's; A must receive the first enqueued item.
  fair_synchronous_queue<int> q;
  std::atomic<int> a_result{-1}, b_result{-1};
  std::thread a([&] { a_result.store(q.take()); });
  while (q.is_empty()) std::this_thread::yield(); // A's reservation linked
  std::thread b([&] { b_result.store(q.take()); });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  q.put(1); // C enqueues a 1
  q.put(2); // D enqueues a 2
  a.join();
  b.join();
  EXPECT_EQ(a_result.load(), 1) << "A requested first and must get the 1";
  EXPECT_EQ(b_result.load(), 2);
}

TEST(Fairness, FairModeServesWaitingProducersFifo) {
  fair_synchronous_queue<int> q;
  std::thread p1([&] { q.put(1); });
  while (q.is_empty()) std::this_thread::yield();
  std::thread p2([&] { q.put(2); });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  EXPECT_EQ(q.take(), 1);
  EXPECT_EQ(q.take(), 2);
  p1.join();
  p2.join();
}

TEST(Fairness, UnfairModeServesNewestRequestFirst) {
  unfair_synchronous_queue<int> q;
  std::atomic<int> a_result{-1}, b_result{-1};
  std::thread a([&] { a_result.store(q.take()); });
  while (q.is_empty()) std::this_thread::yield();
  std::thread b([&] { b_result.store(q.take()); });
  while (q.unsafe_length() < 2) std::this_thread::yield();
  q.put(1);
  b.join();
  EXPECT_EQ(b_result.load(), 1) << "stack mode serves the newest waiter";
  q.put(2);
  a.join();
  EXPECT_EQ(a_result.load(), 2);
}

// ------------------------------------------------------- LTQ extension

TEST(LinkedTransferQueue, PutNeverBlocks) {
  linked_transfer_queue<int> q;
  for (int i = 0; i < 1000; ++i) q.put(i);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(q.take(), i) << "FIFO buffering";
}

TEST(LinkedTransferQueue, TransferBlocksLikeSyncQueue) {
  linked_transfer_queue<int> q;
  std::atomic<bool> done{false};
  std::thread p([&] {
    q.transfer(5);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load()) << "transfer waits for a consumer";
  EXPECT_EQ(q.take(), 5);
  p.join();
}

TEST(LinkedTransferQueue, TryTransferRequiresConsumer) {
  linked_transfer_queue<int> q;
  EXPECT_FALSE(q.try_transfer(1));
  std::atomic<int> got{-1};
  std::thread c([&] { got.store(*q.poll(deadline::in(std::chrono::seconds(10)))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(q.try_transfer(6));
  c.join();
  EXPECT_EQ(got.load(), 6);
}

TEST(LinkedTransferQueue, MixedSyncAsyncOrder) {
  // Async and sync producers share one FIFO list: order of linearization is
  // order of delivery.
  linked_transfer_queue<int> q;
  q.put(1);
  q.put(2);
  std::thread p([&] { q.transfer(3); });
  while (q.unsafe_length() < 3) std::this_thread::yield();
  EXPECT_EQ(q.take(), 1);
  EXPECT_EQ(q.take(), 2);
  EXPECT_EQ(q.take(), 3);
  p.join();
}

TEST(LinkedTransferQueue, HasWaitingConsumer) {
  linked_transfer_queue<int> q;
  EXPECT_FALSE(q.has_waiting_consumer());
  std::thread c([&] { (void)q.take(); });
  while (!q.has_waiting_consumer()) std::this_thread::yield();
  q.put(1);
  c.join();
  EXPECT_FALSE(q.has_waiting_consumer());
}

TEST(LinkedTransferQueue, PollTimedOnBufferedData) {
  linked_transfer_queue<int> q;
  q.put(9);
  auto v = q.poll(deadline::in(std::chrono::milliseconds(50)));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_FALSE(q.poll(deadline::in(std::chrono::milliseconds(10))).has_value());
}

TEST(LinkedTransferQueue, DestructorReleasesBufferedBoxes) {
  diag::reset_all();
  {
    linked_transfer_queue<std::string> q;
    for (int i = 0; i < 25; ++i) q.put(std::string(128, 'b'));
  }
  EXPECT_EQ(diag::read(diag::id::box_alloc), diag::read(diag::id::box_free));
}

TEST(LinkedTransferQueue, ProducerConsumerStress) {
  linked_transfer_queue<int> q;
  const int np = 2, nc = 2, per = 4000;
  std::atomic<long> in{0}, out{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < np; ++p)
    ts.emplace_back([&, p] {
      for (int i = 0; i < per; ++i) {
        int v = p * per + i + 1;
        if (i % 2)
          q.put(v);
        else
          q.transfer(v);
        in.fetch_add(v);
      }
    });
  for (int c = 0; c < nc; ++c)
    ts.emplace_back([&] {
      for (int i = 0; i < per; ++i) out.fetch_add(q.take());
    });
  for (auto &t : ts) t.join();
  EXPECT_EQ(in.load(), out.load());
}
