// Timed-operation edge cases (table-driven) and park_slot episode hygiene.
//
// The timed paths are where the cancellation protocol earns its keep:
// zero/negative patience must degrade to wait_kind::now semantics, a
// deadline can expire in the spin phase (never parking) or in the park
// phase (kernel timeout), and an interrupt can land exactly while a timeout
// is already cancelling. Each edge gets a deterministic test here; the
// randomized linearize workload (test_linearize_check.cpp) covers the
// interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/synchronous_queue.hpp"
#include "support/diagnostics.hpp"
#include "sync/interrupt.hpp"
#include "sync/park_slot.hpp"
#include "sync/spin_policy.hpp"

using namespace ssq;
using namespace ssq::sync;
using namespace std::chrono;

namespace {

// A deadline the op must treat as "do not wait": the facades route the
// expired() sentinel to wait_kind::now, while at(past) runs the timed path
// with an already-expired clock -- both must fail fast on an empty queue.
struct no_wait_case {
  const char *name;
  deadline (*make)();
};

const no_wait_case kNoWaitCases[] = {
    {"expired-sentinel", [] { return deadline::expired(); }},
    {"zero-patience", [] { return deadline::in(nanoseconds(0)); }},
    {"negative-patience", [] { return deadline::in(milliseconds(-5)); }},
    {"past-absolute",
     [] { return deadline::at(steady_clock::now() - seconds(1)); }},
};

template <bool Fair>
void run_no_wait_table() {
  auto q = std::make_shared<synchronous_queue<std::uint64_t, Fair>>();
  for (const auto &c : kNoWaitCases) {
    SCOPED_TRACE(c.name);
    auto t0 = steady_clock::now();
    EXPECT_FALSE(q->offer(1, c.make())) << c.name;
    EXPECT_FALSE(q->poll(c.make()).has_value()) << c.name;
    // "Fail fast": nothing resembling a 20ms park, let alone a hang.
    EXPECT_LT(steady_clock::now() - t0, milliseconds(250)) << c.name;
    // The op must leave no residue: a subsequent rendezvous still works.
    std::thread taker([&] { EXPECT_EQ(q->take(), 7u); });
    q->put(7);
    taker.join();
  }
}

} // namespace

TEST(TimedPaths, NoWaitTableFair) { run_no_wait_table<true>(); }
TEST(TimedPaths, NoWaitTableUnfair) { run_no_wait_table<false>(); }

TEST(TimedPaths, ZeroAndNegativePatienceAreNowEquivalent) {
  // deadline::in(d <= 0) collapses to the expired() sentinel, so the facade
  // must choose the wait_kind::now path -- no node is ever parked.
  EXPECT_TRUE(deadline::in(nanoseconds(0)).when() ==
              deadline::expired().when());
  EXPECT_TRUE(deadline::in(milliseconds(-5)).when() ==
              deadline::expired().when());
  diag::snapshot before = diag::snapshot::take();
  auto q = std::make_shared<synchronous_queue<std::uint64_t, true>>();
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(q->offer(1, deadline::in(nanoseconds(0))));
    EXPECT_FALSE(q->poll(deadline::in(milliseconds(-1))).has_value());
  }
  diag::snapshot d = diag::snapshot::take() - before;
  EXPECT_EQ(d[diag::id::park], 0u) << "a zero-patience op parked";
}

TEST(TimedPaths, DeadlineExpiresInSpinPhase) {
  // spin_only never parks: the deadline must be noticed inside the spin
  // loop itself.
  auto q = std::make_shared<synchronous_queue<std::uint64_t, true>>(
      spin_policy::spin_only());
  diag::snapshot before = diag::snapshot::take();
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q->offer(1, deadline::in(milliseconds(10))));
  auto elapsed = steady_clock::now() - t0;
  diag::snapshot d = diag::snapshot::take() - before;
  EXPECT_GE(elapsed, milliseconds(8));
  EXPECT_LT(elapsed, milliseconds(500));
  EXPECT_EQ(d[diag::id::park], 0u) << "spin_only policy parked";
  EXPECT_GT(d[diag::id::spin_retry], 0u);
}

TEST(TimedPaths, DeadlineExpiresInParkPhase) {
  // park_only spins zero times: the deadline must be enforced by the kernel
  // wait, and the cancel CAS must run on the way out.
  auto q = std::make_shared<synchronous_queue<std::uint64_t, true>>(
      spin_policy::park_only());
  diag::snapshot before = diag::snapshot::take();
  auto t0 = steady_clock::now();
  EXPECT_FALSE(q->offer(1, deadline::in(milliseconds(20))));
  auto elapsed = steady_clock::now() - t0;
  diag::snapshot d = diag::snapshot::take() - before;
  EXPECT_GE(elapsed, milliseconds(15));
  EXPECT_LT(elapsed, milliseconds(800));
  EXPECT_GT(d[diag::id::park], 0u) << "park_only policy never parked";
  // The cancelled node must not satisfy a later consumer.
  EXPECT_FALSE(q->poll(deadline::expired()).has_value());
}

TEST(TimedPaths, InterruptDuringCancellationWindow) {
  // Race an interrupt against a deadline that expires at ~the same moment,
  // across both roles and many phase offsets. Whatever wins, the op fails
  // exactly once, nothing transfers, and the structure stays usable.
  auto q = std::make_shared<synchronous_queue<std::uint64_t, true>>(
      spin_policy::park_only());
  for (int i = 0; i < 24; ++i) {
    interrupt_token tok;
    const auto patience = microseconds(500 + 400 * (i % 5));
    std::atomic<int> failures{0};
    std::thread op([&] {
      bool ok;
      if (i % 2 == 0)
        ok = q->offer(1000 + static_cast<std::uint64_t>(i),
                      deadline::in(patience), &tok);
      else
        ok = q->poll(deadline::in(patience), &tok).has_value();
      if (!ok) failures.fetch_add(1);
    });
    std::this_thread::sleep_for(microseconds(300 + 150 * (i % 7)));
    tok.interrupt();
    op.join();
    EXPECT_EQ(failures.load(), 1) << "iteration " << i;
    // No residue: the queue is empty and still functions.
    EXPECT_FALSE(q->poll(deadline::expired()).has_value())
        << "cancelled producer's value leaked at iteration " << i;
  }
  std::thread taker([&] { EXPECT_EQ(q->take(), 42u); });
  q->put(42);
  taker.join();
}

// --------------------------------------------------------- park_slot unit

TEST(ParkSlotEpisode, DisarmRetractsPrepare) {
  park_slot s;
  s.prepare();
  EXPECT_TRUE(s.is_armed());
  EXPECT_FALSE(s.disarm()); // no signal arrived
  EXPECT_FALSE(s.is_armed());
  EXPECT_FALSE(s.was_signalled());
}

TEST(ParkSlotEpisode, DisarmObservesSignalRace) {
  park_slot s;
  s.prepare();
  s.signal();
  EXPECT_TRUE(s.disarm()); // signal won; caller must treat it as woken
  EXPECT_TRUE(s.was_signalled());
}

TEST(ParkSlotEpisode, PreparePreservesDeliveredSignal) {
  // Minimized repro of the java5-fair livelock the schedule-fuzz harness
  // caught: signal() lands between the guarded-wait loop's condition check
  // and prepare(). prepare() must NOT consume-and-erase that wake (the
  // fulfiller signals exactly once per episode) -- the slot keeps permit
  // semantics: wait() returns immediately and was_signalled() stays true,
  // which java5_sq::settle() spins on.
  park_slot s;
  s.signal();  // wake delivered before the waiter armed
  s.prepare(); // guarded-wait loop arms afterwards
  EXPECT_TRUE(s.was_signalled()) << "prepare() erased a delivered wake";
  auto r = s.wait(deadline::in(std::chrono::seconds(5)));
  EXPECT_EQ(r, park_slot::wait_result::woken);
  EXPECT_TRUE(s.disarm()); // episode ends signalled, not armed/idle
  EXPECT_TRUE(s.was_signalled());
}

TEST(ParkSlotEpisode, ResetBumpsGenerationAndClearsSignal) {
  park_slot s;
  const std::uint32_t g0 = s.episode();
  s.signal();
  EXPECT_TRUE(s.was_signalled());
  s.reset();
  EXPECT_FALSE(s.was_signalled());
  EXPECT_EQ(s.episode(), g0 + 1);
  // Signalling the new episode works normally.
  s.signal();
  EXPECT_TRUE(s.was_signalled());
}

TEST(ParkSlotEpisode, SignalIsIdempotent) {
  park_slot s;
  s.signal();
  s.signal();
  EXPECT_TRUE(s.was_signalled());
  EXPECT_FALSE(s.is_armed());
}

TEST(ParkSlotEpisode, SignalWakesParkedWaiter) {
  park_slot s;
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    auto r = spin_then_park(
        s, [&] { return done.load(); }, [] { return true; },
        spin_policy::park_only(), deadline::unbounded());
    EXPECT_EQ(r, park_slot::wait_result::woken);
  });
  std::this_thread::sleep_for(milliseconds(20));
  done.store(true);
  s.signal();
  waiter.join();
  EXPECT_FALSE(s.is_armed());
}

TEST(ParkSlotEpisode, SpinThenParkNeverExitsArmed) {
  // Satellite regression: every exit path of spin_then_park must leave the
  // slot disarmed -- a timeout that leaves `armed` behind poisons the next
  // episode on a recycled node.
  park_slot s;
  std::atomic<bool> done{false};

  // Timeout exit.
  auto r = spin_then_park(
      s, [&] { return done.load(); }, [] { return true; },
      spin_policy::park_only(), deadline::in(milliseconds(10)));
  EXPECT_EQ(r, park_slot::wait_result::timeout);
  EXPECT_FALSE(s.is_armed());

  // Interrupted exit.
  interrupt_token tok;
  std::thread firer([&] {
    std::this_thread::sleep_for(milliseconds(10));
    tok.interrupt();
  });
  r = spin_then_park(
      s, [&] { return done.load(); }, [] { return true; },
      spin_policy::park_only(), deadline::in(seconds(5)), &tok);
  firer.join();
  EXPECT_EQ(r, park_slot::wait_result::interrupted);
  EXPECT_FALSE(s.is_armed());

  // Done-flips-after-prepare exit (the original hygiene bug): the
  // fulfiller makes `done` true and signals concurrently with arming;
  // whichever way the race lands (observed in spin, in the post-prepare
  // re-check, or via the futex wake), the slot must end disarmed.
  for (int i = 0; i < 50; ++i) {
    park_slot s2;
    std::atomic<bool> d2{false};
    std::thread fulfiller([&] {
      d2.store(true);
      s2.signal();
    });
    auto r2 = spin_then_park(
        s2, [&] { return d2.load(); }, [] { return true; },
        spin_policy::park_only(), deadline::in(seconds(5)));
    fulfiller.join();
    EXPECT_EQ(r2, park_slot::wait_result::woken);
    EXPECT_FALSE(s2.is_armed()) << "exited armed at iteration " << i;
  }
}

TEST(ParkSlotEpisode, StaleSignalCannotPoisonNextEpisode) {
  // A signal from episode N must not leave `signalled` visible in episode
  // N+1 (the recycled-node hazard). Single-threaded version: the signal
  // lands, reset() retires the episode, and the new episode starts clean.
  park_slot s;
  for (int round = 0; round < 8; ++round) {
    s.signal(); // late signal for the old episode
    s.reset();  // recycle: new episode
    EXPECT_FALSE(s.was_signalled()) << "round " << round;
    s.prepare();
    EXPECT_TRUE(s.is_armed());
    EXPECT_FALSE(s.disarm());
  }
}

TEST(ParkSlotEpisode, RecycleHygieneUnderPooledReclaimer) {
  // TSan regression for node recycling: hammer the cancellation path (tiny
  // patience, park_only so every op arms its slot) against real transfers
  // with the pooled reclaimer (the default), which recycles cancelled
  // nodes' memory -- including their park_slots -- as fast as possible. Any
  // signal()-after-recycle misorder is a data race TSan reports and any
  // lost/duplicated wake shows up as a conservation failure or hang.
  auto q = std::make_shared<
      synchronous_queue<std::uint64_t, true, mem::pooled_hp_reclaimer>>(
      spin_policy::park_only());
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(t) * kOps + static_cast<std::uint64_t>(i) + 1;
        if (t % 2 == 0) {
          if (q->offer(v, deadline::in(microseconds(i % 200))))
            in_sum.fetch_add(v, std::memory_order_relaxed);
        } else {
          if (auto got = q->poll(deadline::in(microseconds(i % 200))))
            out_sum.fetch_add(*got, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto &t : ts) t.join();
  // Late-pairing drain: an offer may have succeeded just as its consumer
  // counterpart timed out recording.
  for (;;) {
    auto got = q->poll(deadline::in(milliseconds(50)));
    if (!got) break;
    out_sum.fetch_add(*got);
  }
  EXPECT_EQ(in_sum.load(), out_sum.load());
}
