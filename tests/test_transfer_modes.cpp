// Exhaustive wait-mode matrix for both transfer cores.
//
// Each of the producer modes {now, timed-short, timed-long, sync, async}
// crossed with each consumer mode {now, timed-short, timed-long, sync} has a
// defined outcome depending on arrival order; this suite pins those
// semantics down pairwise, for the queue and the stack, via
// INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "core/transfer_queue.hpp"
#include "core/transfer_stack.hpp"
#include "support/codec.hpp"

using namespace ssq;

namespace {

item_token tok_of(int v) { return item_codec<int>::encode(v); }
int val_of(item_token t) { return item_codec<int>::decode_consume(t); }

// Type-erased core handle.
struct core_iface {
  virtual ~core_iface() = default;
  virtual item_token xfer(item_token e, bool is_data, wait_kind wk,
                          deadline dl) = 0;
  virtual std::size_t length() const = 0;
};

template <typename C>
struct core_impl final : core_iface {
  C c;
  item_token xfer(item_token e, bool is_data, wait_kind wk,
                  deadline dl) override {
    return c.xfer(e, is_data, wk, dl);
  }
  std::size_t length() const override { return c.unsafe_length(); }
};

enum class which { queue, stack };

struct mode_param {
  which structure;
  const char *name;
};

std::unique_ptr<core_iface> make(which w) {
  if (w == which::queue) return std::make_unique<core_impl<transfer_queue<>>>();
  return std::make_unique<core_impl<transfer_stack<>>>();
}

std::string pname(const ::testing::TestParamInfo<mode_param> &i) {
  return i.param.name;
}

class ModeMatrix : public ::testing::TestWithParam<mode_param> {
 protected:
  std::unique_ptr<core_iface> q = make(GetParam().structure);

  static deadline short_dl() { return deadline::in(std::chrono::milliseconds(25)); }
  static deadline long_dl() { return deadline::in(std::chrono::seconds(20)); }
};

} // namespace

// ---- Both sides non-blocking: never succeed without a parked peer. ----

TEST_P(ModeMatrix, NowProducerAloneFails) {
  EXPECT_EQ(q->xfer(tok_of(1), true, wait_kind::now, deadline::expired()),
            empty_token);
  EXPECT_EQ(q->length(), 0u);
}

TEST_P(ModeMatrix, NowConsumerAloneFails) {
  EXPECT_EQ(q->xfer(empty_token, false, wait_kind::now, deadline::expired()),
            empty_token);
  EXPECT_EQ(q->length(), 0u);
}

TEST_P(ModeMatrix, NowPairNeverMeets) {
  // Two non-blocking ops cannot rendezvous even when interleaved heavily.
  std::atomic<int> successes{0};
  std::thread a([&] {
    for (int i = 0; i < 2000; ++i)
      if (q->xfer(tok_of(i + 1), true, wait_kind::now, deadline::expired()) !=
          empty_token)
        successes.fetch_add(1);
  });
  std::thread b([&] {
    for (int i = 0; i < 2000; ++i) {
      item_token r =
          q->xfer(empty_token, false, wait_kind::now, deadline::expired());
      if (r != empty_token) {
        (void)val_of(r);
        successes.fetch_add(1);
      }
    }
  });
  a.join();
  b.join();
  // now-mode ops never install nodes, so no rendezvous is possible.
  EXPECT_EQ(successes.load(), 0);
}

// ---- now vs parked peer: succeeds. ----

TEST_P(ModeMatrix, NowProducerMeetsSyncConsumer) {
  std::atomic<int> got{-1};
  std::thread c([&] {
    got.store(val_of(q->xfer(empty_token, false, wait_kind::sync, long_dl())));
  });
  while (q->length() < 1) std::this_thread::yield();
  EXPECT_NE(q->xfer(tok_of(77), true, wait_kind::now, deadline::expired()),
            empty_token);
  c.join();
  EXPECT_EQ(got.load(), 77);
}

TEST_P(ModeMatrix, NowConsumerMeetsSyncProducer) {
  std::thread p([&] {
    EXPECT_NE(q->xfer(tok_of(88), true, wait_kind::sync, long_dl()),
              empty_token);
  });
  while (q->length() < 1) std::this_thread::yield();
  item_token r =
      q->xfer(empty_token, false, wait_kind::now, deadline::expired());
  p.join();
  ASSERT_NE(r, empty_token);
  EXPECT_EQ(val_of(r), 88);
}

TEST_P(ModeMatrix, NowConsumerMeetsAsyncProducer) {
  EXPECT_NE(q->xfer(tok_of(3), true, wait_kind::async, deadline::unbounded()),
            empty_token);
  item_token r =
      q->xfer(empty_token, false, wait_kind::now, deadline::expired());
  ASSERT_NE(r, empty_token);
  EXPECT_EQ(val_of(r), 3);
}

// ---- timed vs nothing: expires; vs late peer: succeeds. ----

TEST_P(ModeMatrix, TimedProducerExpiresAlone) {
  auto t0 = steady_clock::now();
  EXPECT_EQ(q->xfer(tok_of(1), true, wait_kind::timed, short_dl()),
            empty_token);
  EXPECT_GE(steady_clock::now() - t0, std::chrono::milliseconds(20));
  EXPECT_LE(q->length(), 1u) << "cancelled node may linger at most briefly";
}

TEST_P(ModeMatrix, TimedConsumerExpiresAlone) {
  EXPECT_EQ(q->xfer(empty_token, false, wait_kind::timed, short_dl()),
            empty_token);
}

TEST_P(ModeMatrix, TimedProducerMeetsLateTimedConsumer) {
  std::thread p([&] {
    EXPECT_NE(q->xfer(tok_of(5), true, wait_kind::timed, long_dl()),
              empty_token);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  item_token r = q->xfer(empty_token, false, wait_kind::timed, long_dl());
  p.join();
  ASSERT_NE(r, empty_token);
  EXPECT_EQ(val_of(r), 5);
}

TEST_P(ModeMatrix, SyncProducerMeetsTimedConsumer) {
  std::thread c([&] {
    item_token r = q->xfer(empty_token, false, wait_kind::timed, long_dl());
    ASSERT_NE(r, empty_token);
    EXPECT_EQ(val_of(r), 9);
  });
  while (q->length() < 1) std::this_thread::yield();
  EXPECT_NE(q->xfer(tok_of(9), true, wait_kind::sync, long_dl()),
            empty_token);
  c.join();
}

// ---- async producer semantics. ----

TEST_P(ModeMatrix, AsyncProducerNeverWaits) {
  auto t0 = steady_clock::now();
  for (int i = 0; i < 200; ++i)
    EXPECT_NE(
        q->xfer(tok_of(i + 1), true, wait_kind::async, deadline::unbounded()),
        empty_token);
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(10));
  EXPECT_EQ(q->length(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_NE(q->xfer(empty_token, false, wait_kind::now, deadline::expired()),
              empty_token);
  EXPECT_EQ(q->length(), 0u);
}

TEST_P(ModeMatrix, AsyncProducerFulfillsParkedConsumer) {
  std::atomic<int> got{-1};
  std::thread c([&] {
    got.store(val_of(q->xfer(empty_token, false, wait_kind::sync, long_dl())));
  });
  while (q->length() < 1) std::this_thread::yield();
  EXPECT_NE(q->xfer(tok_of(44), true, wait_kind::async, deadline::unbounded()),
            empty_token);
  c.join();
  EXPECT_EQ(got.load(), 44);
}

TEST_P(ModeMatrix, TimedConsumerDrainsAsyncBacklog) {
  for (int i = 0; i < 5; ++i)
    q->xfer(tok_of(i + 1), true, wait_kind::async, deadline::unbounded());
  long sum = 0;
  for (int i = 0; i < 5; ++i)
    sum += val_of(q->xfer(empty_token, false, wait_kind::timed, long_dl()));
  EXPECT_EQ(sum, 1 + 2 + 3 + 4 + 5);
  EXPECT_EQ(q->xfer(empty_token, false, wait_kind::now, deadline::expired()),
            empty_token);
}

// ---- mixed-mode pileups keep working. ----

TEST_P(ModeMatrix, MixedModeGauntlet) {
  std::atomic<long> in{0}, out{0};
  std::atomic<int> net{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        int v = t * 1000 + i + 1;
        switch ((t + i) % 4) {
          case 0:
            if (q->xfer(tok_of(v), true, wait_kind::timed,
                        deadline::in(std::chrono::milliseconds(2))) !=
                empty_token) {
              in.fetch_add(v);
              net.fetch_add(1);
            }
            break;
          case 1: {
            item_token r =
                q->xfer(empty_token, false, wait_kind::timed,
                        deadline::in(std::chrono::milliseconds(2)));
            if (r != empty_token) {
              out.fetch_add(val_of(r));
              net.fetch_sub(1);
            }
            break;
          }
          case 2:
            q->xfer(tok_of(v), true, wait_kind::async, deadline::unbounded());
            in.fetch_add(v);
            net.fetch_add(1);
            break;
          default: {
            item_token r = q->xfer(empty_token, false, wait_kind::now,
                                   deadline::expired());
            if (r != empty_token) {
              out.fetch_add(val_of(r));
              net.fetch_sub(1);
            }
            break;
          }
        }
      }
    });
  }
  for (auto &t : ts) t.join();
  // Drain async leftovers.
  for (;;) {
    item_token r =
        q->xfer(empty_token, false, wait_kind::now, deadline::expired());
    if (r == empty_token) break;
    out.fetch_add(val_of(r));
    net.fetch_sub(1);
  }
  EXPECT_EQ(net.load(), 0);
  EXPECT_EQ(in.load(), out.load());
}

INSTANTIATE_TEST_SUITE_P(Cores, ModeMatrix,
                         ::testing::Values(mode_param{which::queue, "Queue"},
                                           mode_param{which::stack, "Stack"}),
                         pname);
