// latency_histogram: per-transfer handoff latency distribution.
//
// Throughput (the figures) hides tail behaviour; this tool measures
// individual put()->return latencies under a steady 1:1 handoff and prints
// min / p50 / p90 / p99 / p99.9 / max per implementation. Fair-mode lock
// pileups and notify-all storms show up here as long tails well before
// they dominate the mean.
//
//   ./latency_histogram --ops=20000 --impls=new-fair,new-unfair,...
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/hanson_sq.hpp"
#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "core/eliminating_sq.hpp"
#include "core/synchronous_queue.hpp"
#include "harness/options.hpp"
#include "harness/stats.hpp"
#include "harness/table.hpp"

using namespace ssq;

namespace {

struct put_take {
  std::function<void(std::uint32_t)> put;
  std::function<std::uint32_t()> take;
};

template <typename Q>
put_take make(std::shared_ptr<Q> q) {
  return {[q](std::uint32_t v) { q->put(v); }, [q] { return q->take(); }};
}

put_take make_impl(const std::string &name) {
  if (name == "new-fair")
    return make(std::make_shared<synchronous_queue<std::uint32_t, true>>());
  if (name == "new-unfair")
    return make(std::make_shared<synchronous_queue<std::uint32_t, false>>());
  if (name == "java5-fair")
    return make(std::make_shared<java5_sq<std::uint32_t, true>>());
  if (name == "java5-unfair")
    return make(std::make_shared<java5_sq<std::uint32_t, false>>());
  if (name == "hanson")
    return make(std::make_shared<hanson_sq<std::uint32_t>>());
  if (name == "naive")
    return make(std::make_shared<naive_sq<std::uint32_t>>());
  if (name == "eliminating")
    return make(std::make_shared<eliminating_sq<std::uint32_t>>());
  std::fprintf(stderr, "unknown impl %s\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> split_names(const std::string &csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    auto comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

} // namespace

int main(int argc, char **argv) {
  auto opt = harness::options::parse(argc, argv);
  const auto ops = static_cast<std::uint64_t>(
      opt.get_int("ops", opt.has("quick") ? 2000 : 20000));
  auto names = split_names(opt.get(
      "impls",
      "java5-unfair,java5-fair,hanson,new-unfair,new-fair,eliminating"));

  harness::table t(
      {"impl", "min(ns)", "p50", "p90", "p99", "p99.9", "max"});
  for (const auto &name : names) {
    put_take q = make_impl(name);
    std::vector<double> lat;
    lat.reserve(ops);
    std::thread consumer([&] {
      for (std::uint64_t i = 0; i < ops; ++i) (void)q.take();
    });
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto t0 = steady_clock::now();
      q.put(static_cast<std::uint32_t>(i + 1));
      lat.push_back(std::chrono::duration<double, std::nano>(
                        steady_clock::now() - t0)
                        .count());
    }
    consumer.join();
    auto s = harness::summarize(lat);
    t.add_row({name, harness::table::fmt(s.min, 0),
               harness::table::fmt(harness::percentile(lat, 0.50), 0),
               harness::table::fmt(harness::percentile(lat, 0.90), 0),
               harness::table::fmt(harness::percentile(lat, 0.99), 0),
               harness::table::fmt(harness::percentile(lat, 0.999), 0),
               harness::table::fmt(s.max, 0)});
    std::fflush(stdout);
  }
  std::printf("\nPer-put handoff latency, 1 producer : 1 consumer\n");
  t.print();
  std::string csv = opt.get("csv", "");
  if (!csv.empty() && t.write_csv(csv))
    std::printf("(csv written to %s)\n", csv.c_str());
  return 0;
}
