// The four checks, run over a FileModel (frontend-independent).
//
// Custody model (checks 1+2). Each local node pointer is in one state:
//   CallerProt -- function parameter: the caller established protection
//                 (ctors/dtors and single-threaded observers are handled by
//                 exemption/suppression, not by weakening this assumption);
//   Owned      -- obtained from rec_.create: no other thread can free it;
//   Covered    -- covered by one or more hazard slots (protect/set or an
//                 SSQ_ACQUIRES_HAZARD function's result);
//   UnprotGuarded -- loaded from an SSQ_GUARDED_BY_HAZARD field (or returned
//                 by an SSQ_RETURNS_UNPROTECTED function): a value, not a
//                 dereferenceable pointer;
//   Dropped    -- was Covered until its last covering slot was re-pointed or
//                 cleared;
//   Null/Untracked -- literal nullptr / anything the model cannot classify.
// Dereferencing UnprotGuarded is `hazard-coverage`; dereferencing Dropped is
// `reread-after-drop`; every other state is silent (Untracked keeps the
// checker conservative about reporting, never about protecting).
//
// In-file calls are summarized: a fixpoint computes which parameters each
// function dereferences (directly or transitively), so passing an
// unprotected value as a pure CAS operand is fine while passing it to a
// function that will dereference it is reported at the call site.
#include "lint.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ssqlint {

namespace {

const char *kCheckNames[] = {"hazard-coverage",    "reread-after-drop",
                             "park-episode",       "mo-unjustified",
                             "mo-relaxed-control", "mo-pairing",
                             "cell-state",         "bad-suppression"};

bool known_check(const std::string &s) {
  for (const char *c : kCheckNames)
    if (s == c) return true;
  return false;
}

bool tok_is(const Token &t, const char *s) { return t.text == s; }
bool is_id(const Token &t) { return t.kind == Token::Kind::Ident; }

// Memory-order spelling at toks[k]: either a bare memory_order_X identifier
// or the approved macro spelling SSQ_MO ( X ). Returns the order name
// ("release", "seq_cst", ...) or "" when toks[k] starts neither; *len is
// the number of tokens the spelling occupies.
std::string mo_spelling(const std::vector<Token> &toks, std::size_t k,
                        std::size_t *len) {
  *len = 1;
  if (!is_id(toks[k])) return "";
  if (toks[k].text.rfind("memory_order_", 0) == 0)
    return toks[k].text.substr(13);
  if (toks[k].text == "SSQ_MO" && k + 3 < toks.size() &&
      tok_is(toks[k + 1], "(") && is_id(toks[k + 2]) &&
      tok_is(toks[k + 3], ")")) {
    *len = 4;
    return toks[k + 2].text;
  }
  return "";
}

std::string basename_of(const std::string &path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

// ---------------------------------------------------------------- derive

// Token-level scan of every statement in a function, flattened.
template <typename Fn>
void for_each_stmt(const std::vector<Stmt> &list, Fn &&fn) {
  for (const Stmt &s : list) {
    fn(s);
    for_each_stmt(s.body, fn);
    for_each_stmt(s.else_body, fn);
  }
}

void all_tokens(const std::vector<Stmt> &list, std::vector<Token> &out) {
  for_each_stmt(list, [&](const Stmt &s) {
    out.insert(out.end(), s.cond.begin(), s.cond.end());
    out.insert(out.end(), s.toks.begin(), s.toks.end());
  });
}

// Does `toks` contain a load from a guarded field: GF `.` load | GF `.`
// value `.` load ?
bool has_guarded_load(const std::vector<Token> &toks,
                      const std::set<std::string> &gf) {
  for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
    if (!is_id(toks[k]) || !gf.count(toks[k].text)) continue;
    if (!tok_is(toks[k + 1], ".")) continue;
    if (tok_is(toks[k + 2], "load")) return true;
    if (k + 4 < toks.size() && tok_is(toks[k + 2], "value") &&
        tok_is(toks[k + 3], ".") && tok_is(toks[k + 4], "load"))
      return true;
  }
  return false;
}

bool has_protect_or_set(const std::vector<Token> &toks) {
  for (std::size_t k = 0; k + 1 < toks.size(); ++k)
    if (tok_is(toks[k], ".") &&
        (tok_is(toks[k + 1], "protect") || tok_is(toks[k + 1], "set")))
      return true;
  return false;
}

struct DerivedFn {
  bool pure = false;          // safe to treat as identity on its argument
  std::vector<Token> flat;    // every token in the body, linearized
};

// Classify params, refine returns_node_ptr, compute deref summaries.
void derive(FileModel &m, std::map<std::string, Function *> &by_name,
            std::map<const Function *, DerivedFn> &dv) {
  for (Function &f : m.functions) {
    for (Param &p : f.params) {
      p.is_node_ptr = p.is_ptr && m.node_types.count(p.type_hint) > 0;
      p.is_slot_ref = p.is_ref && p.type_hint == "slot";
      p.is_park_slot = p.type_hint == "park_slot";
    }
    f.returns_node_ptr =
        f.returns_node_ptr && m.node_types.count(f.return_type_hint) > 0;
    by_name[f.name] = &f; // overload collisions: last wins, fine here
    all_tokens(f.body, dv[&f].flat);
  }
  // Direct derefs: PARAM `->`  (and PARAM `.` for by-reference params).
  for (Function &f : m.functions) {
    const auto &flat = dv[&f].flat;
    for (std::size_t k = 0; k + 1 < flat.size(); ++k) {
      if (!is_id(flat[k]) || !tok_is(flat[k + 1], "->")) continue;
      for (std::size_t pi = 0; pi < f.params.size(); ++pi)
        if (f.params[pi].name == flat[k].text) f.deref_params.insert(pi);
    }
  }
  // Transitive: f passes its param bare at a position g dereferences.
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (Function &f : m.functions) {
      const auto &flat = dv[&f].flat;
      for (std::size_t k = 0; k + 1 < flat.size(); ++k) {
        if (!is_id(flat[k]) || !tok_is(flat[k + 1], "(")) continue;
        if (k > 0 && (tok_is(flat[k - 1], ".") || tok_is(flat[k - 1], "->")))
          continue; // method call on some object, not an in-file free call
        auto it = by_name.find(flat[k].text);
        if (it == by_name.end()) continue;
        Function *g = it->second;
        if (g == &f) continue;
        // Split args at paren depth 1.
        std::vector<std::vector<const Token *>> args(1);
        int depth = 0;
        for (std::size_t j = k + 1; j < flat.size(); ++j) {
          const std::string &p = flat[j].text;
          if (p == "(" || p == "[" || p == "{") { ++depth; if (depth == 1) continue; }
          else if (p == ")" || p == "]" || p == "}") {
            --depth;
            if (depth == 0) break;
          } else if (p == "," && depth == 1) {
            args.emplace_back();
            continue;
          }
          args.back().push_back(&flat[j]);
        }
        for (std::size_t ai = 0; ai < args.size(); ++ai) {
          if (args[ai].size() != 1 || !is_id(*args[ai][0])) continue;
          if (!g->deref_params.count(ai)) continue;
          for (std::size_t pi = 0; pi < f.params.size(); ++pi)
            if (f.params[pi].name == args[ai][0]->text &&
                !f.deref_params.count(pi)) {
              f.deref_params.insert(pi);
              changed = true;
            }
        }
      }
    }
    if (!changed) break;
  }
  for (Function &f : m.functions) {
    DerivedFn &d = dv[&f];
    d.pure = f.deref_params.empty() && !f.acquires_hazard &&
             !f.returns_unprotected && !has_guarded_load(d.flat, m.guarded_fields) &&
             !has_protect_or_set(d.flat);
  }
}

// ----------------------------------------------------------- suppressions

struct Suppression {
  std::string check;
  int line;
  bool justified;
};

std::vector<Suppression> parse_suppressions(const FileModel &m,
                                            std::vector<Diagnostic> &diags) {
  std::vector<Suppression> out;
  const std::string file = basename_of(m.path);
  for (const Comment &c : m.comments) {
    auto at = c.text.find("ssq-lint:");
    if (at == std::string::npos) continue;
    auto sp = c.text.find("suppress(", at);
    if (sp == std::string::npos) {
      diags.push_back({file, c.line, "bad-suppression",
                       "malformed ssq-lint comment (expected suppress(<check>))"});
      continue;
    }
    auto close = c.text.find(')', sp);
    if (close == std::string::npos) continue;
    std::string check = c.text.substr(sp + 9, close - (sp + 9));
    if (!known_check(check)) {
      diags.push_back({file, c.line, "bad-suppression",
                       "unknown check '" + check + "' in suppression"});
      continue;
    }
    auto dash = c.text.find("--", close);
    bool justified = false;
    if (dash != std::string::npos) {
      std::string just = c.text.substr(dash + 2);
      justified = just.find_first_not_of(" \t*/") != std::string::npos;
    }
    if (!justified) {
      diags.push_back({file, c.line, "bad-suppression",
                       "suppression of '" + check + "' without a justification"});
      continue;
    }
    out.push_back({check, c.line, true});
  }
  return out;
}

bool suppressed(const Function &f, const std::vector<Suppression> &sup,
                const char *check) {
  for (const Suppression &s : sup)
    if (s.check == check && s.line >= f.line - 2 && s.line <= f.end_line)
      return true;
  return false;
}

// ------------------------------------------------------------ custody sim

enum class VS { Untracked, Null, CallerProt, Owned, Covered, UnprotGuarded, Dropped };

int rank(VS v) {
  switch (v) {
    case VS::Dropped: return 6;
    case VS::UnprotGuarded: return 5;
    case VS::Covered: return 4;
    case VS::Owned: return 3;
    case VS::CallerProt: return 3;
    case VS::Null: return 1;
    default: return 0;
  }
}

struct CustodyState {
  std::map<std::string, VS> vs;
  std::map<std::string, std::set<std::string>> covers;     // slot -> vars
  std::map<std::string, std::set<std::string>> covered_by; // var -> slots
};

struct CustodySim {
  const FileModel &M;
  const Function &F;
  const std::map<std::string, Function *> &by_name;
  const std::map<const Function *, DerivedFn> &dv;
  std::vector<Diagnostic> &diags;
  std::set<std::string> &dedupe; // "check\0var" per function
  bool sup_cov, sup_drop;

  std::set<std::string> slots; // hazard-slot variable names
  CustodyState st;

  CustodySim(const FileModel &m, const Function &f,
             const std::map<std::string, Function *> &bn,
             const std::map<const Function *, DerivedFn> &d,
             std::vector<Diagnostic> &out, std::set<std::string> &dd,
             bool scov, bool sdrop)
      : M(m), F(f), by_name(bn), dv(d), diags(out), dedupe(dd),
        sup_cov(scov), sup_drop(sdrop) {
    for (const Param &p : f.params) {
      if (p.is_slot_ref) slots.insert(p.name);
      else if (p.is_node_ptr) st.vs[p.name] = VS::CallerProt;
    }
  }

  bool tracked(const std::string &n) const { return st.vs.count(n) > 0; }

  void unbind(const std::string &v) {
    auto it = st.covered_by.find(v);
    if (it == st.covered_by.end()) return;
    for (const std::string &s : it->second) st.covers[s].erase(v);
    st.covered_by.erase(it);
  }

  void drop_slot(const std::string &s) {
    for (const std::string &v : st.covers[s]) {
      st.covered_by[v].erase(s);
      if (st.covered_by[v].empty()) st.vs[v] = VS::Dropped;
    }
    st.covers[s].clear();
  }

  void cover(const std::string &slot, const std::string &var) {
    st.covers[slot].insert(var);
    st.covered_by[var].insert(slot);
    st.vs[var] = VS::Covered;
  }

  void assign_copy(const std::string &dst, const std::string &src) {
    unbind(dst);
    st.vs[dst] = st.vs[src];
    auto it = st.covered_by.find(src);
    if (it != st.covered_by.end()) {
      st.covered_by[dst] = it->second;
      for (const std::string &s : it->second) st.covers[s].insert(dst);
    }
  }

  void set_state(const std::string &v, VS s) {
    unbind(v);
    st.vs[v] = s;
  }

  void report(const std::string &var, int line) {
    VS s = st.vs[var];
    const char *check = s == VS::Dropped ? "reread-after-drop" : "hazard-coverage";
    if (s == VS::Dropped ? sup_drop : sup_cov) return;
    std::string key = std::string(check) + "|" + var;
    if (!dedupe.insert(key).second) return;
    std::string msg =
        s == VS::Dropped
            ? "dereference of '" + var +
                  "' after its covering hazard slot was re-pointed or cleared"
            : "dereference of '" + var +
                  "' which is not covered by a hazard slot (value loaded "
                  "from a guarded field)";
    diags.push_back({basename_of(M.path), line, check, msg});
  }

  void check_deref(const std::string &var, int line) {
    VS s = st.vs.count(var) ? st.vs[var] : VS::Untracked;
    if (s == VS::UnprotGuarded || s == VS::Dropped) report(var, line);
  }

  // -------------------------------------------------------------- events

  // Scan one statement's token list for slot declarations, slot method
  // calls, dereferences, and in-file call argument checks.
  void scan_events(const std::vector<Token> &toks) {
    for (std::size_t k = 0; k < toks.size(); ++k) {
      // Slot declaration: `slot NAME ( ... ) [, NAME ( ... )]*`
      if (is_id(toks[k]) && toks[k].text == "slot" && k + 2 < toks.size() &&
          is_id(toks[k + 1]) && tok_is(toks[k + 2], "(")) {
        std::size_t j = k + 1;
        while (j + 1 < toks.size() && is_id(toks[j]) &&
               tok_is(toks[j + 1], "(")) {
          slots.insert(toks[j].text);
          int depth = 0;
          std::size_t e = j + 1;
          for (; e < toks.size(); ++e) {
            if (tok_is(toks[e], "(")) ++depth;
            else if (tok_is(toks[e], ")") && --depth == 0) break;
          }
          j = (e + 1 < toks.size() && tok_is(toks[e + 1], ",")) ? e + 2
                                                                : toks.size();
        }
        continue;
      }
      // Slot method calls.
      if (is_id(toks[k]) && slots.count(toks[k].text) &&
          k + 2 < toks.size() && tok_is(toks[k + 1], ".")) {
        const std::string &m = toks[k + 2].text;
        if (m == "protect") {
          drop_slot(toks[k].text); // rebinding; result handled by assignment
        } else if (m == "clear") {
          drop_slot(toks[k].text);
        } else if (m == "set") {
          drop_slot(toks[k].text);
          // Cover the first tracked var among the args.
          int depth = 0;
          for (std::size_t j = k + 3; j < toks.size(); ++j) {
            if (tok_is(toks[j], "(")) { ++depth; continue; }
            if (tok_is(toks[j], ")") && --depth == 0) break;
            if (is_id(toks[j]) && tracked(toks[j].text)) {
              cover(toks[k].text, toks[j].text);
              break;
            }
          }
        }
        continue;
      }
      // Dereference: VAR -> ...
      if (is_id(toks[k]) && k + 1 < toks.size() &&
          tok_is(toks[k + 1], "->") && tracked(toks[k].text)) {
        check_deref(toks[k].text, toks[k].line);
        continue;
      }
      // In-file call: arg deref checks + slot invalidation.
      if (is_id(toks[k]) && k + 1 < toks.size() && tok_is(toks[k + 1], "(") &&
          (k == 0 || (!tok_is(toks[k - 1], ".") && !tok_is(toks[k - 1], "->")))) {
        auto it = by_name.find(toks[k].text);
        if (it == by_name.end()) continue;
        const Function *g = it->second;
        std::vector<std::vector<const Token *>> args(1);
        int depth = 0;
        for (std::size_t j = k + 1; j < toks.size(); ++j) {
          const std::string &p = toks[j].text;
          if (p == "(" || p == "[" || p == "{") { ++depth; if (depth == 1) continue; }
          else if (p == ")" || p == "]" || p == "}") {
            --depth;
            if (depth == 0) break;
          } else if (p == "," && depth == 1) {
            args.emplace_back();
            continue;
          }
          args.back().push_back(&toks[j]);
        }
        for (std::size_t ai = 0; ai < args.size(); ++ai) {
          if (args[ai].size() != 1 || !is_id(*args[ai][0])) continue;
          const std::string &an = args[ai][0]->text;
          if (g->deref_params.count(ai) && tracked(an))
            check_deref(an, args[ai][0]->line);
          if (slots.count(an)) drop_slot(an); // callee may rebind it
        }
      }
    }
  }

  // ---------------------------------------------------------- assignment

  // Returns index of the first top-level `=` (not ==, !=, <=, >=), or npos.
  static std::size_t top_level_assign(const std::vector<Token> &toks) {
    int depth = 0;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      const std::string &p = toks[k].text;
      if (toks[k].kind == Token::Kind::Punct) {
        if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
        else if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
        else if (p == "=" && depth <= 0) return k;
      }
    }
    return static_cast<std::size_t>(-1);
  }

  void handle_assignment(const std::vector<Token> &toks) {
    std::size_t eq = top_level_assign(toks);
    if (eq == static_cast<std::size_t>(-1) || eq == 0) return;
    // Target(s).
    std::vector<std::string> targets;
    bool is_decl = false;
    {
      // Structured binding: auto [a, b] = ...
      if (toks.size() > 2 && is_id(toks[0]) && toks[0].text == "auto" &&
          tok_is(toks[1], "[")) {
        for (std::size_t k = 2; k < eq && !tok_is(toks[k], "]"); ++k)
          if (is_id(toks[k])) targets.push_back(toks[k].text);
        is_decl = true;
      } else {
        // Last identifier before `=` that is not inside a group.
        std::string name;
        int depth = 0;
        bool lhs_deref = false, star = false;
        for (std::size_t k = 0; k < eq; ++k) {
          const std::string &p = toks[k].text;
          if (toks[k].kind == Token::Kind::Punct) {
            if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
            else if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
            else if (p == "->" || p == ".") lhs_deref = true;
            else if (p == "*") star = true;
            continue;
          }
          if (depth == 0 && is_id(toks[k]) &&
              kNotTargets.find(toks[k].text) == kNotTargets.end())
            name = toks[k].text;
        }
        if (lhs_deref || name.empty()) {
          // `x->f = v` / `s->mode = m`: a write through a pointer; the deref
          // was already checked by scan_events.
          return;
        }
        is_decl = star || eq >= 2; // pointer decl or re-assignment; both fine
        targets.push_back(name);
      }
    }
    // Classify RHS.
    std::vector<Token> rhs(toks.begin() + eq + 1, toks.end());

    // 1. slot.protect(...)
    for (std::size_t k = 0; k + 2 < rhs.size(); ++k) {
      if (is_id(rhs[k]) && slots.count(rhs[k].text) &&
          tok_is(rhs[k + 1], ".") && tok_is(rhs[k + 2], "protect")) {
        for (const std::string &t : targets) {
          unbind(t);
          cover(rhs[k].text, t);
        }
        return;
      }
    }
    // 2. rec_.create<...>
    for (std::size_t k = 0; k + 1 < rhs.size(); ++k) {
      if (is_id(rhs[k]) && rhs[k].text == "create" &&
          (tok_is(rhs[k + 1], "<") || tok_is(rhs[k + 1], "("))) {
        for (const std::string &t : targets) set_state(t, VS::Owned);
        return;
      }
    }
    // 3. Guarded-field load.
    if (has_guarded_load(rhs, M.guarded_fields)) {
      for (const std::string &t : targets) set_state(t, VS::UnprotGuarded);
      return;
    }
    // 4/5. In-file calls.
    for (std::size_t k = 0; k + 1 < rhs.size(); ++k) {
      if (!is_id(rhs[k]) || !tok_is(rhs[k + 1], "(")) continue;
      if (k > 0 && (tok_is(rhs[k - 1], ".") || tok_is(rhs[k - 1], "->")))
        continue;
      auto it = by_name.find(rhs[k].text);
      if (it == by_name.end()) continue;
      const Function *g = it->second;
      if (g->acquires_hazard) {
        // Result is covered by the slot argument (first binding for
        // structured bindings; remaining bindings are flags).
        std::string slot_arg;
        int depth = 0;
        for (std::size_t j = k + 1; j < rhs.size(); ++j) {
          if (tok_is(rhs[j], "(")) { ++depth; continue; }
          if (tok_is(rhs[j], ")") && --depth == 0) break;
          if (is_id(rhs[j]) && slots.count(rhs[j].text)) slot_arg = rhs[j].text;
        }
        if (!targets.empty()) {
          unbind(targets[0]);
          if (!slot_arg.empty()) cover(slot_arg, targets[0]);
          else st.vs[targets[0]] = VS::Covered; // anonymous coverage
          for (std::size_t ti = 1; ti < targets.size(); ++ti)
            set_state(targets[ti], VS::Untracked);
        }
        return;
      }
      if (g->returns_unprotected ||
          (g->returns_node_ptr && !dv.at(g).pure)) {
        for (const std::string &t : targets) set_state(t, VS::UnprotGuarded);
        return;
      }
    }
    // 6. Copy: exactly one distinct tracked var mentioned in the RHS.
    {
      std::set<std::string> vars;
      for (const Token &tk : rhs)
        if (is_id(tk) && tracked(tk.text)) vars.insert(tk.text);
      if (vars.size() == 1) {
        for (const std::string &t : targets)
          if (t != *vars.begin()) assign_copy(t, *vars.begin());
        return;
      }
      if (vars.empty()) {
        bool null_only = false;
        for (const Token &tk : rhs)
          if (is_id(tk) && tk.text == "nullptr") null_only = true;
        for (const std::string &t : targets)
          set_state(t, null_only ? VS::Null : VS::Untracked);
        return;
      }
    }
    for (const std::string &t : targets) set_state(t, VS::Untracked);
    (void)is_decl;
  }

  static const std::set<std::string> kNotTargets;

  // ---------------------------------------------------------- simulation

  static bool terminal(const std::vector<Stmt> &list) {
    if (list.empty()) return false;
    const Stmt &last = list.back();
    switch (last.kind) {
      case Stmt::Kind::Return: return true;
      case Stmt::Kind::Plain:
        return last.toks.size() == 1 &&
               (last.toks[0].text == "break" || last.toks[0].text == "continue");
      case Stmt::Kind::Block: return terminal(last.body);
      case Stmt::Kind::If:
        return !last.else_body.empty() && terminal(last.body) &&
               terminal(last.else_body);
      default: return false;
    }
  }

  void merge_into(CustodyState &a, const CustodyState &b) {
    // Meet on states; coverage sets union (FP-safe; this checker reports
    // only states that some path definitely produced as bad).
    for (const auto &kv : b.vs) {
      auto it = a.vs.find(kv.first);
      if (it == a.vs.end()) a.vs[kv.first] = kv.second;
      else if (rank(kv.second) > rank(it->second)) it->second = kv.second;
    }
    for (const auto &kv : b.covered_by)
      for (const std::string &s : kv.second) {
        a.covered_by[kv.first].insert(s);
        a.covers[s].insert(kv.first);
      }
  }

  void simulate(const std::vector<Stmt> &list) {
    for (const Stmt &s : list) simulate_one(s);
  }

  void simulate_one(const Stmt &s) {
    switch (s.kind) {
      case Stmt::Kind::Plain:
      case Stmt::Kind::Return:
        scan_events(s.toks);
        if (s.kind == Stmt::Kind::Plain) handle_assignment(s.toks);
        break;
      case Stmt::Kind::Block:
        simulate(s.body);
        break;
      case Stmt::Kind::If: {
        scan_events(s.cond);
        CustodyState snap = st;
        simulate(s.body);
        bool tterm = terminal(s.body);
        CustodyState after_then = st;
        st = snap;
        simulate(s.else_body);
        bool eterm = !s.else_body.empty() && terminal(s.else_body);
        if (tterm && !eterm) {
          // keep else/fall-through state
        } else if (eterm && !tterm) {
          st = after_then;
        } else if (tterm && eterm) {
          st = snap; // unreachable after; anything is fine
        } else {
          merge_into(st, after_then);
        }
        break;
      }
      case Stmt::Kind::Loop: {
        scan_events(s.cond);
        handle_assignment(s.cond); // for-init declarations
        CustodyState snap = st;
        simulate(s.body);
        merge_into(st, snap);
        break;
      }
    }
  }
};

const std::set<std::string> CustodySim::kNotTargets = {
    "auto",     "const", "typename", "static", "snode", "qnode",
    "node",     "void",  "item_token", "bool", "int",   "unsigned",
    "std",      "mem",   "sync",     "ssq",   "Reclaimer", "slot",
    "qnode_ptr"};

// -------------------------------------------------------- park episodes

struct ParkSim {
  struct PState {
    bool armed = false;
    std::string pending; // wait-result var while armed-after-wait
  };
  const FileModel &M;
  const Function &F;
  std::vector<Diagnostic> &diags;
  std::set<int> reported;
  std::map<std::string, PState> st;

  ParkSim(const FileModel &m, const Function &f, std::vector<Diagnostic> &d)
      : M(m), F(f), diags(d) {}

  static bool any_armed(const std::map<std::string, PState> &s) {
    for (const auto &kv : s)
      if (kv.second.armed) return true;
    return false;
  }

  void report(int line) {
    if (!reported.insert(line).second) return;
    diags.push_back({basename_of(M.path), line, "park-episode",
                     "exit path may leave a prepared park_slot armed "
                     "(missing disarm()/reset() before return)"});
  }

  // Walk back from toks[k] (the method name) across ident/./-> to build the
  // slot expression, e.g. "slot" or "s->slot".
  static std::string slot_expr(const std::vector<Token> &toks, std::size_t k) {
    // toks[k] is the method; toks[k-1] is '.'; expression ends at k-2.
    std::string out;
    std::size_t j = k - 1; // '.'
    while (j > 0) {
      const Token &t = toks[j - 1];
      if (is_id(t) || tok_is(t, "->") || tok_is(t, ".")) {
        out = t.text + out;
        --j;
      } else {
        break;
      }
    }
    return out.empty() ? "<slot>" : out;
  }

  void scan(const std::vector<Token> &toks) {
    for (std::size_t k = 2; k < toks.size(); ++k) {
      if (!is_id(toks[k]) || !tok_is(toks[k - 1], ".")) continue;
      const std::string &m = toks[k].text;
      if (m != "prepare" && m != "disarm" && m != "reset" && m != "wait")
        continue;
      if (k + 1 >= toks.size() || !tok_is(toks[k + 1], "(")) continue;
      std::string se = slot_expr(toks, k);
      // Strip a trailing '.'/'->' artifact: slot_expr includes the final
      // separator-left side only; normalize by removing trailing dots.
      PState &ps = st[se];
      if (m == "prepare") {
        ps.armed = true;
        ps.pending.clear();
      } else if (m == "disarm" || m == "reset") {
        ps.armed = false;
        ps.pending.clear();
      } else { // wait
        ps.armed = true;
        ps.pending.clear();
        // Captured result: `auto R = <se>.wait(` or `R = <se>.wait(`.
        // Find the '=' left of the expression start.
        for (std::size_t j = 0; j + 1 < k; ++j) {
          if (tok_is(toks[j + 1], "=") && is_id(toks[j])) {
            // ensure this '=' directly precedes the slot expr tokens
            ps.pending = toks[j].text;
          }
        }
      }
    }
  }

  static bool terminal(const std::vector<Stmt> &list) {
    return CustodySim::terminal(list);
  }

  void merge_into(std::map<std::string, PState> &a,
                  const std::map<std::string, PState> &b) {
    for (const auto &kv : b) {
      PState &pa = a[kv.first];
      if (kv.second.armed) {
        pa.armed = true;
        if (pa.pending.empty()) pa.pending = kv.second.pending;
      }
    }
  }

  void simulate(const std::vector<Stmt> &list) {
    for (const Stmt &s : list) simulate_one(s);
  }

  void simulate_one(const Stmt &s) {
    switch (s.kind) {
      case Stmt::Kind::Plain:
        scan(s.toks);
        break;
      case Stmt::Kind::Return:
        scan(s.toks);
        if (any_armed(st)) report(s.line);
        break;
      case Stmt::Kind::Block:
        simulate(s.body);
        break;
      case Stmt::Kind::If: {
        scan(s.cond);
        // Wait-result dispatch: `if (R != ... woken)` / `if (R == ... woken)`.
        std::string match_se;
        bool neq = false, eq = false;
        for (const auto &kv : st) {
          if (kv.second.pending.empty()) continue;
          bool has_var = false, has_woken = false;
          for (const Token &t : s.cond) {
            if (is_id(t) && t.text == kv.second.pending) has_var = true;
            if (is_id(t) && t.text == "woken") has_woken = true;
          }
          if (has_var && has_woken) {
            match_se = kv.first;
            for (const Token &t : s.cond) {
              if (tok_is(t, "!=")) neq = true;
              if (tok_is(t, "==")) eq = true;
            }
            break;
          }
        }
        auto snap = st;
        if (!match_se.empty() && eq && !neq) st[match_se].armed = false;
        simulate(s.body);
        bool tterm = terminal(s.body);
        auto after_then = st;
        st = snap;
        if (!match_se.empty() && neq) st[match_se].armed = false;
        simulate(s.else_body);
        bool eterm = !s.else_body.empty() && terminal(s.else_body);
        if (tterm && !eterm) {
          // keep fall-through state
        } else if (eterm && !tterm) {
          st = after_then;
        } else if (tterm && eterm) {
          st = snap;
        } else {
          merge_into(st, after_then);
        }
        break;
      }
      case Stmt::Kind::Loop: {
        scan(s.cond);
        auto snap = st;
        simulate(s.body);
        merge_into(st, snap);
        break;
      }
    }
  }
};

// ------------------------------------------------------------- MO check

// Marker vocabulary. A "justifier" satisfies mo-unjustified for the
// statement it covers; SSQ_CELL_TRANSITION is a marker (it participates in
// marker runs so stacked annotations all reach their statement) but not a
// justifier. Coverage is statement-extent based: a marker covers the
// statement containing it, the next non-marker sibling after a consecutive
// run of marker statements, and the previous sibling when the marker run
// starts on that statement's last source line.
bool is_justifier_name(const std::string &s) {
  return s == "SSQ_MO_JUSTIFIED" || s == "SSQ_MO_RELEASE_EDGE" ||
         s == "SSQ_MO_ACQUIRE_EDGE" || s == "SSQ_MO_FENCE_EDGE";
}
bool is_marker_name(const std::string &s) {
  return is_justifier_name(s) || s == "SSQ_CELL_TRANSITION";
}

bool is_marker_stmt(const Stmt &s) {
  return s.kind == Stmt::Kind::Plain && !s.toks.empty() &&
         is_marker_name(s.toks[0].text);
}
bool is_justifier_stmt(const Stmt &s) {
  return s.kind == Stmt::Kind::Plain && !s.toks.empty() &&
         is_justifier_name(s.toks[0].text);
}
bool is_transition_stmt(const Stmt &s) {
  return s.kind == Stmt::Kind::Plain && !s.toks.empty() &&
         s.toks[0].text == "SSQ_CELL_TRANSITION";
}

bool contains_name(const Stmt &s, bool (*pred)(const std::string &)) {
  for (const Token &t : s.toks)
    if (t.kind == Token::Kind::Ident && pred(t.text)) return true;
  for (const Token &t : s.cond)
    if (t.kind == Token::Kind::Ident && pred(t.text)) return true;
  return false;
}

int last_line(const Stmt &s) {
  int l = s.line;
  for (const Token &t : s.toks) l = std::max(l, t.line);
  for (const Token &t : s.cond) l = std::max(l, t.line);
  return l;
}

// Statement-extent coverage within a sibling list: does any marker
// satisfying `stmt_pred` (as a standalone marker statement) or `name_pred`
// (as a token inside the statement itself) cover list[i]?
bool covered_by_marker(const std::vector<Stmt> &list, std::size_t i,
                       bool (*stmt_pred)(const Stmt &),
                       bool (*name_pred)(const std::string &)) {
  if (contains_name(list[i], name_pred)) return true;
  // Preceding consecutive run of marker statements.
  for (std::size_t j = i; j > 0 && is_marker_stmt(list[j - 1]); --j)
    if (stmt_pred(list[j - 1])) return true;
  // Following markers that share the statement's last line (clang-format
  // keeps a trailing marker on the line of the operation it annotates).
  int ll = last_line(list[i]);
  for (std::size_t j = i + 1;
       j < list.size() && is_marker_stmt(list[j]) && list[j].line == ll; ++j)
    if (stmt_pred(list[j])) return true;
  return false;
}

struct MoCheck {
  const FileModel &M;
  bool sup_unjust, sup_control;
  std::vector<Diagnostic> &diags;
  std::set<std::string> seen; // line+check dedupe

  void scan_ops(const std::vector<Token> &toks, bool justified, bool in_cond) {
    for (std::size_t k = 0; k < toks.size();) {
      std::size_t len = 1;
      std::string order = mo_spelling(toks, k, &len);
      if (order.empty() || order == "seq_cst" || justified) {
        k += len;
        continue;
      }
      int line = toks[k].line;
      k += len;
      bool control = in_cond && order == "relaxed";
      const char *check = control ? "mo-relaxed-control" : "mo-unjustified";
      if (control ? sup_control : sup_unjust) continue;
      std::string key = std::to_string(line) + check;
      if (!seen.insert(key).second) continue;
      diags.push_back({basename_of(M.path), line, check,
                       control
                           ? "unjustified memory_order_relaxed load feeding a "
                             "branch condition"
                           : std::string("non-seq_cst atomic operation (") +
                                 order + ") without SSQ_MO_JUSTIFIED"});
    }
  }

  void walk(const std::vector<Stmt> &list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Stmt &s = list[i];
      bool justified =
          covered_by_marker(list, i, is_justifier_stmt, is_justifier_name);
      scan_ops(s.toks, justified, false);
      scan_ops(s.cond, justified, s.kind == Stmt::Kind::If ||
                                      s.kind == Stmt::Kind::Loop);
      walk(s.body);
      walk(s.else_body);
    }
  }
};

// --------------------------------------------------------- cell-state check

// The legal edges of the waiter-cell state machine
// (core/segment_queue.hpp). `cell_resv` stands for any installed
// seg_select_wait* reservation pointer; the marker names it symbolically.
const std::pair<const char *, const char *> kLegalCellEdges[] = {
    {"cell_empty", "cell_waiter"},    {"cell_empty", "cell_async"},
    {"cell_empty", "cell_resv"},      {"cell_empty", "cell_poisoned"},
    {"cell_waiter", "cell_matched"},  {"cell_waiter", "cell_poisoned"},
    {"cell_async", "cell_matched"},   {"cell_resv", "cell_claimed"},
    {"cell_resv", "cell_poisoned"},   {"cell_claimed", "cell_matched"},
    {"cell_claimed", "cell_poisoned"},
};

bool legal_cell_edge(const CellTransition &t) {
  for (const auto &e : kLegalCellEdges)
    if (t.from == e.first && t.to == e.second) return true;
  return false;
}

// Member calls on a cell-state field that write it. Loads are free; every
// write must declare which protocol edge it takes.
bool is_state_mutator(const std::string &s) {
  return s == "store" || s == "exchange" || s == "compare_exchange_strong" ||
         s == "compare_exchange_weak" || s == "fetch_or" || s == "fetch_and" ||
         s == "fetch_add" || s == "fetch_sub";
}

bool is_transition_name(const std::string &s) {
  return s == "SSQ_CELL_TRANSITION";
}

// A mutation is covered by an SSQ_CELL_TRANSITION marker matched by
// statement extent (covered_by_marker): inside the mutating statement, in
// the run of marker statements immediately preceding it (markers stack, one
// per edge a single CAS can take), or trailing it on its last line. This
// replaces the former fixed 3-line window, which both missed markers above
// multi-line operations and accepted markers that merely happened to sit
// nearby.
struct CellCheck {
  const FileModel &M;
  std::vector<Diagnostic> &diags;
  std::set<int> seen; // line dedupe

  void scan_mutations(const std::vector<Token> &toks, bool covered) {
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
      if (!is_id(toks[k]) || !M.cell_state_fields.count(toks[k].text))
        continue;
      if (!tok_is(toks[k + 1], ".")) continue;
      if (!is_id(toks[k + 2]) || !is_state_mutator(toks[k + 2].text)) continue;
      if (covered) continue;
      int line = toks[k].line;
      if (!seen.insert(line).second) continue;
      diags.push_back({basename_of(M.path), line, "cell-state",
                       "mutation of cell-state field '" + toks[k].text +
                           "' without an SSQ_CELL_TRANSITION marker"});
    }
  }

  void walk(const std::vector<Stmt> &list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Stmt &s = list[i];
      bool covered =
          covered_by_marker(list, i, is_transition_stmt, is_transition_name);
      scan_mutations(s.toks, covered);
      scan_mutations(s.cond, covered);
      walk(s.body);
      walk(s.else_body);
    }
  }
};

// --------------------------------------------------------- mo-pairing check

// One atomic operation recovered from a token stream: FIELD . METHOD ( ...
// [order] ... ) or std::atomic_thread_fence(order). The order defaults to
// seq_cst when no explicit argument is spelled; for compare_exchange the
// first (success) order is taken.
struct AtomicOp {
  std::string field, method, order;
  int line = 0;
  bool is_load = false, is_store = false, is_rmw = false, is_fence = false;
};

bool is_atomic_method(const std::string &s) {
  return s == "load" || s == "store" || s == "exchange" ||
         s == "compare_exchange_strong" || s == "compare_exchange_weak" ||
         s == "fetch_add" || s == "fetch_sub" || s == "fetch_or" ||
         s == "fetch_and" || s == "fetch_xor";
}

void extract_ops(const std::vector<Token> &toks, std::vector<AtomicOp> &out) {
  for (std::size_t k = 0; k < toks.size(); ++k) {
    AtomicOp op;
    std::size_t open;
    if (is_id(toks[k]) && toks[k].text == "atomic_thread_fence" &&
        k + 1 < toks.size() && tok_is(toks[k + 1], "(")) {
      op.field = "<fence>";
      op.method = "atomic_thread_fence";
      op.is_fence = true;
      op.line = toks[k].line;
      open = k + 1;
    } else if (k + 3 < toks.size() && is_id(toks[k]) &&
               tok_is(toks[k + 1], ".") && is_id(toks[k + 2]) &&
               is_atomic_method(toks[k + 2].text) &&
               tok_is(toks[k + 3], "(")) {
      op.field = toks[k].text;
      op.method = toks[k + 2].text;
      op.is_load = op.method == "load";
      op.is_store = op.method == "store";
      op.is_rmw = !op.is_load && !op.is_store;
      op.line = toks[k].line;
      open = k + 3;
    } else {
      continue;
    }
    // Scan the balanced argument list for the first order spelling.
    int depth = 0;
    op.order = "seq_cst";
    std::size_t j = open;
    for (; j < toks.size(); ++j) {
      if (tok_is(toks[j], "(")) { ++depth; continue; }
      if (tok_is(toks[j], ")") && --depth == 0) break;
      std::size_t len = 1;
      std::string o = mo_spelling(toks, j, &len);
      if (!o.empty()) {
        op.order = o;
        break;
      }
    }
    out.push_back(std::move(op));
    k = open; // continue after the opener; nested ops still found
  }
}

// Edge markers recovered from a token stream (statement-inline form).
void extract_edges(const std::vector<Token> &toks, std::vector<MoEdge> &out) {
  for (std::size_t k = 0; k + 3 < toks.size(); ++k) {
    if (!is_id(toks[k])) continue;
    MoEdge::Kind kind;
    if (toks[k].text == "SSQ_MO_RELEASE_EDGE") kind = MoEdge::Kind::Release;
    else if (toks[k].text == "SSQ_MO_ACQUIRE_EDGE") kind = MoEdge::Kind::Acquire;
    else if (toks[k].text == "SSQ_MO_FENCE_EDGE") kind = MoEdge::Kind::Fence;
    else continue;
    if (!tok_is(toks[k + 1], "(") ||
        toks[k + 2].kind != Token::Kind::String || !tok_is(toks[k + 3], ")"))
      continue;
    std::string label = toks[k + 2].text;
    if (label.size() >= 2) label = label.substr(1, label.size() - 2);
    out.push_back({toks[k].line, kind, label});
  }
}

const char *edge_kind_name(MoEdge::Kind k) {
  switch (k) {
    case MoEdge::Kind::Release: return "release";
    case MoEdge::Kind::Acquire: return "acquire";
    default: return "fence";
  }
}

// An edge marker bound to the atomic operation it annotates.
struct BoundEdge {
  MoEdge edge;
  AtomicOp op;
  const Function *fn = nullptr;
};

// Cross-site release/acquire pairing analysis. Walks every (non-ctor)
// function, binds each SSQ_MO_*_EDGE marker to the first kind-compatible
// atomic operation of the statement it covers (statement-extent rules,
// same as justification), then checks the per-label edge table:
//   * binding failures: a marker covering no statement, or a statement with
//     no operation the edge kind can attach to;
//   * order sanity at each end (release in {release,acq_rel,seq_cst},
//     acquire in {acquire,acq_rel,seq_cst}), with relaxed RMWs on a labeled
//     edge called out specifically;
//   * an acquire end with no same-label release or fence partner;
//   * non-fence ends of one label naming different fields;
//   * relaxed re-reads of any field some release edge publishes, outside
//     statements covered by a justifier marker.
struct MoPairing {
  const FileModel &M;
  const std::vector<Suppression> &sups;
  std::vector<Diagnostic> &diags;

  std::vector<BoundEdge> bound;
  std::set<std::string> published; // fields with a bound release-store end
  std::set<std::string> seen;      // line|message dedupe

  const Function *fn = nullptr; // function being walked
  bool sup = false;             // mo-pairing suppressed for that function

  void report(int line, const std::string &msg) {
    if (sup) return;
    if (!seen.insert(std::to_string(line) + "|" + msg).second) return;
    diags.push_back({basename_of(M.path), line, "mo-pairing", msg});
  }

  static bool release_order_ok(const std::string &o) {
    return o == "release" || o == "acq_rel" || o == "seq_cst";
  }
  static bool acquire_order_ok(const std::string &o) {
    return o == "acquire" || o == "acq_rel" || o == "seq_cst";
  }

  void bind(const MoEdge &e, const Stmt &target) {
    std::vector<AtomicOp> ops;
    extract_ops(target.cond, ops);
    extract_ops(target.toks, ops);
    const AtomicOp *hit = nullptr;
    for (const AtomicOp &op : ops) {
      bool compatible = e.kind == MoEdge::Kind::Fence
                            ? op.is_fence
                            : (e.kind == MoEdge::Kind::Release
                                   ? (op.is_store || op.is_rmw)
                                   : (op.is_load || op.is_rmw));
      if (compatible) {
        hit = &op;
        break;
      }
    }
    if (!hit) {
      report(e.line, std::string(edge_kind_name(e.kind)) + " edge '" +
                         e.label + "' binds to no " +
                         (e.kind == MoEdge::Kind::Fence
                              ? "atomic_thread_fence"
                              : (e.kind == MoEdge::Kind::Release
                                     ? "store/RMW"
                                     : "load/RMW")) +
                         " in the statement it covers");
      return;
    }
    // Order sanity at this end.
    if (hit->order == "relaxed" && hit->is_rmw) {
      report(hit->line, "relaxed RMW " + hit->field + "." + hit->method +
                            " participates in labeled edge '" + e.label +
                            "'");
    } else if (e.kind == MoEdge::Kind::Release &&
               !release_order_ok(hit->order)) {
      report(hit->line, "release edge '" + e.label + "' bound to a " +
                            hit->order + " " + hit->method + " of '" +
                            hit->field + "'");
    } else if (e.kind == MoEdge::Kind::Acquire &&
               !acquire_order_ok(hit->order)) {
      report(hit->line, "acquire edge '" + e.label + "' bound to a " +
                            hit->order + " " + hit->method + " of '" +
                            hit->field + "'");
    }
    if (e.kind == MoEdge::Kind::Release && !hit->is_fence)
      published.insert(hit->field);
    bound.push_back({e, *hit, fn});
  }

  // The statement a marker run covers: the previous sibling when the run
  // trails on its last line, otherwise the next non-marker sibling.
  void walk(const std::vector<Stmt> &list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Stmt &s = list[i];
      if (is_marker_stmt(s)) {
        std::vector<MoEdge> here;
        extract_edges(s.toks, here);
        if (!here.empty()) {
          const Stmt *target = nullptr;
          if (i > 0 && !is_marker_stmt(list[i - 1]) &&
              s.line == last_line(list[i - 1]))
            target = &list[i - 1];
          for (std::size_t j = i + 1; !target && j < list.size(); ++j)
            if (!is_marker_stmt(list[j])) target = &list[j];
          for (const MoEdge &e : here) {
            if (target) bind(e, *target);
            else
              report(e.line, std::string(edge_kind_name(e.kind)) + " edge '" +
                                 e.label + "' covers no statement");
          }
        }
      } else {
        // Statement-inline markers (markers inside lambda bodies or
        // conditions swallowed into one statement) bind to that statement.
        std::vector<MoEdge> inline_edges;
        extract_edges(s.toks, inline_edges);
        extract_edges(s.cond, inline_edges);
        for (const MoEdge &e : inline_edges) bind(e, s);
      }
      walk(s.body);
      walk(s.else_body);
    }
  }

  // Relaxed re-read scan: any relaxed load of a published field outside a
  // justifier-covered statement. Runs after every edge is bound.
  void scan_rereads(const std::vector<Stmt> &list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      const Stmt &s = list[i];
      if (!covered_by_marker(list, i, is_justifier_stmt, is_justifier_name)) {
        std::vector<AtomicOp> ops;
        extract_ops(s.cond, ops);
        extract_ops(s.toks, ops);
        for (const AtomicOp &op : ops)
          if (op.is_load && op.order == "relaxed" && published.count(op.field))
            report(op.line, "field '" + op.field +
                                "' published by a release edge is re-read "
                                "relaxed without an acquire edge or "
                                "SSQ_MO_JUSTIFIED");
      }
      scan_rereads(s.body);
      scan_rereads(s.else_body);
    }
  }

  void run() {
    for (const Function &f : M.functions) {
      if (f.is_ctor_dtor) continue;
      fn = &f;
      sup = suppressed(f, sups, "mo-pairing");
      walk(f.body);
    }
    // Per-label table checks.
    std::map<std::string, std::vector<const BoundEdge *>> by_label;
    for (const BoundEdge &b : bound) by_label[b.edge.label].push_back(&b);
    for (const auto &kv : by_label) {
      const auto &ends = kv.second;
      bool has_release_side = false;
      for (const BoundEdge *b : ends)
        if (b->edge.kind != MoEdge::Kind::Acquire) has_release_side = true;
      const BoundEdge *first_field_end = nullptr;
      for (const BoundEdge *b : ends) {
        fn = b->fn;
        sup = b->fn && suppressed(*b->fn, sups, "mo-pairing");
        if (b->edge.kind == MoEdge::Kind::Acquire && !has_release_side)
          report(b->edge.line, "acquire edge '" + kv.first + "' on field '" +
                                   b->op.field +
                                   "' has no release or fence partner");
        if (b->edge.kind == MoEdge::Kind::Fence) continue;
        if (!first_field_end) {
          first_field_end = b;
        } else if (b->op.field != first_field_end->op.field) {
          report(b->edge.line, "edge '" + kv.first +
                                   "' ends disagree on field ('" +
                                   first_field_end->op.field + "' at line " +
                                   std::to_string(first_field_end->op.line) +
                                   " vs '" + b->op.field + "')");
        }
      }
    }
    // Re-read pass.
    for (const Function &f : M.functions) {
      if (f.is_ctor_dtor) continue;
      fn = &f;
      sup = suppressed(f, sups, "mo-pairing");
      scan_rereads(f.body);
    }
  }
};

} // namespace

std::vector<Diagnostic> run_checks(const FileModel &model) {
  FileModel m = model; // derive() mutates param/function metadata
  std::map<std::string, Function *> by_name;
  std::map<const Function *, DerivedFn> dv;
  derive(m, by_name, dv);

  std::vector<Diagnostic> diags;
  std::vector<Suppression> sups = parse_suppressions(m, diags);

  for (const Function &f : m.functions) {
    if (f.is_ctor_dtor) continue; // construction/teardown is single-threaded

    // Checks 1+2: custody.
    if (!m.guarded_fields.empty()) {
      std::set<std::string> dd;
      CustodySim sim(m, f, by_name, dv, diags, dd,
                     suppressed(f, sups, "hazard-coverage"),
                     suppressed(f, sups, "reread-after-drop"));
      sim.simulate(f.body);
    }

    // Check 3: park episodes. Runs on functions that call prepare() (or are
    // annotated); others rely on spin_then_park's documented postcondition.
    {
      std::vector<Token> flat;
      all_tokens(f.body, flat);
      bool calls_prepare = false;
      for (std::size_t k = 2; k < flat.size(); ++k)
        if (is_id(flat[k]) && flat[k].text == "prepare" &&
            tok_is(flat[k - 1], ".") && k + 1 < flat.size() &&
            tok_is(flat[k + 1], "("))
          calls_prepare = true;
      if ((calls_prepare || f.requires_episode_reset) &&
          !suppressed(f, sups, "park-episode")) {
        ParkSim ps(m, f, diags);
        ps.simulate(f.body);
      }
    }

    // Check 4: memory orders.
    {
      MoCheck mo{m, suppressed(f, sups, "mo-unjustified"),
                 suppressed(f, sups, "mo-relaxed-control"), diags, {}};
      mo.walk(f.body);
    }

    // Check 5: cell-state discipline (only meaningful for files declaring an
    // SSQ_CELL_STATE_FIELD; ctors/dtors were skipped above with the rest).
    if (!m.cell_state_fields.empty() && !suppressed(f, sups, "cell-state")) {
      CellCheck cc{m, diags, {}};
      cc.walk(f.body);
    }
  }

  // Check 6: release/acquire pairing over the labeled edge table.
  {
    MoPairing mp{m, sups, diags, {}, {}, {}, nullptr, false};
    mp.run();
  }

  // Every marker must name a legal protocol edge and the mo-pairing edge
  // that orders it, wherever it appears.
  std::set<std::string> edge_labels;
  for (const MoEdge &e : m.mo_edges) edge_labels.insert(e.label);
  for (const CellTransition &t : m.cell_transitions) {
    bool sup = false;
    for (const Function &f : m.functions)
      if (t.line >= f.line && t.line <= f.end_line &&
          suppressed(f, sups, "cell-state"))
        sup = true;
    if (sup) continue;
    if (!legal_cell_edge(t)) {
      diags.push_back({basename_of(m.path), t.line, "cell-state",
                       "illegal cell-state transition " + t.from + " -> " +
                           t.to});
      continue;
    }
    if (t.edge.empty()) {
      diags.push_back({basename_of(m.path), t.line, "cell-state",
                       "transition " + t.from + " -> " + t.to +
                           " does not name the ordering edge that publishes "
                           "it (third SSQ_CELL_TRANSITION argument)"});
    } else if (!edge_labels.count(t.edge)) {
      diags.push_back({basename_of(m.path), t.line, "cell-state",
                       "transition " + t.from + " -> " + t.to +
                           " names ordering edge '" + t.edge +
                           "' but no SSQ_MO_*_EDGE in this file declares "
                           "it"});
    }
  }

  std::sort(diags.begin(), diags.end());
  return diags;
}

} // namespace ssqlint
