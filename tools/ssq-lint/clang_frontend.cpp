// Optional LibTooling cross-check frontend (built with SSQ_LINT_WITH_CLANG).
//
// The portable token frontend is authoritative for the protocol checks: it
// runs everywhere, including build hosts with no Clang installed, and the
// ctest fixtures pin its behavior. What it cannot prove is that its lexical
// recovery of the annotation vocabulary matches what the real compiler sees
// -- a misplaced macro that the token scanner happens to pick up but that
// appertains to nothing in the AST (or vice versa) would silently weaken the
// checks. This frontend drives the real Clang parser via
// compile_commands.json and cross-checks per file:
//
//   * the translation unit must parse (diagnostic `clang-parse` otherwise --
//     a file the compiler rejects makes the token model meaningless);
//   * the multiset of [[clang::annotate("ssq::...")]] attributes in the
//     main file's AST must agree in count, per kind, with the annotations
//     the portable frontend recovered (diagnostic `frontend-drift`).
//
// Kept deliberately conservative: it consumes only long-stable LibTooling
// API (ClangTool, RecursiveASTVisitor, AnnotateAttr) so it builds against
// LLVM 14 through current releases.
#ifdef SSQ_LINT_WITH_CLANG

#include "lint.hpp"

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/Attr.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ssqlint {
namespace {

struct AnnoCounts {
  int guarded = 0;
  int acquires = 0;
  int releases = 0;
  int returns_unprotected = 0;
  int episode = 0;
  int cell_state = 0;
  int release_edge = 0;
  int acquire_edge = 0;
  int fence_edge = 0;
  int cell_transition = 0;
};

class AnnoVisitor : public clang::RecursiveASTVisitor<AnnoVisitor> {
 public:
  AnnoVisitor(clang::SourceManager &sm, AnnoCounts &counts)
      : sm_(sm), counts_(counts) {}

  bool VisitDecl(clang::Decl *d) {
    if (!d->hasAttrs()) return true;
    if (!sm_.isWrittenInMainFile(d->getLocation())) return true;
    for (const clang::Attr *attr : d->attrs()) {
      const auto *ann = llvm::dyn_cast<clang::AnnotateAttr>(attr);
      if (!ann) continue;
      llvm::StringRef a = ann->getAnnotation();
      if (a.startswith("ssq::guarded_by_hazard"))
        ++counts_.guarded;
      else if (a == "ssq::acquires_hazard")
        ++counts_.acquires;
      else if (a == "ssq::releases_hazard")
        ++counts_.releases;
      else if (a == "ssq::returns_unprotected")
        ++counts_.returns_unprotected;
      else if (a == "ssq::requires_episode_reset")
        ++counts_.episode;
      else if (a == "ssq::cell_state_field")
        ++counts_.cell_state;
    }
    return true;
  }

  // The statement-position markers (SSQ_MO_*_EDGE, SSQ_CELL_TRANSITION)
  // expand to static_asserts whose messages embed the macro name
  // (annotations.hpp documents this contract), so they are recountable off
  // StaticAssertDecl nodes. getExpansionLoc maps a marker reached through a
  // helper macro back to its use site in the main file -- the same place
  // the token frontend records it after its own macro expansion.
  bool VisitStaticAssertDecl(clang::StaticAssertDecl *d) {
    if (!sm_.isWrittenInMainFile(sm_.getExpansionLoc(d->getLocation())))
      return true;
    const auto *msg =
        llvm::dyn_cast_or_null<clang::StringLiteral>(d->getMessage());
    if (!msg) return true;
    llvm::StringRef s = msg->getString();
    if (s.contains("SSQ_MO_RELEASE_EDGE"))
      ++counts_.release_edge;
    else if (s.contains("SSQ_MO_ACQUIRE_EDGE"))
      ++counts_.acquire_edge;
    else if (s.contains("SSQ_MO_FENCE_EDGE"))
      ++counts_.fence_edge;
    else if (s.contains("SSQ_CELL_TRANSITION"))
      ++counts_.cell_transition;
    return true;
  }

 private:
  clang::SourceManager &sm_;
  AnnoCounts &counts_;
};

class AnnoConsumer : public clang::ASTConsumer {
 public:
  AnnoConsumer(clang::SourceManager &sm, AnnoCounts &counts)
      : sm_(sm), counts_(counts) {}
  void HandleTranslationUnit(clang::ASTContext &ctx) override {
    AnnoVisitor v(sm_, counts_);
    v.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  clang::SourceManager &sm_;
  AnnoCounts &counts_;
};

// One action per file; writes the counts into the shared per-file map.
class AnnoAction : public clang::ASTFrontendAction {
 public:
  explicit AnnoAction(std::map<std::string, AnnoCounts> &by_file)
      : by_file_(by_file) {}

  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance &ci, llvm::StringRef file) override {
    return std::make_unique<AnnoConsumer>(ci.getSourceManager(),
                                          by_file_[file.str()]);
  }

 private:
  std::map<std::string, AnnoCounts> &by_file_;
};

class AnnoActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  explicit AnnoActionFactory(std::map<std::string, AnnoCounts> &by_file)
      : by_file_(by_file) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<AnnoAction>(by_file_);
  }

 private:
  std::map<std::string, AnnoCounts> &by_file_;
};

std::string basename_of(const std::string &path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

// What the portable frontend recovered, recomputed from the same source so
// the comparison is self-contained.
AnnoCounts token_counts(const std::string &path) {
  AnnoCounts c;
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  FileModel m = build_model(path, ss.str());
  for (const Function &f : m.functions) {
    if (f.acquires_hazard) ++c.acquires;
    if (f.releases_hazard) ++c.releases;
    if (f.returns_unprotected) ++c.returns_unprotected;
    if (f.requires_episode_reset) ++c.episode;
  }
  c.guarded = static_cast<int>(m.guarded_fields.size());
  c.cell_state = static_cast<int>(m.cell_state_fields.size());
  for (const MoEdge &e : m.mo_edges) {
    if (e.kind == MoEdge::Kind::Release) ++c.release_edge;
    else if (e.kind == MoEdge::Kind::Acquire) ++c.acquire_edge;
    else ++c.fence_edge;
  }
  c.cell_transition = static_cast<int>(m.cell_transitions.size());
  return c;
}

void compare(const std::string &file, const char *kind, int clang_n,
             int token_n, std::vector<Diagnostic> &out) {
  if (clang_n == token_n) return;
  out.push_back({basename_of(file), 1, "frontend-drift",
                 std::string(kind) + " annotation count differs between the "
                 "Clang AST (" + std::to_string(clang_n) +
                 ") and the portable frontend (" + std::to_string(token_n) +
                 ")"});
}

} // namespace

std::vector<Diagnostic> clang_cross_check(
    const std::vector<std::string> &files, const std::string &compile_db_dir) {
  std::vector<Diagnostic> out;

  std::unique_ptr<clang::tooling::CompilationDatabase> db;
  std::string err;
  if (!compile_db_dir.empty())
    db = clang::tooling::CompilationDatabase::loadFromDirectory(compile_db_dir,
                                                                err);
  if (!db) {
    // Headers are not TUs in the database; a fixed fallback command is
    // enough for the cross-check (annotations live in the main file).
    db = std::make_unique<clang::tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20", "-xc++", "-Isrc",
                                      "-fsyntax-only"});
  }

  std::map<std::string, AnnoCounts> by_file;
  clang::tooling::ClangTool tool(*db, files);
  AnnoActionFactory factory(by_file);
  if (tool.run(&factory) != 0)
    out.push_back({"<clang>", 1, "clang-parse",
                   "one or more files failed to parse under Clang; see the "
                   "compiler output above"});

  for (const std::string &f : files) {
    AnnoCounts clang_c;
    for (const auto &kv : by_file)
      if (basename_of(kv.first) == basename_of(f)) clang_c = kv.second;
    AnnoCounts token_c = token_counts(f);
    compare(f, "guarded-field", clang_c.guarded, token_c.guarded, out);
    compare(f, "acquires-hazard", clang_c.acquires, token_c.acquires, out);
    compare(f, "releases-hazard", clang_c.releases, token_c.releases, out);
    compare(f, "returns-unprotected", clang_c.returns_unprotected,
            token_c.returns_unprotected, out);
    compare(f, "episode-reset", clang_c.episode, token_c.episode, out);
    compare(f, "cell-state-field", clang_c.cell_state, token_c.cell_state,
            out);
    compare(f, "release-edge", clang_c.release_edge, token_c.release_edge,
            out);
    compare(f, "acquire-edge", clang_c.acquire_edge, token_c.acquire_edge,
            out);
    compare(f, "fence-edge", clang_c.fence_edge, token_c.fence_edge, out);
    compare(f, "cell-transition", clang_c.cell_transition,
            token_c.cell_transition, out);
  }
  return out;
}

} // namespace ssqlint

#endif // SSQ_LINT_WITH_CLANG
