// Tokenizer for the portable ssq-lint frontend. Deliberately small: it only
// has to be faithful enough to recover identifiers, punctuation, statement
// boundaries, and comments from clang-format-clean C++ -- the files it runs
// on are this repository's own.
#include "lint.hpp"

#include <cctype>

namespace ssqlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators we keep whole; everything else is one char.
// Order matters: longest match first.
const char *kPuncts[] = {"->", "::", "&&", "||", "==", "!=", "<=", ">="};

} // namespace

LexedFile lex(const std::string &src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments -> side table.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({src.substr(start, i - start), line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back({src.substr(start, i - start), start_line});
      continue;
    }
    // Preprocessor: drop the whole (possibly continued) line, except that
    // we keep nothing -- annotations are macros that appear in code, not
    // directives.
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // String / char literals (no raw strings in the linted tree).
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({quote == '"' ? Token::Kind::String
                                         : Token::Kind::Char,
                            src.substr(start, i - start), line});
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i++;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {Token::Kind::Ident, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i++;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\''))
        ++i;
      out.tokens.push_back(
          {Token::Kind::Number, src.substr(start, i - start), line});
      continue;
    }
    bool matched = false;
    for (const char *p : kPuncts) {
      if (c == p[0] && peek(1) == p[1]) {
        out.tokens.push_back({Token::Kind::Punct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  out.tokens.push_back({Token::Kind::Eof, "", line});
  return out;
}

} // namespace ssqlint
