// Tokenizer for the portable ssq-lint frontend. Deliberately small: it only
// has to be faithful enough to recover identifiers, punctuation, statement
// boundaries, and comments from clang-format-clean C++ -- the files it runs
// on are this repository's own.
#include "lint.hpp"

#include <cctype>

namespace ssqlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators we keep whole; everything else is one char.
// Order matters: longest match first.
const char *kPuncts[] = {"->", "::", "&&", "||", "==", "!=", "<=", ">="};

} // namespace

LexedFile lex(const std::string &src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments -> side table.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({src.substr(start, i - start), line});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      std::size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back({src.substr(start, i - start), start_line});
      continue;
    }
    // Preprocessor: collect the whole (possibly continued) logical line.
    // `#define` bodies are captured as MacroDefs so helper-macro-wrapped
    // annotations and atomic operations stay visible to the checks; every
    // other directive is dropped.
    if (c == '#') {
      int start_line = line;
      std::string text;
      ++i; // '#'
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          text.push_back(' ');
          continue;
        }
        text.push_back(src[i]);
        ++i;
      }
      std::size_t p = text.find_first_not_of(" \t");
      if (p != std::string::npos && text.compare(p, 6, "define") == 0 &&
          p + 6 < text.size() &&
          std::isspace(static_cast<unsigned char>(text[p + 6]))) {
        p = text.find_first_not_of(" \t", p + 6);
        if (p != std::string::npos && ident_start(text[p])) {
          MacroDef def;
          std::size_t q = p;
          while (q < text.size() && ident_char(text[q])) ++q;
          def.name = text.substr(p, q - p);
          // A '(' with no intervening space makes it function-like.
          if (q < text.size() && text[q] == '(') {
            def.function_like = true;
            ++q;
            std::string param;
            while (q < text.size() && text[q] != ')') {
              if (text[q] == ',') {
                if (!param.empty()) def.params.push_back(param);
                param.clear();
              } else if (!std::isspace(static_cast<unsigned char>(text[q]))) {
                param.push_back(text[q]);
              }
              ++q;
            }
            if (!param.empty()) def.params.push_back(param);
            if (q < text.size()) ++q; // ')'
          }
          // Lex the body with this same lexer; re-stamp the directive line.
          LexedFile body = lex(text.substr(q));
          for (Token &bt : body.tokens) {
            if (bt.kind == Token::Kind::Eof) continue;
            bt.line = start_line;
            def.body.push_back(bt);
          }
          out.defines.push_back(std::move(def));
        }
      }
      continue;
    }
    // String / char literals (no raw strings in the linted tree).
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t start = i++;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({quote == '"' ? Token::Kind::String
                                         : Token::Kind::Char,
                            src.substr(start, i - start), line});
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i++;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {Token::Kind::Ident, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i++;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\''))
        ++i;
      out.tokens.push_back(
          {Token::Kind::Number, src.substr(start, i - start), line});
      continue;
    }
    bool matched = false;
    for (const char *p : kPuncts) {
      if (c == p[0] && peek(1) == p[1]) {
        out.tokens.push_back({Token::Kind::Punct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  out.tokens.push_back({Token::Kind::Eof, "", line});
  return out;
}

} // namespace ssqlint
