// ssq-lint: a protocol checker for this repository's hazard-pointer and
// park-episode disciplines plus memory-order hygiene.
//
// Architecture (docs/static_analysis.md):
//
//   source file --(frontend)--> FileModel --(checks.cpp)--> Diagnostics
//
// Two frontends build the same FileModel:
//   * parse.cpp  -- the portable frontend: a C++ tokenizer plus a
//     statement-structure parser specialized to this codebase's idioms.
//     Builds anywhere, is what ctest runs, and what CI gates on.
//   * clang_frontend.cpp -- the LibTooling frontend (SSQ_LINT_WITH_CLANG),
//     driven off compile_commands.json; reads the [[clang::annotate]]
//     attributes emitted by src/support/annotations.hpp.
//
// The checks (check ids are stable; fixtures and suppressions name them):
//   hazard-coverage        deref of a pointer loaded from an
//                          SSQ_GUARDED_BY_HAZARD field without a covering
//                          hazard slot
//   reread-after-drop      deref of a pointer whose covering slot has been
//                          re-pointed or cleared since it was protected
//   park-episode           a path that can leave a prepared park_slot armed
//   mo-unjustified         non-seq_cst atomic op without SSQ_MO_JUSTIFIED
//                          (or a labeled SSQ_MO_*_EDGE marker, which also
//                          justifies)
//   mo-relaxed-control     unjustified memory_order_relaxed load feeding a
//                          branch condition (reported instead of
//                          mo-unjustified for that op)
//   mo-pairing             labeled release/acquire edge analysis over the
//                          per-atomic-field edge table: an acquire end with
//                          no same-label release/fence partner, two ends of
//                          one label on different fields, a relaxed RMW on
//                          a labeled edge, an edge marker binding to no
//                          atomic operation (or one of the wrong shape),
//                          and relaxed re-reads of a field some release
//                          edge publishes
//   cell-state             mutation of an SSQ_CELL_STATE_FIELD without an
//                          adjacent SSQ_CELL_TRANSITION marker, a marker
//                          naming an edge outside the legal cell protocol
//                          (core/segment_queue.hpp's state machine), or a
//                          transition that does not name the declared
//                          mo-pairing edge ordering it
//   bad-suppression        a suppression comment with no justification or
//                          an unknown check name
//
// Marker adjacency is statement-extent based: a marker covers the statement
// it appears in, the next non-marker sibling statement after a consecutive
// run of markers, or the previous sibling when the marker shares its last
// source line. Annotations and atomic operations reached through in-file
// helper-macro expansion (#define bodies) are expanded by the token
// frontend, one level deep per pass, before parsing.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ssqlint {

// ------------------------------------------------------------------ tokens

struct Token {
  enum class Kind { Ident, Punct, Number, String, Char, Eof };
  Kind kind;
  std::string text;
  int line;
};

// Comment stripped out of the token stream but kept for suppressions.
struct Comment {
  std::string text;
  int line; // line the comment starts on
};

// An in-file `#define`, captured so annotations and atomic operations
// wrapped in helper macros are not silently invisible to the checks. Only
// the shapes this tree uses are modeled: object-like and function-like
// macros whose bodies are ordinary token sequences (no stringize/paste).
struct MacroDef {
  std::string name;
  bool function_like = false;
  std::vector<std::string> params;
  std::vector<Token> body; // token lines = directive line
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<MacroDef> defines;
};

// Tokenize C++ source. Comments are removed from the token stream but
// retained separately; preprocessor directives are removed too, except that
// `#define` bodies are captured into `defines` so the parser can expand
// in-file helper macros. `->`, `::`, `&&`, `||`, `==`, `!=`, `<=`, `>=`
// are single tokens, all other punctuation is one char per token.
LexedFile lex(const std::string &src);

// ------------------------------------------------------------------- model

struct Stmt {
  enum class Kind { Plain, Return, If, Loop, Block };
  Kind kind = Kind::Plain;
  int line = 0;
  std::vector<Token> cond;      // If/Loop: condition (For: full header)
  std::vector<Token> toks;      // Plain/Return: statement tokens (no ';')
  std::vector<Stmt> body;       // If: then-arm; Loop/Block: body
  std::vector<Stmt> else_body;  // If only
};

struct Param {
  std::string name;
  std::string type_hint; // last type identifier before the name
  bool is_ptr = false;   // declared with '*'
  bool is_ref = false;   // declared with '&'
  // Derived in checks.cpp once the whole model is built (node types may be
  // declared after the functions that use them):
  bool is_node_ptr = false;
  bool is_slot_ref = false;
  bool is_park_slot = false;
};

struct Function {
  std::string name;
  std::string class_name; // empty for free functions
  int line = 0;           // signature line
  int end_line = 0;
  bool is_ctor_dtor = false;
  bool acquires_hazard = false;
  bool releases_hazard = false;
  bool returns_unprotected = false;
  bool requires_episode_reset = false;
  bool returns_node_ptr = false;       // refined against node_types in checks
  std::string return_type_hint;        // last identifier of the return type
  std::vector<Param> params;
  std::vector<Stmt> body;

  // Derived (checks.cpp, summary pass): indices of params the function
  // dereferences, directly or through another in-file function.
  std::set<std::size_t> deref_params;
};

// One SSQ_CELL_TRANSITION(from, to, "edge") marker as written in source.
// `edge` is empty when the marker was written in the legacy two-argument
// form (itself a cell-state diagnostic).
struct CellTransition {
  int line = 0;
  std::string from, to;
  std::string edge;
};

// One SSQ_MO_RELEASE_EDGE / SSQ_MO_ACQUIRE_EDGE / SSQ_MO_FENCE_EDGE marker.
struct MoEdge {
  enum class Kind { Release, Acquire, Fence };
  int line = 0;
  Kind kind = Kind::Release;
  std::string label;
};

struct FileModel {
  std::string path;
  std::set<std::string> guarded_fields; // field names under GUARDED_BY_HAZARD
  std::set<std::string> node_types;     // structs owning a guarded field
  std::set<std::string> cell_state_fields; // fields under SSQ_CELL_STATE_FIELD
  std::vector<CellTransition> cell_transitions;
  std::vector<MoEdge> mo_edges;
  std::vector<Function> functions;
  std::vector<Comment> comments;
  std::set<int> mo_justified_lines; // lines holding an SSQ_MO_JUSTIFIED
};

// Portable frontend: build the model from raw source text.
FileModel build_model(const std::string &path, const std::string &src);

// ------------------------------------------------------------- diagnostics

struct Diagnostic {
  std::string file; // basename
  int line;
  std::string check;
  std::string message;

  bool operator<(const Diagnostic &o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return check < o.check;
  }
};

// Run every check over a model.
std::vector<Diagnostic> run_checks(const FileModel &model);

#ifdef SSQ_LINT_WITH_CLANG
// LibTooling frontend (clang_frontend.cpp): parse `files` with the real
// Clang via compile_commands.json in `compile_db_dir` (fixed fallback flags
// when empty/unloadable) and cross-check the AST's ssq:: annotate attributes
// against the portable frontend's recovery. Emits `clang-parse` and
// `frontend-drift` diagnostics.
std::vector<Diagnostic> clang_cross_check(
    const std::vector<std::string> &files, const std::string &compile_db_dir);
#endif

} // namespace ssqlint
