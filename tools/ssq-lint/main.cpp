// ssq-lint driver.
//
//   ssq-lint [options] <file>...
//
//   --expect=FILE   compare diagnostics against FILE (one `name:line:check`
//                   per line, `#` comments); exit 0 iff they match exactly.
//                   This is how the ctest fixtures assert behavior.
//   --check=NAME    report only diagnostics of check NAME (all checks still
//                   run; the filter applies to the output and exit status).
//   -p DIR          compile-commands directory (consumed by the LibTooling
//                   frontend when built with SSQ_LINT_WITH_CLANG; accepted
//                   and ignored by the portable frontend so both spellings
//                   work in CI).
//
// Output format: path:line: [check] message
#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Expected {
  std::string file;
  int line;
  std::string check;
  bool operator<(const Expected &o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    return check < o.check;
  }
  bool operator==(const Expected &o) const {
    return file == o.file && line == o.line && check == o.check;
  }
};

std::string basename_of(const std::string &path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

bool read_file(const std::string &path, std::string &out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<Expected> parse_expect(const std::string &text) {
  std::vector<Expected> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);
    auto c1 = line.find(':');
    auto c2 = line.find(':', c1 == std::string::npos ? c1 : c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      std::fprintf(stderr, "ssq-lint: bad expect line: %s\n", line.c_str());
      continue;
    }
    Expected e;
    e.file = line.substr(0, c1);
    e.line = std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str());
    e.check = line.substr(c2 + 1);
    out.push_back(e);
  }
  return out;
}

} // namespace

int main(int argc, char **argv) {
  std::string expect_path;
  std::string compile_db_dir;
  std::string check_filter;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--expect=", 0) == 0) {
      expect_path = a.substr(9);
    } else if (a.rfind("--check=", 0) == 0) {
      check_filter = a.substr(8);
    } else if (a == "-p") {
      if (i + 1 < argc) compile_db_dir = argv[++i];
    } else if (a == "--help" || a == "-h") {
      std::fprintf(stderr,
                   "usage: ssq-lint [--expect=FILE] [--check=NAME] [-p DIR] "
                   "<file>...\n");
      return 2;
    } else {
      files.push_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "ssq-lint: no input files\n");
    return 2;
  }

  std::vector<ssqlint::Diagnostic> diags;
  for (const std::string &f : files) {
    std::string src;
    if (!read_file(f, src)) {
      std::fprintf(stderr, "ssq-lint: cannot read %s\n", f.c_str());
      return 2;
    }
    ssqlint::FileModel model = ssqlint::build_model(f, src);
    auto d = ssqlint::run_checks(model);
    diags.insert(diags.end(), d.begin(), d.end());
  }
  if (!check_filter.empty())
    diags.erase(std::remove_if(diags.begin(), diags.end(),
                               [&](const ssqlint::Diagnostic &d) {
                                 return d.check != check_filter;
                               }),
                diags.end());
  std::sort(diags.begin(), diags.end());

  if (!expect_path.empty()) {
    std::string etext;
    if (!read_file(expect_path, etext)) {
      std::fprintf(stderr, "ssq-lint: cannot read %s\n", expect_path.c_str());
      return 2;
    }
    std::vector<Expected> want = parse_expect(etext);
    std::sort(want.begin(), want.end());
    std::vector<Expected> got;
    for (const auto &d : diags)
      got.push_back({basename_of(d.file), d.line, d.check});
    std::sort(got.begin(), got.end());
    bool ok = true;
    for (const auto &w : want)
      if (std::find(got.begin(), got.end(), w) == got.end()) {
        std::fprintf(stderr, "MISSING   %s:%d:%s\n", w.file.c_str(), w.line,
                     w.check.c_str());
        ok = false;
      }
    for (const auto &g : got)
      if (std::find(want.begin(), want.end(), g) == want.end()) {
        std::fprintf(stderr, "UNEXPECTED %s:%d:%s\n", g.file.c_str(), g.line,
                     g.check.c_str());
        ok = false;
      }
    if (!ok) {
      for (const auto &d : diags)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", d.file.c_str(), d.line,
                     d.check.c_str(), d.message.c_str());
      return 1;
    }
    std::printf("ssq-lint: %zu expected diagnostic(s) matched\n", want.size());
    return 0;
  }

  for (const auto &d : diags)
    std::printf("%s:%d: [%s] %s\n", d.file.c_str(), d.line, d.check.c_str(),
                d.message.c_str());
  if (diags.empty()) std::printf("ssq-lint: clean\n");
  return diags.empty() ? 0 : 1;
}
