// Portable frontend: build a FileModel from lexed source without a real C++
// parser. It understands exactly the shapes this repository's clang-formatted
// headers use: namespaces, (template) classes, member declarations, and
// function bodies made of blocks / if / loops / return / plain statements.
// Anything it cannot classify degrades to a Plain statement whose tokens are
// still visible to the checks -- the checks are token-pattern driven, so an
// imperfect statement tree loses structure, not events.
#include "lint.hpp"

#include <algorithm>
#include <cassert>

namespace ssqlint {

namespace {

bool is_ident(const Token &t, const char *s) {
  return t.kind == Token::Kind::Ident && t.text == s;
}
bool is_punct(const Token &t, const char *s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}

const std::set<std::string> kTypeishKeywords = {
    "const",    "constexpr", "static",   "inline", "explicit", "virtual",
    "typename", "unsigned",  "signed",   "long",   "short",    "volatile",
    "mutable",  "friend",    "noexcept", "auto",   "void",     "bool",
    "char",     "int",       "float",    "double", "struct",   "class",
    "override", "final",     "template", "using",  "operator", "return",
    "public",   "private",   "protected"};

struct Parser {
  const std::vector<Token> &t;
  std::size_t i = 0;
  FileModel &model;

  Parser(const std::vector<Token> &toks, FileModel &m) : t(toks), model(m) {}

  const Token &cur() const { return t[i]; }
  const Token &at(std::size_t k) const {
    return t[std::min(i + k, t.size() - 1)];
  }
  bool eof() const { return cur().kind == Token::Kind::Eof; }

  // Record SSQ_CELL_TRANSITION(from, to[, "edge"]) when `i` sits on the
  // macro name. Lookahead only; the caller's normal token consumption
  // carries on, so the marker stays visible in the statement stream it
  // annotates. The legacy two-argument form is recorded with an empty edge
  // (the cell-state check flags it).
  void maybe_transition() {
    if (!is_ident(cur(), "SSQ_CELL_TRANSITION")) return;
    if (!(is_punct(at(1), "(") && at(2).kind == Token::Kind::Ident &&
          is_punct(at(3), ",") && at(4).kind == Token::Kind::Ident))
      return;
    if (is_punct(at(5), ")")) {
      model.cell_transitions.push_back(
          {cur().line, at(2).text, at(4).text, ""});
    } else if (is_punct(at(5), ",") && at(6).kind == Token::Kind::String &&
               is_punct(at(7), ")")) {
      model.cell_transitions.push_back(
          {cur().line, at(2).text, at(4).text, unquote(at(6).text)});
    }
  }

  // Record SSQ_MO_RELEASE_EDGE / SSQ_MO_ACQUIRE_EDGE / SSQ_MO_FENCE_EDGE
  // ("label") when `i` sits on the macro name. Lookahead only, like
  // maybe_transition().
  void maybe_mo_edge() {
    if (cur().kind != Token::Kind::Ident) return;
    MoEdge::Kind kind;
    if (cur().text == "SSQ_MO_RELEASE_EDGE") kind = MoEdge::Kind::Release;
    else if (cur().text == "SSQ_MO_ACQUIRE_EDGE") kind = MoEdge::Kind::Acquire;
    else if (cur().text == "SSQ_MO_FENCE_EDGE") kind = MoEdge::Kind::Fence;
    else return;
    if (is_punct(at(1), "(") && at(2).kind == Token::Kind::String &&
        is_punct(at(3), ")"))
      model.mo_edges.push_back({cur().line, kind, unquote(at(2).text)});
  }

  static std::string unquote(const std::string &s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
      return s.substr(1, s.size() - 2);
    return s;
  }

  // Skip a balanced group starting at an opener token ('(', '{', '[', '<').
  // For '<' we only use this right after `template`, where it really is a
  // bracket. Leaves `i` one past the closer.
  void skip_balanced(const char *open, const char *close) {
    assert(is_punct(cur(), open));
    int depth = 0;
    while (!eof()) {
      if (is_punct(cur(), open)) ++depth;
      else if (is_punct(cur(), close)) {
        if (--depth == 0) {
          ++i;
          return;
        }
      }
      ++i;
    }
  }

  // --- annotation state pending before the next declaration ----------------
  struct Pending {
    bool guarded = false;
    bool cell_state = false;
    bool acquires = false;
    bool releases = false;
    bool returns_unprot = false;
    bool episode_reset = false;
    void clear() { *this = Pending{}; }
  };

  void scan_scope(const std::string &class_name, bool in_class) {
    Pending pend;
    while (!eof()) {
      const Token &tok = cur();
      if (is_punct(tok, "}")) {
        ++i;
        return;
      }
      if (is_punct(tok, ";")) { // stray
        ++i;
        continue;
      }
      if (tok.kind == Token::Kind::Ident) {
        if (tok.text == "SSQ_GUARDED_BY_HAZARD") {
          pend.guarded = true;
          ++i;
          if (is_punct(cur(), "(")) skip_balanced("(", ")");
          continue;
        }
        if (tok.text == "SSQ_CELL_STATE_FIELD") {
          pend.cell_state = true;
          ++i;
          continue;
        }
        if (tok.text == "SSQ_ACQUIRES_HAZARD") { pend.acquires = true; ++i; continue; }
        if (tok.text == "SSQ_RELEASES_HAZARD") { pend.releases = true; ++i; continue; }
        if (tok.text == "SSQ_RETURNS_UNPROTECTED") { pend.returns_unprot = true; ++i; continue; }
        if (tok.text == "SSQ_REQUIRES_EPISODE_RESET") { pend.episode_reset = true; ++i; continue; }
        if (tok.text == "SSQ_MO_JUSTIFIED") {
          model.mo_justified_lines.insert(tok.line);
          ++i;
          if (is_punct(cur(), "(")) skip_balanced("(", ")");
          if (is_punct(cur(), ";")) ++i;
          continue;
        }
        if (tok.text == "SSQ_MO_RELEASE_EDGE" ||
            tok.text == "SSQ_MO_ACQUIRE_EDGE" ||
            tok.text == "SSQ_MO_FENCE_EDGE") {
          maybe_mo_edge();
          ++i;
          if (is_punct(cur(), "(")) skip_balanced("(", ")");
          if (is_punct(cur(), ";")) ++i;
          continue;
        }
        if (tok.text == "template") {
          ++i;
          if (is_punct(cur(), "<")) skip_angles();
          continue; // annotations survive across the template header
        }
        if (tok.text == "namespace") {
          ++i;
          // namespace a::b { ... }  |  namespace { ... }
          while (!eof() && !is_punct(cur(), "{") && !is_punct(cur(), ";")) ++i;
          if (is_punct(cur(), "{")) {
            ++i;
            scan_scope(class_name, in_class);
          } else if (is_punct(cur(), ";")) {
            ++i; // namespace alias / using-directive tail
          }
          pend.clear();
          continue;
        }
        if (tok.text == "class" || tok.text == "struct" || tok.text == "union") {
          if (try_class(pend)) continue;
          // fall through: elaborated type in a declaration ("struct foo *p;")
        }
        if (tok.text == "enum") {
          // enum [class] [name] [: base] { ... } ; | fwd decl
          ++i;
          while (!eof() && !is_punct(cur(), "{") && !is_punct(cur(), ";")) ++i;
          if (is_punct(cur(), "{")) skip_balanced("{", "}");
          if (is_punct(cur(), ";")) ++i;
          pend.clear();
          continue;
        }
        if ((tok.text == "public" || tok.text == "private" ||
             tok.text == "protected") &&
            is_punct(at(1), ":")) {
          i += 2;
          continue;
        }
        if (tok.text == "using" || tok.text == "typedef" ||
            tok.text == "static_assert") {
          while (!eof() && !is_punct(cur(), ";")) {
            if (is_punct(cur(), "{")) skip_balanced("{", "}");
            else if (is_punct(cur(), "(")) skip_balanced("(", ")");
            else ++i;
          }
          if (!eof()) ++i;
          pend.clear();
          continue;
        }
      }
      // A member/namespace-scope declaration: field, prototype, or function.
      parse_decl(class_name, pend);
      pend.clear();
    }
  }

  // Skip a template parameter bracket `<...>`, counting only <> nesting and
  // skipping parens (default args can hold `>` inside parens... they don't in
  // this tree, but parens are cheap to honor).
  void skip_angles() {
    assert(is_punct(cur(), "<"));
    int depth = 0;
    while (!eof()) {
      if (is_punct(cur(), "<")) ++depth;
      else if (is_punct(cur(), ">")) {
        if (--depth == 0) {
          ++i;
          return;
        }
      } else if (is_punct(cur(), "(")) {
        skip_balanced("(", ")");
        continue;
      }
      ++i;
    }
  }

  // `class`/`struct`/`union` at scope level. Returns false when it is really
  // an elaborated-type-specifier inside a declaration (e.g. a field
  // `struct tl_cache *cache;`), in which case nothing is consumed.
  bool try_class(Pending &pend) {
    std::size_t save = i;
    ++i; // class/struct/union
    while (!eof() && cur().kind == Token::Kind::Ident &&
           (cur().text == "alignas" || cur().text == "SSQ_CACHELINE_ALIGNED"))
      ++i; // attribute-ish macros between keyword and name
    if (is_punct(cur(), "(")) skip_balanced("(", ")"); // alignas(...)
    std::string name;
    if (cur().kind == Token::Kind::Ident) {
      name = cur().text;
      ++i;
    }
    if (cur().kind == Token::Kind::Ident && cur().text == "final") ++i;
    if (is_punct(cur(), ";")) { // forward declaration
      ++i;
      pend.clear();
      return true;
    }
    if (is_punct(cur(), ":")) { // base clause
      while (!eof() && !is_punct(cur(), "{") && !is_punct(cur(), ";")) ++i;
    }
    if (!is_punct(cur(), "{")) {
      i = save; // elaborated type in a declaration; let parse_decl have it
      return false;
    }
    ++i; // '{'
    scan_scope(name, /*in_class=*/true);
    // skip trailing declarators up to ';' ("} name;" is unused here)
    while (!eof() && !is_punct(cur(), ";")) ++i;
    if (!eof()) ++i;
    pend.clear();
    return true;
  }

  // One declaration chunk: collect tokens until `;` (field / prototype) or a
  // function body `{`. Balanced sub-groups are consumed whole; a `{` directly
  // after an identifier (or `=`/`,`) is a brace initializer, not a body.
  void parse_decl(const std::string &class_name, const Pending &pend) {
    std::vector<Token> toks;
    while (!eof()) {
      const Token &tok = cur();
      if (is_punct(tok, ";")) {
        ++i;
        handle_field(toks, class_name, pend);
        return;
      }
      if (is_punct(tok, "(")) {
        collect_balanced(toks, "(", ")");
        continue;
      }
      if (is_punct(tok, "[")) {
        collect_balanced(toks, "[", "]");
        continue;
      }
      if (is_punct(tok, "{")) {
        bool initializer = false;
        if (!toks.empty()) {
          const Token &prev = toks.back();
          if (prev.kind == Token::Kind::Ident &&
              kTypeishKeywords.find(prev.text) == kTypeishKeywords.end())
            initializer = true;
          if (prev.kind == Token::Kind::Punct &&
              (prev.text == "=" || prev.text == ",")) // unused in tree, safe
            initializer = true;
          if (prev.kind == Token::Kind::Punct && prev.text == ">")
            initializer = true; // templated type brace-init
        }
        if (initializer) {
          collect_balanced(toks, "{", "}");
          continue;
        }
        // Function body.
        ++i;
        finish_function(toks, class_name, pend);
        return;
      }
      if (is_punct(tok, "}")) {
        // Malformed chunk (shouldn't happen); bail without consuming.
        handle_field(toks, class_name, pend);
        return;
      }
      toks.push_back(tok);
      ++i;
    }
  }

  void collect_balanced(std::vector<Token> &out, const char *open,
                        const char *close) {
    int depth = 0;
    while (!eof()) {
      if (is_punct(cur(), open)) ++depth;
      else if (is_punct(cur(), close)) --depth;
      maybe_transition(); // e.g. markers inside a switch body
      maybe_mo_edge();
      out.push_back(cur());
      ++i;
      if (depth == 0) return;
    }
  }

  // Field or prototype ended with ';'. Only annotated fields matter.
  void handle_field(const std::vector<Token> &toks,
                    const std::string &class_name, const Pending &pend) {
    if ((!pend.guarded && !pend.cell_state) || toks.empty()) return;
    // Field name: last top-level identifier before any '=' / brace-init /
    // array bracket. toks has balanced groups inlined, so walk with depth.
    std::string name;
    int depth = 0;
    for (const Token &tok : toks) {
      if (tok.kind == Token::Kind::Punct) {
        const std::string &p = tok.text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") --depth;
        else if (depth == 0 && p == "=") break;
        continue;
      }
      if (depth == 0 && tok.kind == Token::Kind::Ident &&
          kTypeishKeywords.find(tok.text) == kTypeishKeywords.end())
        name = tok.text;
    }
    if (!name.empty()) {
      if (pend.guarded) {
        model.guarded_fields.insert(name);
        if (!class_name.empty()) model.node_types.insert(class_name);
      }
      if (pend.cell_state) model.cell_state_fields.insert(name);
    }
  }

  // `toks` holds everything up to the body '{' (already consumed).
  void finish_function(const std::vector<Token> &toks,
                       const std::string &class_name, const Pending &pend) {
    Function fn;
    fn.class_name = class_name;
    fn.acquires_hazard = pend.acquires;
    fn.releases_hazard = pend.releases;
    fn.returns_unprotected = pend.returns_unprot;
    fn.requires_episode_reset = pend.episode_reset;

    // Locate the parameter list: the first top-level '(' whose preceding
    // token is an identifier (the function name) or `operator`.
    std::size_t open = toks.size(), close = toks.size();
    {
      int depth = 0;
      for (std::size_t k = 0; k < toks.size(); ++k) {
        const Token &tok = toks[k];
        if (tok.kind != Token::Kind::Punct) continue;
        if (tok.text == "(") {
          if (depth == 0 && open == toks.size() && k > 0 &&
              toks[k - 1].kind == Token::Kind::Ident)
            open = k;
          ++depth;
        } else if (tok.text == ")") {
          --depth;
          if (depth == 0 && open != toks.size() && close == toks.size())
            close = k;
        } else if (tok.text == "{" ) {
          ++depth; // brace-init inside init list
        } else if (tok.text == "}") {
          --depth;
        } else if (depth == 0 && tok.text == ":" && open != toks.size()) {
          break; // ctor-init-list begins; param list already captured
        }
      }
    }
    if (open == toks.size() || close == toks.size() || open == 0) {
      // Not function-shaped after all (e.g. a lambda field initializer we
      // mis-took for a body). Consume the body we already entered and drop.
      swallow_body();
      return;
    }
    fn.name = toks[open - 1].text;
    fn.line = toks[open - 1].line;
    bool dtor = open >= 2 && is_punct(toks[open - 2], "~");
    fn.is_ctor_dtor = dtor || fn.name == class_name;

    // Return type hint: last non-keyword identifier before the name, plus
    // whether a '*' sits between them.
    {
      std::string rt;
      bool star = false;
      for (std::size_t k = 0; k + 1 < open; ++k) {
        const Token &tok = toks[k];
        if (tok.kind == Token::Kind::Ident &&
            kTypeishKeywords.find(tok.text) == kTypeishKeywords.end()) {
          rt = tok.text;
          star = false;
        } else if (is_punct(tok, "*")) {
          star = true;
        }
      }
      if (!rt.empty() && star) {
        fn.returns_node_ptr = true; // refined against node_types in checks
        // stash the hint in a synthetic param slot? No -- keep a field:
      }
      fn.return_type_hint = rt;
    }

    // Parameters: split toks(open+1 .. close-1) on top-level ','.
    {
      std::vector<std::vector<Token>> parts(1);
      int depth = 0;
      for (std::size_t k = open + 1; k < close; ++k) {
        const Token &tok = toks[k];
        if (tok.kind == Token::Kind::Punct) {
          const std::string &p = tok.text;
          if (p == "(" || p == "[" || p == "{" || p == "<") ++depth;
          else if (p == ")" || p == "]" || p == "}" || p == ">") --depth;
          else if (p == "," && depth == 0) {
            parts.emplace_back();
            continue;
          }
        }
        parts.back().push_back(tok);
      }
      for (auto &part : parts) {
        if (part.empty()) continue;
        // Drop a default argument.
        std::vector<Token> decl;
        int d2 = 0;
        for (const Token &tok : part) {
          if (tok.kind == Token::Kind::Punct) {
            const std::string &p = tok.text;
            if (p == "(" || p == "[" || p == "{" || p == "<") ++d2;
            else if (p == ")" || p == "]" || p == "}" || p == ">") --d2;
            else if (p == "=" && d2 == 0) break;
          }
          decl.push_back(tok);
        }
        Param prm;
        bool star = false, amp = false;
        std::string last_ident, prev_ident;
        for (const Token &tok : decl) {
          if (tok.kind == Token::Kind::Ident &&
              kTypeishKeywords.find(tok.text) == kTypeishKeywords.end()) {
            prev_ident = last_ident;
            last_ident = tok.text;
          } else if (is_punct(tok, "*")) {
            star = true;
          } else if (is_punct(tok, "&")) {
            amp = true;
          }
        }
        if (last_ident.empty()) continue; // unnamed / `void`
        prm.name = last_ident;
        prm.type_hint = prev_ident;
        prm.is_ptr = star;
        prm.is_ref = amp;
        fn.params.push_back(std::move(prm));
      }
    }

    fn.body = parse_stmt_list();
    fn.end_line = i > 0 ? t[i - 1].line : fn.line;
    model.functions.push_back(std::move(fn));
  }

  void swallow_body() { // we are just past a '{'
    int depth = 1;
    while (!eof() && depth > 0) {
      if (is_punct(cur(), "{")) ++depth;
      else if (is_punct(cur(), "}")) --depth;
      ++i;
    }
  }

  // ----------------------------------------------------------- statements
  // Called just inside a '{'; consumes through the matching '}'.
  std::vector<Stmt> parse_stmt_list() {
    std::vector<Stmt> out;
    while (!eof() && !is_punct(cur(), "}")) {
      out.push_back(parse_stmt());
    }
    if (!eof()) ++i; // '}'
    return out;
  }

  Stmt parse_stmt() {
    Stmt s;
    s.line = cur().line;
    const Token &tok = cur();
    if (is_punct(tok, "{")) {
      s.kind = Stmt::Kind::Block;
      ++i;
      s.body = parse_stmt_list();
      return s;
    }
    if (is_ident(tok, "if")) {
      s.kind = Stmt::Kind::If;
      ++i;
      if (is_ident(cur(), "constexpr")) ++i;
      grab_cond(s.cond);
      s.body.push_back(parse_stmt());
      if (is_ident(cur(), "else")) {
        ++i;
        s.else_body.push_back(parse_stmt());
      }
      return s;
    }
    if (is_ident(tok, "while") || is_ident(tok, "for")) {
      s.kind = Stmt::Kind::Loop;
      ++i;
      grab_cond(s.cond);
      s.body.push_back(parse_stmt());
      return s;
    }
    if (is_ident(tok, "do")) {
      s.kind = Stmt::Kind::Loop;
      ++i;
      s.body.push_back(parse_stmt());
      if (is_ident(cur(), "while")) {
        ++i;
        grab_cond(s.cond);
        if (is_punct(cur(), ";")) ++i;
      }
      return s;
    }
    if (is_ident(tok, "switch")) {
      // Rare; treat as a Plain statement holding every token so events are
      // still seen linearly.
      s.kind = Stmt::Kind::Plain;
      s.toks.push_back(cur());
      ++i;
      if (is_punct(cur(), "(")) collect_balanced(s.toks, "(", ")");
      if (is_punct(cur(), "{")) collect_balanced(s.toks, "{", "}");
      return s;
    }
    if (is_ident(tok, "return")) {
      s.kind = Stmt::Kind::Return;
      ++i;
      grab_plain_tokens(s.toks);
      return s;
    }
    if (is_punct(tok, ";")) { // empty statement
      ++i;
      return s;
    }
    if (is_ident(tok, "SSQ_MO_JUSTIFIED")) {
      model.mo_justified_lines.insert(tok.line);
      // fall through to plain so it remains a sibling statement
    }
    s.kind = Stmt::Kind::Plain;
    grab_plain_tokens(s.toks);
    return s;
  }

  // Condition / header group: '( ... )' balanced, tokens without the outer
  // parens.
  void grab_cond(std::vector<Token> &out) {
    if (!is_punct(cur(), "(")) return;
    int depth = 0;
    while (!eof()) {
      if (is_punct(cur(), "(")) {
        if (depth++ > 0) out.push_back(cur());
      } else if (is_punct(cur(), ")")) {
        if (--depth == 0) {
          ++i;
          return;
        }
        out.push_back(cur());
      } else {
        if (is_ident(cur(), "SSQ_MO_JUSTIFIED"))
          model.mo_justified_lines.insert(cur().line);
        maybe_transition();
        maybe_mo_edge();
        out.push_back(cur());
      }
      ++i;
    }
  }

  // Tokens up to ';' at depth zero. Lambdas / brace-inits are swallowed in.
  void grab_plain_tokens(std::vector<Token> &out) {
    int depth = 0;
    while (!eof()) {
      const Token &tok = cur();
      if (tok.kind == Token::Kind::Punct) {
        const std::string &p = tok.text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") {
          if (p == "}" && depth == 0) return; // missing ';' before '}'
          --depth;
        } else if (p == ";" && depth == 0) {
          ++i;
          return;
        }
      }
      if (is_ident(tok, "SSQ_MO_JUSTIFIED"))
        model.mo_justified_lines.insert(tok.line);
      maybe_transition();
      maybe_mo_edge();
      out.push_back(tok);
      ++i;
    }
  }
};

// One expansion pass over the token stream: every use of an in-file
// MacroDef is replaced by its body, with function-like parameters
// substituted by the use-site argument tokens and every spliced token
// re-stamped with the invocation line. Ran to a fixed point (bounded) by
// expand_macros so macros wrapping macros still resolve; self-reference is
// cut off by the pass bound rather than tracked.
std::vector<Token> expand_once(const std::vector<Token> &in,
                               const std::map<std::string, const MacroDef *> &defs,
                               bool &changed) {
  std::vector<Token> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const Token &tok = in[i];
    auto it = tok.kind == Token::Kind::Ident ? defs.find(tok.text)
                                             : defs.end();
    if (it == defs.end()) {
      out.push_back(tok);
      continue;
    }
    const MacroDef &def = *it->second;
    int use_line = tok.line;
    std::vector<std::vector<Token>> args;
    std::size_t next = i + 1;
    if (def.function_like) {
      if (next >= in.size() || !is_punct(in[next], "(")) {
        out.push_back(tok); // name without call syntax: not an invocation
        continue;
      }
      args.emplace_back();
      int depth = 0;
      std::size_t j = next;
      for (; j < in.size(); ++j) {
        const Token &a = in[j];
        if (is_punct(a, "(")) {
          if (depth++ == 0) continue;
        } else if (is_punct(a, ")")) {
          if (--depth == 0) break;
        } else if (is_punct(a, ",") && depth == 1) {
          args.emplace_back();
          continue;
        }
        args.back().push_back(a);
      }
      if (j >= in.size()) { // unbalanced; bail on this invocation
        out.push_back(tok);
        continue;
      }
      next = j + 1;
    }
    for (const Token &bt : def.body) {
      bool substituted = false;
      if (def.function_like && bt.kind == Token::Kind::Ident) {
        for (std::size_t pi = 0; pi < def.params.size(); ++pi) {
          if (def.params[pi] != bt.text) continue;
          if (pi < args.size())
            for (Token at : args[pi]) {
              at.line = use_line;
              out.push_back(at);
            }
          substituted = true;
          break;
        }
      }
      if (!substituted) {
        Token copy = bt;
        copy.line = use_line;
        out.push_back(copy);
      }
    }
    i = next - 1;
    changed = true;
  }
  return out;
}

std::vector<Token> expand_macros(std::vector<Token> tokens,
                                 const std::vector<MacroDef> &defines) {
  if (defines.empty()) return tokens;
  std::map<std::string, const MacroDef *> defs;
  for (const MacroDef &d : defines)
    if (!d.body.empty()) defs[d.name] = &d; // empty bodies: plain erasure is
                                            // what the old behavior did too
  for (int pass = 0; pass < 4; ++pass) {
    bool changed = false;
    tokens = expand_once(tokens, defs, changed);
    if (!changed) break;
  }
  return tokens;
}

} // namespace

FileModel build_model(const std::string &path, const std::string &src) {
  FileModel model;
  model.path = path;
  LexedFile lf = lex(src);
  model.comments = std::move(lf.comments);
  std::vector<Token> tokens = expand_macros(std::move(lf.tokens), lf.defines);
  Parser p(tokens, model);
  p.scan_scope("", /*in_class=*/false);
  return model;
}

} // namespace ssqlint
