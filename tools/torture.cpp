// torture: long-running randomized stress for the synchronous queues.
//
// Two check modes:
//
//   --check=conserve (default): hammers one implementation with a seeded
//     random mix of every operation from a configurable number of threads,
//     continuously checking conservation (sum/xor/count of values in ==
//     values out), and prints a line of vitals each second.
//
//   --check=linearize: runs the recorded workload from check/driver.hpp --
//     every operation is timestamped into a history and the history is
//     validated by the synchronous-queue oracle (check/oracle.hpp): exact
//     pairing, no cancelled-op transfers, interval synchrony, and FIFO
//     pairing order for the fair variants. A failing history is dumped to
//     torture-history-<impl>-<seed>.log together with the reproducing
//     command line.
//
//   ./torture --impl=new-fair --threads=8 --seconds=30 --seed=42
//             --check=linearize [--fuzz=1]
//   impls: new-fair new-unfair seg-fair fab-fair fab-unfair java5-fair
//          java5-unfair naive eliminating elim-unfair elim-fair
//          ltq exchanger channel
//   (exchanger and channel support --check=linearize only. "eliminating"
//   is an alias for elim-unfair. Lane-attributed impls -- fab-* and elim-*
//   -- are checked against the relaxed per-lane FIFO spec when fair.)
//
// --fuzz=1 turns on the schedule-perturbation points when the build compiled
// them in (-DSSQ_SCHEDULE_FUZZ=ON); otherwise it warns and proceeds. The
// SSQ_FUZZ / SSQ_FUZZ_SEED environment variables work too (any build of any
// binary linking the library).
//
// This is the tool to run for hours under ASan/TSan when touching the
// cores; ctest contains bounded versions of the same checks.
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "check/driver.hpp"
#include "check/history.hpp"
#include "check/oracle.hpp"
#include "check/schedule_fuzz.hpp"
#include "core/channel.hpp"
#include "core/eliminating_sq.hpp"
#include "core/exchanger.hpp"
#include "core/linked_transfer_queue.hpp"
#include "core/synchronous_queue.hpp"
#include "harness/options.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

using namespace ssq;

namespace {

struct vitals {
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0};
  std::atomic<std::uint64_t> in_xor{0}, out_xor{0};
  std::atomic<std::uint64_t> produced{0}, consumed{0};
  std::atomic<std::uint64_t> timeouts{0};
};

// Type-erased operations over the chosen implementation (conserve mode).
struct ops_t {
  std::function<void(std::uint64_t)> put;
  std::function<std::uint64_t()> take;
  std::function<bool(std::uint64_t, deadline)> offer;
  std::function<std::optional<std::uint64_t>(deadline)> poll;
  std::function<std::size_t()> length; // 0 if unsupported
};

template <typename Q>
ops_t make_ops(std::shared_ptr<Q> q) {
  ops_t o;
  o.put = [q](std::uint64_t v) { q->put(v); };
  o.take = [q] { return q->take(); };
  if constexpr (requires { q->offer(std::uint64_t{1}, deadline::expired()); }) {
    o.offer = [q](std::uint64_t v, deadline dl) { return q->offer(v, dl); };
  } else { // linked_transfer_queue: the synchronous offer is try_transfer
    o.offer = [q](std::uint64_t v, deadline dl) {
      return q->try_transfer(v, dl);
    };
  }
  o.poll = [q](deadline dl) { return q->poll(dl); };
  if constexpr (requires { q->unsafe_length(); }) {
    o.length = [q] { return q->unsafe_length(); };
  } else {
    o.length = [] { return std::size_t{0}; };
  }
  return o;
}

struct impl_desc {
  ops_t ops;                  // conserve-mode surface (null fns if n/a)
  check::checked_ops checked; // linearize-mode surface (null fns if n/a)
  bool fair = false;
  bool conserve_capable = true;
};

template <typename Q>
impl_desc make_impl_both(std::shared_ptr<Q> q, bool fair) {
  impl_desc d;
  d.ops = make_ops(q);
  d.checked = check::make_checked_ops(q, fair);
  d.fair = fair;
  return d;
}

impl_desc make_impl(const std::string &name) {
  if (name == "new-fair")
    return make_impl_both(
        std::make_shared<synchronous_queue<std::uint64_t, true>>(), true);
  if (name == "new-unfair")
    return make_impl_both(
        std::make_shared<synchronous_queue<std::uint64_t, false>>(), false);
  if (name == "seg-fair")
    return make_impl_both(
        std::make_shared<segmented_synchronous_queue<std::uint64_t>>(), true);
  if (name == "fab-fair")
    return make_impl_both(
        std::make_shared<fair_fabric_synchronous_queue<std::uint64_t>>(
            fabric_config{4}),
        true);
  if (name == "fab-unfair")
    return make_impl_both(
        std::make_shared<fabric_synchronous_queue<std::uint64_t>>(
            fabric_config{4}),
        false);
  if (name == "java5-fair")
    return make_impl_both(std::make_shared<java5_sq<std::uint64_t, true>>(),
                          true);
  if (name == "java5-unfair")
    return make_impl_both(std::make_shared<java5_sq<std::uint64_t, false>>(),
                          false);
  if (name == "naive")
    return make_impl_both(std::make_shared<naive_sq<std::uint64_t>>(), false);
  if (name == "eliminating" || name == "elim-unfair")
    return make_impl_both(std::make_shared<eliminating_sq<std::uint64_t>>(),
                          false);
  if (name == "elim-fair")
    return make_impl_both(
        std::make_shared<fair_eliminating_sq<std::uint64_t>>(), true);
  if (name == "ltq") {
    auto q = std::make_shared<linked_transfer_queue<std::uint64_t>>();
    impl_desc d;
    d.ops = make_ops(q);
    d.checked = check::make_checked_transfer_ops(q);
    d.fair = true;
    return d;
  }
  if (name == "channel") {
    auto ch = std::make_shared<channel<std::uint64_t>>();
    impl_desc d;
    d.checked = check::make_checked_channel_ops(ch);
    d.fair = true;
    d.conserve_capable = false;
    return d;
  }
  if (name == "exchanger") {
    impl_desc d; // handled specially in linearize mode
    d.conserve_capable = false;
    return d;
  }
  std::fprintf(stderr, "unknown --impl=%s\n", name.c_str());
  std::exit(2);
}

int run_conserve(const ops_t &q, int nthreads, int seconds,
                 std::uint64_t seed) {
  vitals v;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> seq{1};

  // Half the threads lean producer, half lean consumer, but everyone does a
  // random mix so role imbalance and direction flips are exercised.
  std::vector<std::thread> ts;
  for (int t = 0; t < nthreads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(seed * 1099511628211ULL + static_cast<std::uint64_t>(t));
      bool lean_producer = (t % 2 == 0);
      while (!stop.load(std::memory_order_acquire)) {
        bool produce = rng.chance(lean_producer ? 3 : 1, 4);
        if (produce) {
          std::uint64_t val = seq.fetch_add(1);
          bool sent = false;
          switch (rng.below(3)) {
            case 0: // timed with random small patience
              sent = q.offer(val, deadline::in(std::chrono::microseconds(
                                      rng.below(2000))));
              break;
            case 1: // non-blocking
              sent = q.offer(val, deadline::expired());
              break;
            default: // bounded-blocking (so shutdown stays responsive)
              sent = q.offer(val,
                             deadline::in(std::chrono::milliseconds(20)));
              break;
          }
          if (sent) {
            v.in_sum.fetch_add(val, std::memory_order_relaxed);
            v.in_xor.fetch_xor(val, std::memory_order_relaxed);
            v.produced.fetch_add(1, std::memory_order_relaxed);
          } else {
            v.timeouts.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          std::optional<std::uint64_t> got;
          switch (rng.below(2)) {
            case 0:
              got = q.poll(deadline::in(
                  std::chrono::microseconds(rng.below(2000))));
              break;
            default:
              got = q.poll(deadline::expired());
              break;
          }
          if (got) {
            v.out_sum.fetch_add(*got, std::memory_order_relaxed);
            v.out_xor.fetch_xor(*got, std::memory_order_relaxed);
            v.consumed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (int s = 0; s < seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::printf("[%2d s] produced=%llu consumed=%llu timeouts=%llu "
                "in-flight=%lld linked=%zu retired~%zu\n",
                s + 1,
                static_cast<unsigned long long>(v.produced.load()),
                static_cast<unsigned long long>(v.consumed.load()),
                static_cast<unsigned long long>(v.timeouts.load()),
                static_cast<long long>(v.produced.load()) -
                    static_cast<long long>(v.consumed.load()),
                q.length(),
                mem::hazard_domain::global().approx_retired());
    std::fflush(stdout);
  }
  stop.store(true, std::memory_order_release);
  for (auto &t : ts) t.join();

  // Drain whatever successful producers left paired-up... in a synchronous
  // queue nothing can remain once all threads stopped, EXCEPT values whose
  // producer succeeded exactly as we shut the consumer side down. Drain
  // with non-blocking polls.
  for (;;) {
    auto got = q.poll(deadline::in(std::chrono::milliseconds(50)));
    if (!got) break;
    v.out_sum.fetch_add(*got);
    v.out_xor.fetch_xor(*got);
    v.consumed.fetch_add(1);
  }

  bool ok = v.in_sum.load() == v.out_sum.load() &&
            v.in_xor.load() == v.out_xor.load() &&
            v.produced.load() == v.consumed.load();
  std::printf("%s: produced=%llu consumed=%llu sum %s xor %s\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(v.produced.load()),
              static_cast<unsigned long long>(v.consumed.load()),
              v.in_sum.load() == v.out_sum.load() ? "ok" : "MISMATCH",
              v.in_xor.load() == v.out_xor.load() ? "ok" : "MISMATCH");
  return ok ? 0 : 1;
}

void dump_failure(const std::string &impl, std::uint64_t seed, int nthreads,
                  int seconds, bool fuzz, const check::report &rep,
                  std::vector<check::event> events) {
  std::string path =
      "torture-history-" + impl + "-" + std::to_string(seed) + ".log";
  std::FILE *f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "# repro: ./torture --impl=%s --check=linearize --threads=%d "
               "--seconds=%d --seed=%llu%s\n",
               impl.c_str(), nthreads, seconds,
               static_cast<unsigned long long>(seed), fuzz ? " --fuzz=1" : "");
  std::fprintf(f, "# %zu violation(s):\n%s", rep.violations.size(),
               check::summarize(rep, 32).c_str());
  check::dump_history(f, std::move(events));
  std::fclose(f);
  std::fprintf(stderr, "failing history written to %s\n", path.c_str());
}

int run_linearize(const std::string &impl, impl_desc &d, int nthreads,
                  int seconds, std::uint64_t seed, bool fuzz,
                  std::uint64_t max_ops) {
  check::driver_cfg cfg;
  cfg.threads = nthreads;
  cfg.seed = seed;
  cfg.duration = std::chrono::milliseconds(seconds * 1000);
  cfg.max_ops_per_thread = max_ops;

  if (impl == "exchanger") {
    exchanger<std::uint64_t> x;
    check::recorder rec(static_cast<std::size_t>(nthreads) + 1,
                        cfg.max_ops_per_thread ? cfg.max_ops_per_thread : 1024);
    check::driver_stats st;
    check::report rep = check::run_exchanger(x, cfg, rec, &st);
    std::printf("%s: events=%zu pairs=%zu cancelled=%zu violations=%zu\n",
                rep.ok() ? "PASS" : "FAIL", rep.events, rep.pairs,
                rep.cancelled, rep.violations.size());
    if (!rep.ok()) {
      std::fprintf(stderr, "%s", check::summarize(rep).c_str());
      dump_failure(impl, seed, nthreads, seconds, fuzz, rep, rec.collect());
      return 1;
    }
    return 0;
  }

  if (!d.checked.produce) {
    std::fprintf(stderr, "--impl=%s does not support --check=linearize\n",
                 impl.c_str());
    return 2;
  }

  check::recorder rec(static_cast<std::size_t>(nthreads) + 1,
                      cfg.max_ops_per_thread ? cfg.max_ops_per_thread : 1024);
  check::driver_stats st;
  std::atomic<bool> stop{false};

  // Vitals printer + stopper: run_mixed blocks until its workers finish, so
  // the clock runs beside it.
  std::thread vit([&] {
    for (int s = 0; s < seconds; ++s) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
      std::printf("[%2d s] produced=%llu consumed=%llu timeouts=%llu "
                  "misses=%llu events=%zu\n",
                  s + 1,
                  static_cast<unsigned long long>(st.produced.load()),
                  static_cast<unsigned long long>(st.consumed.load()),
                  static_cast<unsigned long long>(st.timeouts.load()),
                  static_cast<unsigned long long>(st.misses.load()),
                  rec.size());
      std::fflush(stdout);
    }
    stop.store(true, std::memory_order_release);
  });
  check::run_mixed(d.checked, cfg, rec, &st, &stop);
  stop.store(true, std::memory_order_release); // op budget may end the run
  vit.join();

  check::rules r;
  // Lane-attributed fair impls (fabric, eliminating queue) promise FIFO
  // per pairing lane, not globally (check/oracle.hpp P4').
  r.fifo = d.fair && !d.checked.lanes;
  r.fifo_lanes = d.fair && d.checked.lanes;
  r.require_all_consumed = true;
  auto events = rec.collect();
  check::report rep = check::check_history(events, r);
  std::printf("%s: events=%zu pairs=%zu cancelled=%zu violations=%zu "
              "(fifo %s)\n",
              rep.ok() ? "PASS" : "FAIL", rep.events, rep.pairs,
              rep.cancelled, rep.violations.size(),
              r.fifo ? "checked" : (r.fifo_lanes ? "per-lane" : "n/a"));
  if (!rep.ok()) {
    std::fprintf(stderr, "%s", check::summarize(rep).c_str());
    dump_failure(impl, seed, nthreads, seconds, fuzz, rep, std::move(events));
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  auto opt = harness::options::parse(argc, argv);
  const std::string impl = opt.get("impl", "new-unfair");
  const std::string mode = opt.get("check", "conserve");
  const int nthreads = static_cast<int>(opt.get_int("threads", 8));
  const int seconds = static_cast<int>(opt.get_int("seconds", 10));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
  const bool want_fuzz = opt.get_int("fuzz", 0) != 0;
  const std::uint64_t max_ops =
      static_cast<std::uint64_t>(opt.get_int("max-ops", 200000));

  bool fuzz_on = false;
  if (want_fuzz) {
    if (fuzz::compiled_with_schedule_fuzz()) {
#if defined(SSQ_SCHEDULE_FUZZ)
      fuzz::config fc;
      fc.seed = seed;
      fuzz::enable(fc);
#endif
      fuzz_on = true;
    } else {
      std::fprintf(stderr,
                   "--fuzz=1 requested but this build has no perturbation "
                   "points (rebuild with -DSSQ_SCHEDULE_FUZZ=ON)\n");
    }
  }
  std::printf("torture: impl=%s check=%s threads=%d seconds=%d seed=%llu "
              "fuzz=%s\n",
              impl.c_str(), mode.c_str(), nthreads, seconds,
              static_cast<unsigned long long>(seed),
              fuzz_on ? "on"
                      : (fuzz::compiled_with_schedule_fuzz() ? "off"
                                                             : "not-compiled"));

  impl_desc d = make_impl(impl);
  if (mode == "conserve") {
    if (!d.conserve_capable) {
      std::fprintf(stderr,
                   "--impl=%s supports --check=linearize only\n", impl.c_str());
      return 2;
    }
    return run_conserve(d.ops, nthreads, seconds, seed);
  }
  if (mode == "linearize")
    return run_linearize(impl, d, nthreads, seconds, seed, fuzz_on, max_ops);
  std::fprintf(stderr, "unknown --check=%s (conserve|linearize)\n",
               mode.c_str());
  return 2;
}
