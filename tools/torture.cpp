// torture: long-running randomized stress for the synchronous queues.
//
// Hammers one implementation with a seeded random mix of every operation
// (sync, timed, non-blocking, interrupt) from a configurable number of
// threads, continuously checking conservation, and prints a line of vitals
// each second. Exit code 0 iff no invariant was violated.
//
//   ./torture --impl=new-fair --threads=8 --seconds=30 --seed=42
//   impls: new-fair new-unfair java5-fair java5-unfair naive eliminating
//
// This is the tool to run for hours under ASan/TSan when touching the
// cores; ctest contains bounded versions of the same checks.
#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/java5_sq.hpp"
#include "baselines/naive_sq.hpp"
#include "core/eliminating_sq.hpp"
#include "core/synchronous_queue.hpp"
#include "harness/options.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

using namespace ssq;

namespace {

struct vitals {
  std::atomic<std::uint64_t> in_sum{0}, out_sum{0};
  std::atomic<std::uint64_t> in_xor{0}, out_xor{0};
  std::atomic<std::uint64_t> produced{0}, consumed{0};
  std::atomic<std::uint64_t> timeouts{0};
};

// Type-erased operations over the chosen implementation.
struct ops_t {
  std::function<void(std::uint64_t)> put;
  std::function<std::uint64_t()> take;
  std::function<bool(std::uint64_t, deadline)> offer;
  std::function<std::optional<std::uint64_t>(deadline)> poll;
  std::function<std::size_t()> length; // 0 if unsupported
};

template <typename Q>
ops_t make_ops(std::shared_ptr<Q> q) {
  ops_t o;
  o.put = [q](std::uint64_t v) { q->put(v); };
  o.take = [q] { return q->take(); };
  o.offer = [q](std::uint64_t v, deadline dl) { return q->offer(v, dl); };
  o.poll = [q](deadline dl) { return q->poll(dl); };
  if constexpr (requires { q->unsafe_length(); }) {
    o.length = [q] { return q->unsafe_length(); };
  } else {
    o.length = [] { return std::size_t{0}; };
  }
  return o;
}

ops_t make_impl(const std::string &name) {
  if (name == "new-fair")
    return make_ops(std::make_shared<synchronous_queue<std::uint64_t, true>>());
  if (name == "new-unfair")
    return make_ops(
        std::make_shared<synchronous_queue<std::uint64_t, false>>());
  if (name == "java5-fair")
    return make_ops(std::make_shared<java5_sq<std::uint64_t, true>>());
  if (name == "java5-unfair")
    return make_ops(std::make_shared<java5_sq<std::uint64_t, false>>());
  if (name == "naive")
    return make_ops(std::make_shared<naive_sq<std::uint64_t>>());
  if (name == "eliminating")
    return make_ops(std::make_shared<eliminating_sq<std::uint64_t>>());
  std::fprintf(stderr, "unknown --impl=%s\n", name.c_str());
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  auto opt = harness::options::parse(argc, argv);
  const std::string impl = opt.get("impl", "new-unfair");
  const int nthreads = static_cast<int>(opt.get_int("threads", 8));
  const int seconds = static_cast<int>(opt.get_int("seconds", 10));
  const std::uint64_t seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));

  ops_t q = make_impl(impl);
  vitals v;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> seq{1};

  // Half the threads lean producer, half lean consumer, but everyone does a
  // random mix so role imbalance and direction flips are exercised.
  std::vector<std::thread> ts;
  for (int t = 0; t < nthreads; ++t) {
    ts.emplace_back([&, t] {
      xoshiro256 rng(seed * 1099511628211ULL + static_cast<std::uint64_t>(t));
      bool lean_producer = (t % 2 == 0);
      while (!stop.load(std::memory_order_acquire)) {
        bool produce = rng.chance(lean_producer ? 3 : 1, 4);
        if (produce) {
          std::uint64_t val = seq.fetch_add(1);
          bool sent = false;
          switch (rng.below(3)) {
            case 0: // timed with random small patience
              sent = q.offer(val, deadline::in(std::chrono::microseconds(
                                      rng.below(2000))));
              break;
            case 1: // non-blocking
              sent = q.offer(val, deadline::expired());
              break;
            default: // bounded-blocking (so shutdown stays responsive)
              sent = q.offer(val,
                             deadline::in(std::chrono::milliseconds(20)));
              break;
          }
          if (sent) {
            v.in_sum.fetch_add(val, std::memory_order_relaxed);
            v.in_xor.fetch_xor(val, std::memory_order_relaxed);
            v.produced.fetch_add(1, std::memory_order_relaxed);
          } else {
            v.timeouts.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          std::optional<std::uint64_t> got;
          switch (rng.below(2)) {
            case 0:
              got = q.poll(deadline::in(
                  std::chrono::microseconds(rng.below(2000))));
              break;
            default:
              got = q.poll(deadline::expired());
              break;
          }
          if (got) {
            v.out_sum.fetch_add(*got, std::memory_order_relaxed);
            v.out_xor.fetch_xor(*got, std::memory_order_relaxed);
            v.consumed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  for (int s = 0; s < seconds; ++s) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::printf("[%2d s] produced=%llu consumed=%llu timeouts=%llu "
                "in-flight=%lld linked=%zu retired~%zu\n",
                s + 1,
                static_cast<unsigned long long>(v.produced.load()),
                static_cast<unsigned long long>(v.consumed.load()),
                static_cast<unsigned long long>(v.timeouts.load()),
                static_cast<long long>(v.produced.load()) -
                    static_cast<long long>(v.consumed.load()),
                q.length(),
                mem::hazard_domain::global().approx_retired());
    std::fflush(stdout);
  }
  stop.store(true, std::memory_order_release);
  for (auto &t : ts) t.join();

  // Drain whatever successful producers left paired-up... in a synchronous
  // queue nothing can remain once all threads stopped, EXCEPT values whose
  // producer succeeded exactly as we shut the consumer side down. Drain
  // with non-blocking polls.
  for (;;) {
    auto got = q.poll(deadline::in(std::chrono::milliseconds(50)));
    if (!got) break;
    v.out_sum.fetch_add(*got);
    v.out_xor.fetch_xor(*got);
    v.consumed.fetch_add(1);
  }

  bool ok = v.in_sum.load() == v.out_sum.load() &&
            v.in_xor.load() == v.out_xor.load() &&
            v.produced.load() == v.consumed.load();
  std::printf("%s: produced=%llu consumed=%llu sum %s xor %s\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(v.produced.load()),
              static_cast<unsigned long long>(v.consumed.load()),
              v.in_sum.load() == v.out_sum.load() ? "ok" : "MISMATCH",
              v.in_xor.load() == v.out_xor.load() ? "ok" : "MISMATCH");
  return ok ? 0 : 1;
}
